#!/usr/bin/env python
"""Endurance planning: how long will the cache SSD last under each policy?

A storage architect sizing an SSD cache for a write-heavy volume wants
to know replacement cadence.  This example runs the four policies over
a write-dominant workload (calibrated to MSR Cambridge hm_0), projects
device lifetime from the measured write traffic using the standard
endurance formula, and shows the effect of content locality.

Run:  python examples/endurance_planning.py
"""

from repro import make_workload
from repro.flash import MLC_ENDURANCE, LifetimeEstimate
from repro.harness import render_table, simulate_policy
from repro.units import GiB

SCALE = 0.01
CACHE_GB = 64          # the production device being sized
DAILY_REPLAY = 24.0    # how many times the measured traffic repeats per day


def main() -> None:
    trace = make_workload("Hm0", scale=SCALE)
    stats = trace.stats()
    cache_pages = int(stats.unique_pages * 0.10)
    print(
        f"workload: {stats.name} ({stats.requests:,} page accesses, "
        f"{100 * (1 - stats.read_ratio):.0f}% writes), "
        f"cache = {cache_pages:,} pages\n"
    )

    rows = []
    for label, policy, kwargs in [
        ("wa", "wa", {}),
        ("wt", "wt", {}),
        ("leavo", "leavo", {}),
        ("kdd-50", "kdd", {"mean_compression": 0.50}),
        ("kdd-25", "kdd", {"mean_compression": 0.25}),
        ("kdd-12", "kdd", {"mean_compression": 0.12}),
    ]:
        result = simulate_policy(policy, trace, cache_pages, seed=1, **kwargs)
        daily_bytes = result.ssd_write_pages * trace.page_size * DAILY_REPLAY
        est = LifetimeEstimate(
            capacity_bytes=CACHE_GB * GiB,
            endurance=MLC_ENDURANCE,
            write_amplification=1.5,  # typical MLC device under mixed load
            host_writes_per_day=daily_bytes,
        )
        rows.append(
            {
                "policy": label,
                "ssd_write_pages": f"{result.ssd_write_pages:,}",
                "daily_write_GiB": f"{daily_bytes / GiB:.1f}",
                "projected_lifetime_years": f"{est.lifetime_years:,.1f}",
            }
        )
    print(render_table(rows))
    print(
        "\nStronger content locality (smaller deltas) directly extends the"
        "\ncache's life: the paper reports up to 5.1x over LeavO."
    )


if __name__ == "__main__":
    main()
