#!/usr/bin/env python
"""OLTP latency scenario: what does KDD buy a transaction system?

Models the paper's prototype experiment (Section IV-B) at laptop scale:
a 5-disk RAID-5 with an SSD cache serving an OLTP-style workload
(calibrated to the Fin1 trace), replayed open-loop near the array's
saturation point.  Prints per-policy mean/percentile response times —
the paper's Figure 9.

Run:  python examples/oltp_latency.py
"""

from repro.cache import CacheConfig
from repro.harness import build_policy, make_raid_for_trace, render_table
from repro.sim import TimedSystem, replay_trace
from repro.traces import make_workload, workload_spec

SCALE = 0.003
TARGET_IOPS = 120.0  # keep the 5-disk array busy but not collapsing


def main() -> None:
    trace = make_workload("Fin1", scale=SCALE)
    spec = workload_spec("Fin1", SCALE)
    time_scale = spec.iops / TARGET_IOPS
    cache_pages = int(trace.stats().unique_pages * 0.10)
    print(
        f"replaying {len(trace):,} requests at ~{TARGET_IOPS:.0f} IOPS "
        f"against RAID-5 (5 disks) + {cache_pages:,}-page SSD cache\n"
    )

    rows = []
    baseline_ms = None
    for policy in ("nossd", "wa", "wt", "leavo", "kdd"):
        raid = make_raid_for_trace(trace)
        config = CacheConfig(cache_pages=cache_pages, mean_compression=0.25, seed=1)
        system = TimedSystem(build_policy(policy, config, raid))
        rep = replay_trace(system, trace, max_requests=10_000, time_scale=time_scale)
        if policy == "nossd":
            baseline_ms = rep.mean_response_ms
        rows.append(
            {
                "policy": policy,
                "mean_ms": f"{rep.mean_response_ms:.2f}",
                "p95_ms": f"{rep.latency.p95 * 1e3:.2f}",
                "p99_ms": f"{rep.latency.p99 * 1e3:.2f}",
                "vs_nossd": f"{100 * (1 - rep.mean_response_ms / baseline_ms):+.1f}%",
            }
        )
    print(render_table(rows))
    print(
        "\nKDD serves write hits with a single member write (no parity"
        "\nread-modify-write on the critical path), which is where the"
        "\nlatency reduction over Nossd/WT/WA comes from."
    )


if __name__ == "__main__":
    main()
