#!/usr/bin/env python
"""Failure drill: prove RPO=0 under power, SSD, and HDD failures.

Walks the three failure scenarios of Section III-E on a live system:

1. a power failure — the primary map is rebuilt from the on-flash
   metadata log plus the NVRAM buffers and compared against the live map;
2. an SSD cache failure — the RAID array is resynchronised so it is
   single-fault tolerant again;
3. an HDD failure — delayed parity is repaired through the cache's
   deltas, then the failed member is rebuilt from the survivors.

Run:  python examples/failure_drill.py
"""

from repro.cache import CacheConfig
from repro.core import (
    KDD,
    recover_from_hdd_failure,
    recover_from_power_failure,
    recover_from_ssd_failure,
    verify_recovery,
)
from repro.raid import RAIDArray, RaidLevel
from repro.traces import zipf_workload


def build_system():
    raid = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=16,
                     pages_per_disk=1 << 15)
    config = CacheConfig(cache_pages=4096, mean_compression=0.25, seed=7,
                         dirty_threshold=0.5, low_watermark=0.25)
    return KDD(config, raid), raid


def warm_up(kdd):
    trace = zipf_workload(
        20_000, universe_pages=20_000, alpha=1.1, read_ratio=0.3, seed=7
    )
    for req in trace:
        kdd.access(req.lba, req.is_read)


def main() -> None:
    # --- scenario 1: power failure -------------------------------------
    kdd, raid = build_system()
    warm_up(kdd)
    print(f"live cache: {len(kdd.sets)} pages, "
          f"{len(kdd.staging)} staged deltas, "
          f"{len(kdd.dez_pages)} DEZ pages, "
          f"{raid and len(raid.stale_stripes)} stripes with delayed parity")

    state = recover_from_power_failure(kdd)
    verify_recovery(kdd, state)  # raises on any divergence
    print(f"power failure : primary map rebuilt from log+NVRAM — "
          f"{state.cached_pages} pages recovered, exact match ✔")

    # --- scenario 2: SSD cache failure ----------------------------------
    report = recover_from_ssd_failure(kdd)
    print(f"SSD failure   : {report.stripes_resynced} stripes resynced, "
          f"{report.member_ios} member I/Os — array redundant again ✔")
    raid.fail_disk(0)  # now survivable
    print("                survived a subsequent disk loss ✔")

    # --- scenario 3: HDD failure ----------------------------------------
    kdd2, raid2 = build_system()
    warm_up(kdd2)
    stale = len(raid2.stale_stripes)
    report = recover_from_hdd_failure(kdd2, disk=2)
    print(f"HDD failure   : {stale} stale stripes repaired first, then "
          f"{report.pages_rebuilt} pages rebuilt onto disk 2 ✔")
    print(f"                array degraded: {raid2.degraded}")


if __name__ == "__main__":
    main()
