#!/usr/bin/env python
"""Quickstart: compare KDD against the classic SSD caching policies.

Runs a scaled-down OLTP-style trace (calibrated to the paper's Fin1
workload, Table I) through write-through, write-around, LeavO and
KDD at three content-locality levels, then prints the two headline
metrics of the paper: cache hit ratio and total SSD write traffic
(which is inversely proportional to cache device lifetime).

Run:  python examples/quickstart.py
"""

from repro import make_workload
from repro.flash import relative_lifetime
from repro.harness import render_table, simulate_policy

SCALE = 0.01  # 1% of the paper's Fin1: ~70k requests, ~10k unique pages


def main() -> None:
    trace = make_workload("Fin1", scale=SCALE)
    stats = trace.stats()
    print(f"workload: {stats.name}, {stats.requests:,} page accesses, "
          f"{stats.unique_pages:,} unique pages, "
          f"read ratio {stats.read_ratio:.2f}\n")

    cache_pages = int(stats.unique_pages * 0.10)  # cache 10% of the footprint
    rows = []
    runs = {}
    for policy, kwargs in [
        ("wa", {}),
        ("wt", {}),
        ("leavo", {}),
        ("kdd", {"mean_compression": 0.50}),
        ("kdd", {"mean_compression": 0.25}),
        ("kdd", {"mean_compression": 0.12}),
    ]:
        result = simulate_policy(policy, trace, cache_pages, seed=1, **kwargs)
        label = policy
        if policy == "kdd":
            label = f"kdd-{int(kwargs['mean_compression'] * 100)}"
        runs[label] = result
        rows.append(
            {
                "policy": label,
                "hit_ratio": f"{result.hit_ratio:.3f}",
                "ssd_write_pages": f"{result.ssd_write_pages:,}",
                "raid_member_ios": f"{result.raid.total:,}",
            }
        )
    print(render_table(rows))

    wt = runs["wt"].ssd_write_pages
    leavo = runs["leavo"].ssd_write_pages
    for label in ("kdd-50", "kdd-25", "kdd-12"):
        kdd = runs[label].ssd_write_pages
        print(
            f"\n{label}: SSD writes -{100 * (1 - kdd / wt):.1f}% vs WT, "
            f"-{100 * (1 - kdd / leavo):.1f}% vs LeavO "
            f"(cache lifetime x{relative_lifetime(kdd, leavo):.1f} vs LeavO)"
        )


if __name__ == "__main__":
    main()
