#!/usr/bin/env python
"""Op-level instrumentation: what is each device actually doing?

Installs :class:`repro.engine.InstrumentationHook` on a fault-injected
timed system and replays a synthetic workload.  The hook observes every
device operation the engine schedules — foreground member reads,
read-modify-write phases, background fills, degraded reconstruction and
repair traffic — and derives:

* a per-op JSONL trace (``op-trace.jsonl``): device, kind, request
  phase tag, submitted/start/finish timestamps, queue delay, residual
  fault and retry count per line;
* per-device queue-delay statistics and queue-depth histograms;
* a per-device utilisation timeline (busy fraction per time slice,
  fault stalls included).

Run:  python examples/op_trace.py
"""

from repro.cache import CacheConfig
from repro.engine import InstrumentationHook
from repro.faults import FaultConfig, FaultyTimedSystem
from repro.harness import build_policy, render_table
from repro.raid import RAIDArray, RaidLevel
from repro.sim import replay_trace
from repro.traces import uniform_workload

OUT = "op-trace.jsonl"


def main() -> None:
    raid = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=4,
                     pages_per_disk=4096)
    policy = build_policy(
        "kdd", CacheConfig(cache_pages=256, mean_compression=0.25, seed=1),
        raid,
    )
    system = FaultyTimedSystem(
        policy,
        FaultConfig(seed=7, ure_rate=0.005, timeout_rate=0.01),
        retry="backoff",
    )
    instrument = InstrumentationHook()
    system.add_hook(instrument)

    rep = replay_trace(system, uniform_workload(500, 4096, read_ratio=0.6,
                                                seed=7))
    nops = instrument.write_jsonl(OUT)
    print(f"{rep.requests} requests -> {nops} device ops "
          f"(mean response {rep.mean_response_ms:.2f} ms); trace in {OUT}\n")

    rows = []
    depth = instrument.queue_depth_histogram()
    for device, stats in instrument.queue_delay_stats().items():
        rows.append({
            "device": device,
            "ops": int(stats["ops"]),
            "mean_queue_ms": f"{stats['mean_queue_delay'] * 1e3:.3f}",
            "max_queue_ms": f"{stats['max_queue_delay'] * 1e3:.3f}",
            "max_depth_seen": max(depth[device], default=0),
        })
    print(render_table(rows))

    print("\nutilisation timeline (busy fraction per tenth of the run):")
    for device, frac in instrument.utilisation_timeline(rep.duration,
                                                        bins=10).items():
        bar = " ".join(f"{f:.2f}" for f in frac)
        print(f"  {device:6s} {bar}")
    print(
        "\nQueue delay separates device speed from contention: an op that"
        "\nwaited is queued behind earlier traffic (including rebuild or"
        "\nrepair I/O), not slow media.  Fault stalls count as busy time."
    )


if __name__ == "__main__":
    main()
