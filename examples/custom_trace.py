#!/usr/bin/env python
"""Bring your own trace: run the policies on an SPC-format file.

The paper evaluates on SPC financial and MSR Cambridge traces, which
are not redistributable.  This example shows the drop-in path for real
files: it synthesises a small OLTP-like trace, writes it in SPC format
(the same format as the UMass `Financial1.spc`), parses it back through
`repro.traces.parse_spc`, analyses its locality, and runs the cache
policies on it — exactly what you would do with the real download.

Run:  python examples/custom_trace.py
"""

import tempfile
from pathlib import Path

from repro.harness import render_table, simulate_policy
from repro.traces import (
    parse_spc,
    reuse_profile,
    write_hit_potential,
    write_spc,
    zipf_workload,
)


def main() -> None:
    # 1) stand-in for a downloaded trace file ---------------------------
    source = zipf_workload(
        30_000, universe_pages=6_000, alpha=1.05, read_ratio=0.35, seed=21,
        name="my-oltp",
    )
    spc_path = Path(tempfile.gettempdir()) / "my-oltp.spc"
    write_spc(source, spc_path)
    print(f"wrote {spc_path} ({spc_path.stat().st_size:,} bytes, SPC format)")

    # 2) parse it like any real SPC file --------------------------------
    trace = parse_spc(spc_path, name="my-oltp")
    stats = trace.stats()
    print(
        f"parsed: {stats.requests:,} page accesses over "
        f"{stats.unique_pages:,} unique pages, read ratio {stats.read_ratio:.2f}"
    )

    # 3) locality analysis: what can ANY cache do here? ------------------
    cache_pages = int(stats.unique_pages * 0.15)
    prof = reuse_profile(trace)
    print(
        f"\nLRU upper bound at {cache_pages:,} pages: "
        f"{prof.hit_ratio_for_cache(cache_pages):.3f} hit ratio; "
        f"write-hit potential {write_hit_potential(trace, cache_pages):.3f} "
        f"(the share of writes KDD can turn into deltas)"
    )

    # 4) run the policies -------------------------------------------------
    rows = []
    for policy, kwargs in [
        ("wa", {}),
        ("wt", {}),
        ("leavo", {}),
        ("kdd", {"mean_compression": 0.25}),
        ("kdd", {"mean_compression": 0.25, "admission": "larc"}),
    ]:
        r = simulate_policy(policy, trace, cache_pages, seed=1, **kwargs)
        label = policy + ("+larc" if kwargs.get("admission") == "larc" else "")
        rows.append(
            {
                "policy": label,
                "hit_ratio": f"{r.hit_ratio:.3f}",
                "ssd_write_pages": f"{r.ssd_write_pages:,}",
                "raid_member_ios": f"{r.raid.total:,}",
            }
        )
    print()
    print(render_table(rows))
    spc_path.unlink(missing_ok=True)


if __name__ == "__main__":
    main()
