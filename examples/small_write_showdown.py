#!/usr/bin/env python
"""Small-write showdown: every answer to RAID-5's 4-I/O problem.

Thirty years of systems work attacked the same equation — one logical
page update = 2 reads + 2 writes — from different angles.  This example
runs them all on one random-write stream and shows where each pays:

* plain RAID-5 read-modify-write (the problem itself),
* Parity Logging (ISCA'93): log parity-update images sequentially,
* AFRAID (ATC'96): skip parity, accept a window of vulnerability,
* Dynamic striping / LFS-RAID: out-of-place full-stripe writes,
* KDD (this paper): SSD cache absorbs the old versions as deltas.

Run:  python examples/small_write_showdown.py
"""

from repro.cache import CacheConfig
from repro.core import KDD
from repro.harness import render_table
from repro.raid import (
    AfraidRaid,
    LogStructuredRaid,
    ParityLoggingRaid,
    RAIDArray,
    RaidLevel,
)
from repro.traces import zipf_workload


def fresh_array():
    return RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=16,
                     pages_per_disk=1 << 15)


def main() -> None:
    trace = zipf_workload(20_000, 6_000, alpha=1.0, read_ratio=0.0, seed=17,
                          name="random-writes")
    writes = [int(lba) for lba in trace.records["lba"]]
    n = len(writes)
    print(f"{n:,} random 4 KiB writes over a 5-disk RAID-5\n")
    rows = []

    rmw = fresh_array()
    for lba in writes:
        rmw.write(lba)
    rows.append({
        "scheme": "raid5 rmw",
        "member_ios": f"{rmw.counters.total:,}",
        "ios_per_write": f"{rmw.counters.total / n:.2f}",
        "exposure": "none",
        "extra_cost": "-",
    })

    pl = ParityLoggingRaid(fresh_array(), log_pages=8192, nvram_pages=64)
    for lba in writes:
        pl.write(lba)
    pl.flush()
    random_ios = pl.counters.data_reads + pl.counters.data_writes
    seq_ios = pl.counters.log_writes + pl.counters.reintegration_ios
    rows.append({
        "scheme": "parity logging",
        "member_ios": f"{pl.array.counters.total + seq_ios:,}",
        "ios_per_write": f"{random_ios / n:.2f} rnd + {seq_ios / n:.2f} seq",
        "exposure": "none",
        "extra_cost": "log disk + reintegration",
    })

    af = AfraidRaid(fresh_array(), max_unredundant_stripes=256)
    max_window = 0
    for lba in writes:
        af.write(lba)
        max_window = max(max_window, af.window_of_vulnerability)
    af.flush()
    rows.append({
        "scheme": "afraid",
        "member_ios": f"{af.array.counters.total:,}",
        "ios_per_write": f"{af.array.counters.total / n:.2f}",
        "exposure": f"up to {max_window} stripes",
        "extra_cost": "idle-time repair",
    })

    ls = LogStructuredRaid(fresh_array(), reserve_stripes=32)
    for lba in writes:
        ls.write(lba % ls.exported_pages)
    ls.flush()
    rows.append({
        "scheme": "lfs striping",
        "member_ios": f"{ls.array.counters.total:,}",
        "ios_per_write": f"{ls.array.counters.total / n:.2f}",
        "exposure": "none",
        "extra_cost": f"cleaning (WAF {ls.write_amplification:.2f})",
    })

    kdd_raid = fresh_array()
    kdd = KDD(CacheConfig(cache_pages=3000, ways=64, seed=1), kdd_raid)
    for lba in writes:
        kdd.write(lba)
    kdd.finish()
    rows.append({
        "scheme": "kdd (this paper)",
        "member_ios": f"{kdd_raid.counters.total:,}",
        "ios_per_write": f"{kdd_raid.counters.total / n:.2f}",
        "exposure": "none (deltas in SSD)",
        "extra_cost": f"{kdd.stats.ssd_writes:,} SSD page writes",
    })

    print(render_table(rows))
    print(
        "\nKDD is the only scheme that removes the penalty on write hits"
        "\nwhile staying always-redundant with unchanged RAID layout —"
        "\npaid for with (delta-compressed) SSD cache writes."
    )


if __name__ == "__main__":
    main()
