"""Magnetic disk service-time model.

A 7,200 RPM drive (the paper's testbed uses fifteen of them) is modelled
with the classic three-component service time: seek + rotational latency
+ transfer, where seek time depends on the distance from the previous
head position.  Look-ahead and the on-drive volatile cache are disabled
in the paper (``hdparm``), so we model none either.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..units import MILLISECOND, TiB


@dataclass(frozen=True)
class HDDParams:
    """Mechanical parameters of a 7,200 RPM enterprise SATA drive."""

    capacity_bytes: int = 1 * TiB
    rpm: float = 7200.0
    #: Track-to-track (minimum) seek.
    seek_min: float = 0.5 * MILLISECOND
    #: Average random seek.
    seek_avg: float = 8.5 * MILLISECOND
    #: Full-stroke seek.
    seek_max: float = 16.0 * MILLISECOND
    #: Sustained media transfer rate, bytes/second.
    transfer_rate: float = 120e6

    def __post_init__(self) -> None:
        if self.rpm <= 0 or self.transfer_rate <= 0 or self.capacity_bytes <= 0:
            raise ConfigError("rpm, transfer_rate and capacity must be positive")
        if not self.seek_min <= self.seek_avg <= self.seek_max:
            raise ConfigError("need seek_min <= seek_avg <= seek_max")

    @property
    def rotation_time(self) -> float:
        return 60.0 / self.rpm

    @property
    def avg_rotational_latency(self) -> float:
        return self.rotation_time / 2.0


class HDD:
    """One disk: stateful head position, service-time computation."""

    def __init__(self, params: HDDParams | None = None, page_size: int = 4096) -> None:
        self.params = params or HDDParams()
        self.page_size = page_size
        self.capacity_pages = self.params.capacity_bytes // page_size
        self._head_page = 0
        self.reads = 0
        self.writes = 0
        self.busy_time = 0.0

    def _seek_time(self, page: int) -> float:
        """Seek time as a function of head travel distance.

        Square-root seek curve between min and max seek, the standard
        approximation for voice-coil actuators.
        """
        distance = abs(page - self._head_page)
        if distance == 0:
            return 0.0
        frac = (distance / max(1, self.capacity_pages)) ** 0.5
        p = self.params
        return p.seek_min + (p.seek_max - p.seek_min) * frac

    def service_time(self, page: int, npages: int, is_read: bool) -> float:
        """Service time for an ``npages``-long access at ``page``.

        Advances the head; sequential back-to-back accesses pay no seek
        and (approximately) no rotational latency.
        """
        if npages < 1:
            raise ConfigError("npages must be >= 1")
        p = self.params
        seek = self._seek_time(page)
        rot = 0.0 if page == self._head_page and seek == 0.0 else p.avg_rotational_latency
        transfer = npages * self.page_size / p.transfer_rate
        self._head_page = page + npages
        if is_read:
            self.reads += npages
        else:
            self.writes += npages
        total = seek + rot + transfer
        self.busy_time += total
        return total
