"""Hard disk drive substrate."""

from .hdd import HDD, HDDParams

__all__ = ["HDD", "HDDParams"]
