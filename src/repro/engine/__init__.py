"""Discrete-event simulation engine: the only module advancing simulated time.

Layers (see DESIGN.md "Timing engine"):

* :mod:`repro.engine.core` — deterministic event heap, typed op records;
* :mod:`repro.engine.resources` — device resources (HDD members, SSD
  cache) behind pluggable queue disciplines (FCFS, priority-FCFS);
* :mod:`repro.engine.hooks` — composable middleware: the fault pipeline
  and op-level instrumentation;
* :mod:`repro.engine.system` — :class:`SimEngine`, the request pipeline.

Everything user-facing (``TimedSystem``, ``FaultyTimedSystem``,
``replay_trace``, ``run_closed_loop``, ``rebuild_under_load``) is a thin
source/facade over this package; kdd-lint rule RPR009 keeps clock
arithmetic from leaking back out.
"""

from .core import Event, EventLoop, OpRecord, Priority, RequestRecord
from .hooks import EngineHook, FaultPipelineHook, InstrumentationHook
from .resources import (
    FCFS,
    DiskResource,
    PriorityFCFS,
    QueueDiscipline,
    Resource,
    ServiceWindow,
    SSDResource,
)
from .system import SimEngine

__all__ = [
    "FCFS",
    "DiskResource",
    "EngineHook",
    "Event",
    "EventLoop",
    "FaultPipelineHook",
    "InstrumentationHook",
    "OpRecord",
    "Priority",
    "PriorityFCFS",
    "QueueDiscipline",
    "RequestRecord",
    "Resource",
    "SSDResource",
    "ServiceWindow",
    "SimEngine",
]
