"""Composable engine middleware: faults and instrumentation as hooks.

The pre-engine code grew cross-cutting behaviour by subclassing the
timing simulator and overriding its scheduling internals
(``FaultyTimedSystem._serve_ssd``, ``_schedule_disk_phases``, ...).
That pattern composes badly — two concerns would fight over the same
override points.  The engine instead exposes a small hook protocol
(:class:`EngineHook`); cross-cutting behaviour is a *stack* of hooks
installed on one engine:

* :class:`FaultPipelineHook` — the whole fault pipeline: scheduled
  whole-device failures, transparent retries, residual-fault escalation
  to degraded RAID reconstruction, on-demand stale-parity repair, and
  the fault event log.  Member reads are wrapped middleware-style
  (each hook can wrap the read handler the way WSGI middleware wraps an
  application), so escalation composes with any other read wrapper.
* :class:`InstrumentationHook` — op-level observability: per-op records
  (device, kind, arrival, start, finish, queue delay, residual fault),
  per-device utilisation timelines, queue-depth histograms, and JSONL
  op-trace export.  It observes the resources directly, so what it
  records is invariant under hook installation order.

Simulated-time arithmetic stays inside :mod:`repro.engine` (rule
RPR009): hooks compute *when* things finish only by serving resources
through the engine, never by touching device clocks themselves.
"""

from __future__ import annotations

import json
from bisect import bisect_right, insort
from collections import Counter
from collections.abc import Callable, Iterable
from typing import TYPE_CHECKING, Any

from ..errors import ConfigError, DegradedError
from ..faults.retry import RetryPolicy
from ..faults.schedule import FaultCounters, FaultKind, FaultSchedule
from ..raid.array import DiskOp
from .core import OpRecord, Priority, RequestRecord
from .resources import ServiceWindow

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .system import SimEngine

#: A member-read handler: serve one member-disk read submitted at
#: ``earliest`` and return its (possibly escalated) service window.
MemberReadHandler = Callable[[DiskOp, float, Priority, str], ServiceWindow]


class EngineHook:
    """Base hook: every callback is a no-op.  Subclass what you need.

    Hooks execute inside sweep worker processes, so every method of
    every subclass is a worker entry point for the effect analyzer:
    mutating module-level state from a hook is a sweep race
    (RPR205/RPR206, see DESIGN §12).

    Callbacks fire at fixed points of the request pipeline:

    ``install``
        once, when the hook is added to an engine;
    ``on_request``
        before the policy interprets a foreground request (the only
        point where scheduled state changes — e.g. whole-device
        failures — may strike);
    ``wrap_member_read``
        middleware composition over the member-read handler;
    ``on_member_write``
        after each member write the request pipeline scheduled;
    ``on_ssd_window``
        after each SSD cache command;
    ``on_request_done``
        after a foreground request completed.
    """

    def install(self, engine: SimEngine) -> None:
        """Wire the hook into ``engine`` (resources, observers, ...)."""

    def on_request(self, engine: SimEngine, now: float) -> None:
        """A foreground request is about to be interpreted at ``now``."""

    def wrap_member_read(self, engine: SimEngine,
                         nxt: MemberReadHandler) -> MemberReadHandler:
        """Return a handler wrapping ``nxt`` (default: unwrapped)."""
        return nxt

    def on_member_write(self, engine: SimEngine, op: DiskOp,
                        window: ServiceWindow) -> None:
        """A member write completed with ``window``."""

    def on_ssd_window(self, engine: SimEngine, window: ServiceWindow,
                      npages: int, is_read: bool) -> None:
        """An SSD cache command completed with ``window``."""

    def on_request_done(self, engine: SimEngine,
                        record: RequestRecord) -> None:
        """A foreground request finished end to end."""


# ---------------------------------------------------------------------------
# Fault pipeline
# ---------------------------------------------------------------------------


class FaultPipelineHook(EngineHook):
    """The fault pipeline as engine middleware.

    Semantics (ported unchanged from the subclass-override era):

    * every member disk gets its own seeded fault stream (``disk0``,
      ``disk1``, ...); the SSD cache gets a timeout-only stream
      (``ssd`` — a cache-side media error is a miss, not a data-loss
      hazard, because every write reached RAID);
    * devices absorb transient timeouts with the retry policy (each
      retry stalls the device and delays queued commands);
    * a *residual* member-read fault escalates to the RAID layer: the
      page is read degraded from its surviving stripe peers + parity,
      and a URE additionally triggers a background repair rewrite;
    * a degraded read of a **stale-parity** stripe cannot be served —
      the paper's vulnerability window.  With ``repair_stale_on_demand``
      the hook first charges a parity repair, then reconstructs; with
      it off the :class:`DegradedError` propagates to the caller;
    * whole-device failures strike at their scheduled instants, before
      the next request is interpreted.

    Model simplifications, stated honestly: a fault on a multi-page
    member op is attributed to the op's first page; faults drawn by the
    nested reconstruction / repair traffic add their stall latency but
    do not re-escalate (no recursive reconstruction).
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        retry: RetryPolicy,
        repair_stale_on_demand: bool = True,
    ) -> None:
        self.schedule = schedule
        self.retry = retry
        self.repair_stale_on_demand = repair_stale_on_demand
        self.counters = FaultCounters()
        self._devices_failed: set[int] = set()

    # -- wiring --------------------------------------------------------------

    def install(self, engine: SimEngine) -> None:
        for i, disk in enumerate(engine.disks):
            disk.faults = self.schedule.stream(f"disk{i}")
            disk.retry = self.retry
        engine.ssd.faults = self.schedule.stream("ssd", media_faults=False)
        engine.ssd.retry = self.retry

    # -- whole-device failures ----------------------------------------------

    def on_request(self, engine: SimEngine, now: float) -> None:
        """Fail any member whose scheduled instant has passed, exactly once.

        Runs *before* the policy interprets a request, so the array is
        already degraded when it emits that request's member ops.
        """
        for disk_idx, resource in enumerate(engine.disks):
            stream = resource.faults
            if (
                stream is None
                or disk_idx in self._devices_failed
                or not stream.failed_by(now)
            ):
                continue
            self._devices_failed.add(disk_idx)
            self.counters.device_failures += 1
            self.schedule.record(
                max(now, stream.fail_at or 0.0),
                f"disk{disk_idx}",
                FaultKind.DEVICE_FAIL.value,
                detail="scheduled whole-device failure",
            )
            engine.policy.raid.fail_disk(disk_idx)

    # -- SSD commands --------------------------------------------------------

    def on_ssd_window(self, engine: SimEngine, window: ServiceWindow,
                      npages: int, is_read: bool) -> None:
        """SSD commands only ever time out; the stall is the whole cost."""
        self.counters.retries += window.retries
        if window.fault is FaultKind.TIMEOUT:
            self.counters.timeouts += 1
            self.schedule.record(
                window.finish, "ssd", FaultKind.TIMEOUT.value,
                detail=f"retries exhausted ({window.retries}); waited out",
            )

    # -- member writes -------------------------------------------------------

    def on_member_write(self, engine: SimEngine, op: DiskOp,
                        window: ServiceWindow) -> None:
        self.counters.retries += window.retries
        if window.fault is not None:
            # A write's residual fault is a stall, already in window.finish;
            # the array would remap the sector on a real device.
            self.counters.timeouts += 1
            self.schedule.record(
                window.finish, f"disk{op.disk}", FaultKind.TIMEOUT.value,
                op.disk_page, detail="write stall (waited out)",
            )

    # -- member reads: the escalation middleware -----------------------------

    def wrap_member_read(self, engine: SimEngine,
                         nxt: MemberReadHandler) -> MemberReadHandler:
        def handler(op: DiskOp, earliest: float, priority: Priority,
                    tag: str) -> ServiceWindow:
            window = nxt(op, earliest, priority, tag)
            self.counters.retries += window.retries
            if window.ok:
                return window
            finish = self._escalate(engine, op, window)
            # The caller only needs the effective completion; escalation
            # resolved the fault, so the returned window is clean.
            return ServiceWindow(start=window.start, finish=finish)

        return handler

    def _serve_plain(self, engine: SimEngine, ops: Iterable[DiskOp],
                     earliest: float, tag: str,
                     priority: Priority = Priority.FOREGROUND) -> float:
        """Serve nested repair traffic without re-escalation.

        Fault draws still advance the streams and their stalls still
        count, but residual faults here do not recurse.
        """
        done, windows = engine.serve_plain_phases(ops, earliest,
                                                 priority=priority, tag=tag)
        for window in windows:
            self.counters.retries += window.retries
        return done

    def _repair_stale_parity(self, engine: SimEngine, stripe: int,
                             device: str, now: float) -> float:
        """Charge an on-demand parity repair for ``stripe``; returns finish."""
        raid = engine.policy.raid
        self.counters.stale_escalations += 1
        self.schedule.record(
            now, device, "stale_escalation",
            detail=f"stripe {stripe} parity stale: repair before reconstruction",
        )
        repair_ops = raid.parity_update(
            stripe, cached_pages=list(raid.layout.stripe_pages(stripe))
        )
        done = self._serve_plain(engine, repair_ops, now, tag="repair")
        self.counters.repairs += 1
        self.schedule.record(done, device, "parity_repair",
                             detail=f"stripe {stripe}")
        return done

    def _reconstruction_ops(
        self, engine: SimEngine, op: DiskOp, now: float, device: str
    ) -> tuple[float, list[DiskOp]]:
        """Degraded-read plan for ``op``'s page, repairing stale parity
        on demand; raises :class:`DegradedError` when reconstruction is
        impossible (RAID-0, double failure, or stale parity with
        ``repair_stale_on_demand=False``)."""
        raid = engine.policy.raid
        try:
            return now, raid.reconstruct_read_ops(op.disk, op.disk_page)
        except DegradedError:
            stripe, _kind = raid.member_page_role(op.disk, op.disk_page)
            if not (self.repair_stale_on_demand and stripe in raid.stale_stripes):
                raise
        done = self._repair_stale_parity(engine, stripe, device, now)
        return done, raid.reconstruct_read_ops(op.disk, op.disk_page)

    def _escalate(self, engine: SimEngine, op: DiskOp,
                  window: ServiceWindow) -> float:
        """Resolve a residual member-read fault; returns the read's finish."""
        device = f"disk{op.disk}"
        raid = engine.policy.raid
        if window.fault is FaultKind.TIMEOUT:
            self.counters.timeouts += 1
            self.schedule.record(
                window.finish, device, FaultKind.TIMEOUT.value, op.disk_page,
                detail=f"retries exhausted ({window.retries})",
            )
            try:
                now, recon = self._reconstruction_ops(engine, op,
                                                      window.finish, device)
            except DegradedError:
                # No redundancy to read around a transient stall: the
                # command is simply waited out (the stall already counted).
                return window.finish
            done = self._serve_plain(engine, recon, now, tag="reconstruct")
            self.counters.reconstructions += 1
            return done
        # Residual URE: the media is bad until repaired.
        self.counters.ures += 1
        self.schedule.record(window.finish, device, FaultKind.URE.value,
                             op.disk_page)
        raid.mark_media_error(op.disk, op.disk_page)
        now, recon = self._reconstruction_ops(engine, op, window.finish, device)
        done = self._serve_plain(engine, recon, now, tag="reconstruct")
        self.counters.reconstructions += 1
        # Background repair: rewrite the reconstructed page.  The
        # reconstruction reads were just served; only the write still
        # needs device time, after the foreground read completes.
        repair = raid.repair_page(op.disk, op.disk_page)
        self._serve_plain(engine, [o for o in repair if not o.is_read], done,
                          tag="repair", priority=Priority.BACKGROUND)
        self.counters.repairs += 1
        self.schedule.record(done, device, "media_repair", op.disk_page)
        return done

    # -- results -------------------------------------------------------------

    def fault_row(self) -> dict[str, object]:
        """Counter + event summary for experiment result rows."""
        row: dict[str, object] = dict(self.counters.row())
        row["fault_events"] = len(self.schedule.events)
        return row


# ---------------------------------------------------------------------------
# Instrumentation
# ---------------------------------------------------------------------------


class InstrumentationHook(EngineHook):
    """Op-level observability over one engine run.

    Registers an observer on every resource, so each device operation —
    foreground, background, reconstruction, rebuild — lands here as one
    :class:`OpRecord`, in global service order.  Because the records
    come from the resources rather than from other hooks, the collected
    trace is invariant under hook installation order.
    """

    def __init__(self) -> None:
        self.ops: list[OpRecord] = []
        self.requests: list[RequestRecord] = []
        self.devices: list[str] = []

    def install(self, engine: SimEngine) -> None:
        for resource in engine.resources():
            resource.add_observer(self.ops.append)
            self.devices.append(resource.name)

    def on_request_done(self, engine: SimEngine,
                        record: RequestRecord) -> None:
        self.requests.append(record)

    # -- derived views -------------------------------------------------------

    def _by_device(self) -> dict[str, list[OpRecord]]:
        out: dict[str, list[OpRecord]] = {name: [] for name in self.devices}
        for op in self.ops:
            out.setdefault(op.device, []).append(op)
        return out

    def queue_delay_stats(self) -> dict[str, dict[str, float]]:
        """Per-device queue-delay summary (seconds)."""
        out: dict[str, dict[str, float]] = {}
        for device, ops in sorted(self._by_device().items()):
            delays = [op.queue_delay for op in ops]
            out[device] = {
                "ops": float(len(delays)),
                "mean_queue_delay": (sum(delays) / len(delays)) if delays else 0.0,
                "max_queue_delay": max(delays, default=0.0),
            }
        return out

    def queue_depth_histogram(self) -> dict[str, dict[int, int]]:
        """Per-device histogram of queue depth seen at op submission.

        Depth for an op is the number of earlier ops on the same device
        still queued or in service when it was submitted.  Per-device
        finish times are nondecreasing under every FCFS-family
        discipline, so a sorted insert keeps the scan ``O(n log n)``.
        """
        out: dict[str, dict[int, int]] = {}
        for device, ops in sorted(self._by_device().items()):
            finishes: list[float] = []
            depths: Counter[int] = Counter()
            for op in ops:
                depth = len(finishes) - bisect_right(finishes, op.submitted)
                depths[depth] += 1
                insort(finishes, op.finish)
            out[device] = dict(sorted(depths.items()))
        return out

    def utilisation_timeline(
        self, duration: float, bins: int = 20
    ) -> dict[str, list[float]]:
        """Per-device busy fraction over ``bins`` equal slices of
        ``[0, duration]``; includes fault stalls (they occupy the device)."""
        if duration <= 0:
            raise ConfigError("duration must be positive")
        if bins < 1:
            raise ConfigError("bins must be >= 1")
        width = duration / bins
        out: dict[str, list[float]] = {}
        for device, ops in sorted(self._by_device().items()):
            busy = [0.0] * bins
            for op in ops:
                lo = max(0.0, op.start)
                hi = min(duration, op.finish)
                if hi <= lo:
                    continue
                first = min(bins - 1, int(lo / width))
                last = min(bins - 1, int(hi / width))
                for b in range(first, last + 1):
                    overlap = min(hi, (b + 1) * width) - max(lo, b * width)
                    if overlap > 0:
                        busy[b] += overlap
            out[device] = [min(1.0, b / width) for b in busy]
        return out

    def summary(self, duration: float, bins: int = 20) -> dict[str, Any]:
        """One JSON-ready bundle of every derived view."""
        return {
            "ops": len(self.ops),
            "requests": len(self.requests),
            "queue_delay": self.queue_delay_stats(),
            "queue_depth": {
                device: {str(k): v for k, v in hist.items()}
                for device, hist in self.queue_depth_histogram().items()
            },
            "utilisation_timeline": self.utilisation_timeline(duration, bins),
        }

    # -- export --------------------------------------------------------------

    def write_jsonl(self, path: str) -> int:
        """Write the op trace as JSON Lines; returns the line count."""
        with open(path, "w") as fh:
            for op in self.ops:
                fh.write(json.dumps(op.row(), sort_keys=True))
                fh.write("\n")
        return len(self.ops)
