"""Event core of the discrete-event simulation engine.

Everything that advances simulated time in this repository lives in
:mod:`repro.engine` (enforced by kdd-lint rule RPR009).  This module
holds the two primitives the rest of the engine builds on:

* :class:`EventLoop` — a deterministic event heap.  Events are ordered
  by ``(time, seq)`` where ``seq`` is a monotonically increasing
  sequence number assigned at scheduling time, so equal-time events pop
  in scheduling order — never in hash or identity order.  There is no
  wall clock anywhere: ``now`` only moves when an event is popped.
* :class:`OpRecord` — the typed record of one device operation (who,
  what, when queued, when started, when finished, what went wrong).
  Resources emit one per serve; the instrumentation hook aggregates
  them into op traces, queue-delay summaries, utilisation timelines and
  queue-depth histograms.

The loop is intentionally small: workload drivers (open-loop replay,
closed-loop threads, rebuild batches) are *sources* that schedule
events; device timing is the resources' job
(:mod:`repro.engine.resources`); cross-cutting behaviour (faults,
instrumentation) hangs off the hook protocol
(:mod:`repro.engine.hooks`).
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass, field
from enum import Enum

from ..errors import ConfigError, SimulationError, raises


class Priority(Enum):
    """Service class of a device operation.

    ``FOREGROUND`` is work a request waits on; ``BACKGROUND`` is
    asynchronous work (read fills, cleaning, rebuild, repair traffic).
    The FCFS discipline ignores the class (every op queues in arrival
    order); the priority discipline defers background service so
    foreground requests never wait behind *queued* background work.
    """

    FOREGROUND = "fg"
    BACKGROUND = "bg"


@dataclass(frozen=True)
class OpRecord:
    """One device operation, fully resolved.

    ``submitted`` is when the op arrived at the resource (the earliest
    it could have started); ``queue_delay = start - submitted`` is time
    spent waiting for the device.  ``fault`` is the residual fault kind
    value (``"ure"``/``"timeout"``) or ``None``; ``fault_latency`` is
    stall + backoff time already included in ``finish``.
    """

    op_id: int
    device: str
    kind: str  # "read" | "write"
    npages: int
    priority: str  # Priority.value
    tag: str  # request phase: "fg", "bg", "reconstruct", "repair", "inject", ...
    submitted: float
    start: float
    finish: float
    fault: str | None = None
    retries: int = 0
    fault_latency: float = 0.0

    @property
    def queue_delay(self) -> float:
        return self.start - self.submitted

    @property
    def service(self) -> float:
        return self.finish - self.start

    def row(self) -> dict[str, object]:
        """JSON-ready dict (the op-trace JSONL line)."""
        return {
            "op": self.op_id,
            "device": self.device,
            "kind": self.kind,
            "npages": self.npages,
            "priority": self.priority,
            "tag": self.tag,
            "submitted": self.submitted,
            "start": self.start,
            "finish": self.finish,
            "queue_delay": self.queue_delay,
            "fault": self.fault,
            "retries": self.retries,
            "fault_latency": self.fault_latency,
        }


@dataclass(frozen=True)
class RequestRecord:
    """One foreground request, as the workload source submitted it."""

    lba: int
    npages: int
    is_read: bool
    arrival: float
    completion: float

    @property
    def response_time(self) -> float:
        return self.completion - self.arrival


@dataclass(order=True)
class Event:
    """One scheduled occurrence.  Orders by ``(time, seq)`` only."""

    time: float
    seq: int
    action: Callable[[float], None] = field(compare=False)
    label: str = field(default="", compare=False)


class EventLoop:
    """Deterministic event heap; the only thing that moves ``now``.

    ``now`` is monotone: popping an event with a timestamp behind the
    current clock (a source handing over late work, e.g. a rebuild
    batch injected while the foreground ran ahead) keeps ``now`` where
    it is — the action still sees its scheduled time as argument.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[Event] = []
        self._seq = 0
        self.processed = 0

    def schedule(self, time: float, action: Callable[[float], None],
                 label: str = "") -> Event:
        """Schedule ``action(time)`` at ``time``; ties pop in FIFO order."""
        if time < 0:
            raise ConfigError(f"cannot schedule an event at negative time {time}")
        event = Event(time=time, seq=self._seq, action=action, label=label)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def __len__(self) -> int:
        return len(self._heap)

    def step(self) -> bool:
        """Pop and run the earliest event; False when the heap is empty."""
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self.now = max(self.now, event.time)
        self.processed += 1
        event.action(event.time)
        return True

    @raises(SimulationError)
    def run(self, max_events: int | None = None) -> int:
        """Run until the heap drains; returns the number of events run."""
        ran = 0
        while self._heap:
            if max_events is not None and ran >= max_events:
                raise SimulationError(
                    f"event loop exceeded {max_events} events; "
                    "a source is rescheduling itself unboundedly"
                )
            self.step()
            ran += 1
        return ran
