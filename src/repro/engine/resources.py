"""Device resources: service-time models behind queue disciplines.

Each member disk and the SSD cache is a *resource*: the substrate's
service-time model (:class:`repro.disk.HDD`, :class:`repro.flash.SSDLatency`)
wrapped behind a :class:`QueueDiscipline` that decides when a queued
operation may start.  The simulation engine feeds operations in global
submission order, so a per-resource clock implements the disciplines
exactly:

* :class:`FCFS` — first come, first served; an op starts when the
  device finished everything submitted before it.  This is the
  historical ``busy_until`` behaviour and the default everywhere.
* :class:`PriorityFCFS` — non-preemptive foreground priority:
  foreground ops queue FCFS, while background ops (cleaning, rebuild,
  repair traffic) are additionally deferred until ``bg_idle_gap``
  seconds after the last foreground service, modelling the classic
  rebuild-rate throttle.  With ``bg_idle_gap=0`` it reduces to FCFS.

Fault surface
-------------

Both resources accept an optional *fault stream*
(:class:`repro.faults.DeviceFaultStream`) and a
:class:`repro.faults.RetryPolicy`.  A serve call then returns a *typed
outcome* instead of assuming success: the :class:`ServiceWindow` carries
the residual :class:`~repro.faults.FaultKind` (``None`` when the command
succeeded), how many transparent retries the device absorbed, and the
latency those stalls and backoffs added.  Transient timeouts are retried
in place (each retry stalls the device — later commands queue behind the
backoff); a leftover ``TIMEOUT`` means retries ran out, and a ``URE`` is
persistent by definition, so both escalate to the caller (the RAID layer
reconstructs, see :mod:`repro.engine.hooks`).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..disk.hdd import HDD, HDDParams
from ..errors import ConfigError
from ..faults.retry import RetryPolicy
from ..faults.schedule import DeviceFaultStream, FaultKind
from ..flash.device import SSDLatency
from .core import OpRecord, Priority


@dataclass
class ServiceWindow:
    """When an operation started and finished on a resource — and whether
    it actually succeeded.

    ``fault`` is the *residual* fault after the device's transparent
    retries: ``None`` for success, :attr:`FaultKind.URE` for an
    unrecoverable media error, :attr:`FaultKind.TIMEOUT` when the retry
    budget ran out.  ``fault_latency`` (stalls + backoffs) is already
    included in ``finish``.
    """

    start: float
    finish: float
    fault: FaultKind | None = None
    retries: int = 0
    fault_latency: float = 0.0

    @property
    def ok(self) -> bool:
        return self.fault is None


def _faulted_service(
    stream: DeviceFaultStream | None,
    retry: RetryPolicy | None,
    is_read: bool,
    npages: int,
) -> tuple[FaultKind | None, int, float]:
    """Draw a command's fault outcome and absorb transient retries.

    Returns ``(residual fault, retries used, added latency)``.  Each
    timeout stalls ``timeout_s`` then waits the policy's backoff before
    the retry re-draws from the stream; a URE is persistent and is
    never retried (re-reading bad media returns the same error).
    """
    if stream is None:
        return None, 0, 0.0
    fault = stream.draw(is_read, npages)
    retries = 0
    penalty = 0.0
    timeout_s = stream.config.timeout_s
    while (
        fault is FaultKind.TIMEOUT
        and retry is not None
        and retries < retry.max_retries
    ):
        penalty += timeout_s + retry.backoff(retries)
        retries += 1
        fault = stream.draw(is_read, npages)
    if fault is FaultKind.TIMEOUT:
        penalty += timeout_s  # the final, un-retried stall
    return fault, retries, penalty


class QueueDiscipline:
    """Decides when a newly submitted operation may start service."""

    def start_time(self, resource: "Resource", earliest: float,
                   priority: Priority) -> float:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class FCFS(QueueDiscipline):
    """First come, first served: start when the device drains its queue."""

    def start_time(self, resource: "Resource", earliest: float,
                   priority: Priority) -> float:
        return max(earliest, resource.busy_until)

    def describe(self) -> str:
        return "fcfs"


class PriorityFCFS(FCFS):
    """Foreground-priority FCFS with a background idle-gap throttle.

    Non-preemptive: a background op already in service still delays
    foreground arrivals (that is physics), but *queued* background work
    never starts before ``bg_idle_gap`` seconds have passed since the
    last foreground service finished — the engine's rebuild-rate /
    cleaning-throttle knob.
    """

    def __init__(self, bg_idle_gap: float = 0.0) -> None:
        if bg_idle_gap < 0:
            raise ConfigError("bg_idle_gap must be >= 0")
        self.bg_idle_gap = bg_idle_gap

    def start_time(self, resource: "Resource", earliest: float,
                   priority: Priority) -> float:
        start = max(earliest, resource.busy_until)
        if priority is Priority.BACKGROUND:
            start = max(start, resource.last_fg_finish + self.bg_idle_gap)
        return start

    def describe(self) -> str:
        return f"priority-fcfs(bg_idle_gap={self.bg_idle_gap})"


#: Observer signature: called with each completed :class:`OpRecord`.
OpObserver = Callable[[OpRecord], None]


class Resource:
    """Shared state and accounting for one device resource.

    ``busy_time`` accumulates the full occupied window of every serve —
    service time *plus* fault stalls and backoffs — because a stalled
    device is every bit as unavailable as a transferring one; the
    separate ``stall_time`` tally isolates the fault-injected share.
    """

    def __init__(self, name: str, discipline: QueueDiscipline | None) -> None:
        self.name = name
        self.discipline = discipline or FCFS()
        self.busy_until = 0.0
        self.busy_time = 0.0
        self.stall_time = 0.0
        self.last_fg_finish = 0.0
        self._observers: list[OpObserver] = []
        self._op_ids: Callable[[], int] = self._local_ids
        self._next_local_id = 0

    def _local_ids(self) -> int:
        """Standalone resources number their own ops from zero."""
        next_id = self._next_local_id
        self._next_local_id += 1
        return next_id

    def add_observer(self, observer: OpObserver) -> None:
        self._observers.append(observer)

    def use_op_ids(self, allocator: Callable[[], int]) -> None:
        """Share an engine-wide op-id sequence (global trace ordering)."""
        self._op_ids = allocator

    def _account(self, window: ServiceWindow, priority: Priority) -> None:
        self.busy_until = window.finish
        self.busy_time += window.finish - window.start
        self.stall_time += window.fault_latency
        if priority is Priority.FOREGROUND:
            self.last_fg_finish = window.finish

    def _emit(self, *, kind: str, npages: int, priority: Priority, tag: str,
              submitted: float, window: ServiceWindow) -> None:
        if not self._observers:
            return
        record = OpRecord(
            op_id=self._op_ids(),
            device=self.name,
            kind=kind,
            npages=npages,
            priority=priority.value,
            tag=tag,
            submitted=submitted,
            start=window.start,
            finish=window.finish,
            fault=window.fault.value if window.fault is not None else None,
            retries=window.retries,
            fault_latency=window.fault_latency,
        )
        for observer in self._observers:
            observer(record)


class DiskResource(Resource):
    """One member disk: the mechanical HDD model behind a discipline."""

    def __init__(
        self,
        params: HDDParams | None = None,
        page_size: int = 4096,
        faults: DeviceFaultStream | None = None,
        retry: RetryPolicy | None = None,
        name: str = "disk",
        discipline: QueueDiscipline | None = None,
    ) -> None:
        super().__init__(name, discipline)
        self.hdd = HDD(params, page_size=page_size)
        self.ops = 0
        self.faults = faults
        self.retry = retry

    def serve(
        self,
        disk_page: int,
        npages: int,
        is_read: bool,
        earliest: float,
        priority: Priority = Priority.FOREGROUND,
        tag: str = "fg",
    ) -> ServiceWindow:
        """Queue one access; returns its service window (typed outcome)."""
        start = self.discipline.start_time(self, earliest, priority)
        service = self.hdd.service_time(disk_page, npages, is_read)
        fault, retries, penalty = _faulted_service(
            self.faults, self.retry, is_read, npages
        )
        window = ServiceWindow(start=start, finish=start + service + penalty,
                               fault=fault, retries=retries,
                               fault_latency=penalty)
        self._account(window, priority)
        self.ops += 1
        self._emit(kind="read" if is_read else "write", npages=npages,
                   priority=priority, tag=tag, submitted=earliest,
                   window=window)
        return window

    @property
    def utilisation_time(self) -> float:
        """Busy seconds including fault stalls (the utilisation tally)."""
        return self.busy_time


class SSDResource(Resource):
    """The cache device: channel-parallel page reads/programs, queued.

    Commands are admitted device-FCFS (one outstanding command; the next
    starts when the previous finishes); *within* a command the pages
    fan out over ``channels`` ways.  Page-to-channel assignment is
    deterministic: least-busy channel first, equal ``busy_until`` ties
    broken by the **lowest channel index** — never by dict/hash order —
    so fault draws and timestamps are stable across runs and workers.
    """

    def __init__(
        self,
        latency: SSDLatency | None = None,
        channels: int = 8,
        faults: DeviceFaultStream | None = None,
        retry: RetryPolicy | None = None,
        name: str = "ssd",
        discipline: QueueDiscipline | None = None,
    ) -> None:
        if channels < 1:
            raise ConfigError("channels must be >= 1")
        super().__init__(name, discipline)
        self.latency = latency or SSDLatency()
        self.channels = channels
        self.reads = 0
        self.writes = 0
        self.faults = faults
        self.retry = retry
        #: Per-channel completion clocks (a list, indexed by channel —
        #: the index *is* the tie-break key).
        self.channel_busy = [0.0] * channels
        #: Channel each page of the most recent command landed on.
        self.last_assignment: list[int] = []

    def _batch_time(self, npages: int, per_page: float) -> float:
        rounds = -(-npages // self.channels)
        return self.latency.command_overhead + rounds * per_page

    def _assign_channels(self, npages: int) -> list[int]:
        """Deterministic page->channel placement for one command.

        Channels are ranked by ``(busy_until, index)`` and pages dealt
        round-robin over that ranking, so equally-idle channels fill
        from index 0 upward.
        """
        order = sorted(range(self.channels),
                       key=lambda c: (self.channel_busy[c], c))
        assert all(
            self.channel_busy[a] < self.channel_busy[b] or a < b
            for a, b in zip(order, order[1:])
        ), "equal-busy channel ties must break by lowest index"
        return [order[i % self.channels] for i in range(npages)]

    def _serve(self, npages: int, per_page: float, is_read: bool,
               earliest: float, priority: Priority, tag: str) -> ServiceWindow:
        if npages < 1:
            raise ConfigError("npages must be >= 1")
        start = self.discipline.start_time(self, earliest, priority)
        fault, retries, penalty = _faulted_service(
            self.faults, self.retry, is_read, npages
        )
        finish = start + self._batch_time(npages, per_page) + penalty
        assignment = self._assign_channels(npages)
        for channel in assignment:
            self.channel_busy[channel] = max(
                self.channel_busy[channel],
                start + self.latency.command_overhead,
            ) + per_page
        self.last_assignment = assignment
        window = ServiceWindow(start=start, finish=finish, fault=fault,
                               retries=retries, fault_latency=penalty)
        self._account(window, priority)
        if is_read:
            self.reads += npages
        else:
            self.writes += npages
        self._emit(kind="read" if is_read else "write", npages=npages,
                   priority=priority, tag=tag, submitted=earliest,
                   window=window)
        return window

    def serve_read(self, npages: int, earliest: float,
                   priority: Priority = Priority.FOREGROUND,
                   tag: str = "fg") -> ServiceWindow:
        return self._serve(npages, self.latency.page_read, True, earliest,
                           priority, tag)

    def serve_write(self, npages: int, earliest: float,
                    priority: Priority = Priority.FOREGROUND,
                    tag: str = "fg") -> ServiceWindow:
        return self._serve(npages, self.latency.page_program, False, earliest,
                           priority, tag)
