"""The simulation engine: one request pipeline over events + resources.

:class:`SimEngine` is the single place simulated time advances (rule
RPR009).  Workload drivers (:mod:`repro.sim.openloop`,
:mod:`repro.sim.closedloop`, :func:`repro.faults.timed.rebuild_under_load`)
are *sources*: they decide what to submit and when, the engine resolves
when it finishes.  Cross-cutting behaviour — fault escalation,
instrumentation — hangs off the hook stack (:mod:`repro.engine.hooks`).

Request semantics (Section IV-B of the paper, unchanged from the
pre-engine implementation):

* a request is interpreted page by page by the cache policy; each
  page's outcome contributes foreground SSD reads, foreground compute
  (delta compression CPU), and foreground RAID member ops;
* member *reads* proceed in parallel across disks, member *writes*
  start only after the reads finish — the two phases of a
  read-modify-write;
* foreground compute precedes the disk ops that depend on its result
  (the delta must be compressed before it can be written), so dependent
  member ops are submitted at ``arrival + fg_compute``;
* writes are acknowledged only after their RAID member writes complete
  (the paper's RPO=0 consistency rule); asynchronous work (read fills,
  delta/metadata commits, cleaning I/O) starts once the request
  finished and occupies the devices — delaying later requests, but not
  the request that caused it.

Events enter a deterministic heap (:class:`~repro.engine.core.EventLoop`)
and are resolved with lookahead: handling a request event resolves all
of its device acquisitions inline against the resource clocks, which
implements FCFS-family disciplines exactly because sources submit in
global arrival order.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from ..cache.base import CachePolicy, Outcome
from ..disk.hdd import HDDParams
from ..errors import ConfigError, SimulationError, raises
from ..flash.device import SSDLatency
from ..raid.array import DiskOp
from ..stats.latency import LatencyRecorder
from .core import EventLoop, Priority, RequestRecord
from .hooks import EngineHook, MemberReadHandler
from .resources import (
    DiskResource,
    QueueDiscipline,
    Resource,
    ServiceWindow,
    SSDResource,
)


class SimEngine:
    """Discrete-event engine scheduling one policy's device operations."""

    def __init__(
        self,
        policy: CachePolicy,
        hdd_params: HDDParams | None = None,
        ssd_latency: SSDLatency | None = None,
        ssd_channels: int = 8,
        discipline: QueueDiscipline | None = None,
    ) -> None:
        self.policy = policy
        self.loop = EventLoop()
        page_size = policy.config.page_size
        self.disks = [
            DiskResource(hdd_params, page_size, name=f"disk{i}",
                         discipline=discipline)
            for i in range(policy.raid.ndisks)
        ]
        self.ssd = SSDResource(ssd_latency, channels=ssd_channels,
                               discipline=discipline)
        self.recorder = LatencyRecorder()
        self.hooks: list[EngineHook] = []
        self._member_read: MemberReadHandler = self._base_member_read
        self._next_op_id = 0
        for resource in self.resources():
            resource.use_op_ids(self._alloc_op_id)

    # -- plumbing ------------------------------------------------------------

    def _alloc_op_id(self) -> int:
        op_id = self._next_op_id
        self._next_op_id += 1
        return op_id

    def resources(self) -> Iterator[Resource]:
        yield from self.disks
        yield self.ssd

    @property
    def now(self) -> float:
        return self.loop.now

    def add_hook(self, hook: EngineHook) -> None:
        """Install ``hook`` and rebuild the member-read middleware chain.

        The first hook added wraps closest to the device; later hooks
        wrap around earlier ones.
        """
        self.hooks.append(hook)
        hook.install(self)
        handler: MemberReadHandler = self._base_member_read
        for h in self.hooks:
            handler = h.wrap_member_read(self, handler)
        self._member_read = handler

    # -- device service ------------------------------------------------------

    def _base_member_read(self, op: DiskOp, earliest: float,
                          priority: Priority, tag: str) -> ServiceWindow:
        return self.disks[op.disk].serve(op.disk_page, op.npages, True,
                                         earliest, priority, tag)

    def serve_ssd(self, npages: int, is_read: bool, earliest: float,
                  priority: Priority = Priority.FOREGROUND,
                  tag: str = "fg") -> float:
        """Serve one SSD command; returns its finish time."""
        if is_read:
            window = self.ssd.serve_read(npages, earliest, priority, tag)
        else:
            window = self.ssd.serve_write(npages, earliest, priority, tag)
        for hook in self.hooks:
            hook.on_ssd_window(self, window, npages, is_read)
        return window.finish

    def run_disk_phases(self, ops: Sequence[DiskOp], earliest: float,
                        priority: Priority = Priority.FOREGROUND,
                        tag: str = "fg") -> float:
        """Reads in parallel, then writes in parallel; returns finish time.

        Reads go through the member-read middleware chain (fault
        escalation lives there); writes notify the hooks afterwards.
        """
        reads = [op for op in ops if op.is_read]
        writes = [op for op in ops if not op.is_read]
        phase1_done = earliest
        for op in reads:
            window = self._member_read(op, earliest, priority, tag)
            phase1_done = max(phase1_done, window.finish)
        done = phase1_done
        for op in writes:
            window = self.disks[op.disk].serve(op.disk_page, op.npages, False,
                                               phase1_done, priority, tag)
            for hook in self.hooks:
                hook.on_member_write(self, op, window)
            done = max(done, window.finish)
        return done

    def serve_plain_phases(
        self, ops: Iterable[DiskOp], earliest: float,
        priority: Priority = Priority.FOREGROUND, tag: str = "plain",
    ) -> tuple[float, list[ServiceWindow]]:
        """Two-phase service with *no* hook dispatch (nested traffic).

        The fault pipeline serves its reconstruction / repair ops here
        so they cannot recursively re-escalate or fire write hooks.
        Returns the batch finish time and every service window (the
        caller accounts retries).
        """
        reads = [op for op in ops if op.is_read]
        writes = [op for op in ops if not op.is_read]
        windows: list[ServiceWindow] = []
        phase1_done = earliest
        for op in reads:
            window = self.disks[op.disk].serve(op.disk_page, op.npages, True,
                                               earliest, priority, tag)
            windows.append(window)
            phase1_done = max(phase1_done, window.finish)
        done = phase1_done
        for op in writes:
            window = self.disks[op.disk].serve(op.disk_page, op.npages, False,
                                               phase1_done, priority, tag)
            windows.append(window)
            done = max(done, window.finish)
        return done, windows

    # -- the request pipeline ------------------------------------------------

    def _handle_request(self, lba: int, npages: int, is_read: bool,
                        arrival: float) -> float:
        for hook in self.hooks:
            hook.on_request(self, self.loop.now)
        completion = arrival
        backgrounds: list[Outcome] = []
        for page in range(lba, lba + npages):
            out = self.policy.access(page, is_read)
            page_done = arrival
            if out.fg_ssd_reads:
                page_done = self.serve_ssd(out.fg_ssd_reads, True, arrival)
            if out.fg_compute:
                page_done += out.fg_compute
            if out.fg_disk_ops:
                # Compute (delta compression) precedes the member ops
                # that consume its output, so they queue after it.
                page_done = max(
                    page_done,
                    self.run_disk_phases(out.fg_disk_ops,
                                         arrival + out.fg_compute),
                )
            completion = max(completion, page_done)
            backgrounds.append(out)
        # background work starts once the foreground finished
        for out in backgrounds:
            if out.bg_ssd_writes:
                self.serve_ssd(out.bg_ssd_writes, False, completion,
                               Priority.BACKGROUND, "bg")
            if out.bg_disk_ops:
                self.run_disk_phases(out.bg_disk_ops, completion,
                                     Priority.BACKGROUND, "bg")
        self.recorder.record(completion - arrival)
        record = RequestRecord(lba=lba, npages=npages, is_read=is_read,
                               arrival=arrival, completion=completion)
        for hook in self.hooks:
            hook.on_request_done(self, record)
        return completion

    @raises(SimulationError)
    def submit(self, lba: int, npages: int, is_read: bool,
               arrival: float) -> float:
        """Process one foreground request; returns its completion time."""
        if arrival < 0:
            raise ConfigError("arrival time must be >= 0")
        results: list[float] = []

        def fire(at: float) -> None:
            results.append(self._handle_request(lba, npages, is_read, at))

        self.loop.schedule(arrival, fire, label=f"request lba={lba}")
        self.loop.run()
        return results[0]

    @raises(SimulationError)
    def inject_disk_ops(self, ops: Sequence[DiskOp], at: float) -> float:
        """Schedule external member I/O (e.g. rebuild traffic) at ``at``.

        The ops occupy the disks and delay subsequent foreground
        requests, exactly like a rebuild running under load.  They run
        through the full hook pipeline (fault escalation applies) at
        background priority.  Returns the injected batch's finish time.
        """
        if at < 0:
            raise ConfigError("injection time must be >= 0")
        results: list[float] = []

        def fire(when: float) -> None:
            results.append(self.run_disk_phases(ops, when,
                                                Priority.BACKGROUND, "inject"))

        self.loop.schedule(at, fire, label="inject")
        self.loop.run()
        return results[0]

    def utilisation(self, duration: float) -> dict[str, float]:
        """Per-device busy fractions over ``duration`` (bottleneck finder).

        Busy time includes fault stalls and retry backoffs — a stalled
        device is occupied, not idle.
        """
        if duration <= 0:
            raise ConfigError("duration must be positive")
        out = {
            f"disk{i}": min(1.0, d.busy_time / duration)
            for i, d in enumerate(self.disks)
        }
        out["ssd"] = min(1.0, self.ssd.busy_time / duration)
        return out
