"""Multi-stream request driver with bounded online metrics.

:class:`ServeDriver` pulls epoch batches from a
:class:`~repro.serve.composer.WorkloadComposer` and routes each request
to its tenant's cache policy inside a
:class:`~repro.cache.partition.PartitionedCache` (or runs metrics-only
when no cache is attached — the composition/metrics scaling path).

All online state is O(1) in the number of requests: per-tenant counters
are fixed arrays, throughput and inter-arrival quantiles are streaming
estimators, and :class:`ServeMetrics` freezes its byte footprint at
construction and asserts it never grows.
"""

from __future__ import annotations

import numpy as np

from ..cache.partition import PartitionedCache
from ..contracts import columnar
from ..errors import ConfigError, SimulationError, raises
from ..stats.streaming import StreamingQuantiles, WindowedThroughput
from .composer import ComposedBatch, WorkloadComposer

__all__ = ["ServeDriver", "ServeMetrics", "ServeReport", "jain_fairness"]


def jain_fairness(values) -> float:
    """Jain's fairness index: 1.0 = perfectly even, 1/n = one winner."""
    vals = list(values)
    if not vals:
        return 1.0
    total = sum(vals)
    squares = sum(v * v for v in vals)
    if squares <= 0.0:
        return 1.0
    return total * total / (len(vals) * squares)


class ServeMetrics:
    """Fixed-footprint online metrics over the composed stream.

    The byte budget is frozen at construction; :meth:`assert_bounded`
    re-measures and raises if any component grew, which is what lets a
    million-request run *prove* its metric state stayed O(1).
    """

    def __init__(
        self,
        n_tenants: int,
        window_s: float = 60.0,
        gap_stride: int = 64,
    ) -> None:
        if n_tenants < 1:
            raise ConfigError(
                f"ServeMetrics.n_tenants must be >= 1, got {n_tenants}"
            )
        if gap_stride < 1:
            raise ConfigError(
                f"ServeMetrics.gap_stride must be >= 1, got {gap_stride}"
            )
        self.accesses = np.zeros(n_tenants, dtype=np.int64)
        self.reads = np.zeros(n_tenants, dtype=np.int64)
        self.throughput = WindowedThroughput(window_s)
        # P² updates are scalar; a deterministic stride subsample of the
        # inter-arrival gaps keeps million-request batches vectorized
        # while the estimate tracks the same distribution.
        self.gap_quantiles = StreamingQuantiles((0.5, 0.95, 0.99))
        self._gap_stride = gap_stride
        self._last_time = 0.0
        self._seen_any = False
        self.budget_bytes = self.state_bytes()

    def state_bytes(self) -> int:
        return (
            int(self.accesses.nbytes)
            + int(self.reads.nbytes)
            + self.throughput.state_bytes()
            + self.gap_quantiles.state_bytes()
            + 4 * 8
        )

    @raises(SimulationError)
    @columnar(dtypes={"gaps": "float64"})
    def observe_batch(self, batch: ComposedBatch) -> None:
        n = len(self.accesses)
        self.accesses += np.bincount(batch.tenant, minlength=n)
        self.reads += np.bincount(
            batch.tenant[batch.is_read], minlength=n
        )
        self.throughput.observe_batch(batch.times)
        times = batch.times
        if self._seen_any:
            gaps = np.diff(times, prepend=self._last_time)
        else:
            gaps = np.diff(times)
        self.gap_quantiles.add_many(gaps[:: self._gap_stride])
        if len(times):
            self._last_time = float(times[-1])
            self._seen_any = True

    @raises(SimulationError)
    def assert_bounded(self) -> None:
        now = self.state_bytes()
        if now > self.budget_bytes:
            raise SimulationError(
                f"online metric state grew: {now} bytes exceeds the frozen "
                f"budget of {self.budget_bytes}"
            )

    def summary(self) -> dict[str, float]:
        thr = self.throughput.summary()
        gaps = self.gap_quantiles.summary()
        return {
            "requests": int(self.accesses.sum()),
            "throughput_mean_per_s": round(thr["mean_per_s"], 3),
            "throughput_peak_per_s": round(thr["peak_per_s"], 3),
            "gap_p50_ms": round(gaps["p50"] * 1e3, 4),
            "gap_p95_ms": round(gaps["p95"] * 1e3, 4),
            "gap_p99_ms": round(gaps["p99"] * 1e3, 4),
            "state_bytes": self.state_bytes(),
        }


class ServeReport:
    """Outcome of one serve run: aggregate + per-tenant views."""

    def __init__(
        self,
        label: str,
        metrics: ServeMetrics,
        cache: PartitionedCache | None,
        tenant_ids: tuple[str, ...],
    ) -> None:
        self.label = label
        self.metrics = metrics
        self.cache = cache
        self.tenant_ids = tenant_ids

    def tenant_rows(self) -> list[dict]:
        """Per-tenant fairness/endurance columns, one row per tenant."""
        rows = []
        for i, tenant_id in enumerate(self.tenant_ids):
            row: dict = {
                "tenant": tenant_id,
                "accesses": int(self.metrics.accesses[i]),
                "reads": int(self.metrics.reads[i]),
            }
            if self.cache is not None:
                policy = self.cache.policies[i]
                quota = self.cache.quotas[i]
                row["quota_pages"] = quota
                row["hit_ratio"] = round(policy.stats.hit_ratio, 4)
                row["hit_density"] = round(
                    policy.stats.hits / quota if quota else 0.0, 4
                )
                row["ssd_writes"] = policy.stats.ssd_writes
                if policy.ssd is not None:
                    row["waf"] = round(policy.ssd.write_amplification, 3)
            rows.append(row)
        return rows

    def row(self) -> dict:
        """Flat aggregate row (JSON-normalizable, sweep/bench shape)."""
        out: dict = {"label": self.label, "tenants": len(self.tenant_ids)}
        out.update(self.metrics.summary())
        if self.cache is not None:
            stats = self.cache.combined_stats()
            out["hit_ratio"] = round(stats.hit_ratio, 4)
            out["ssd_writes"] = stats.ssd_writes
            hit_ratios = [
                p.stats.hit_ratio
                for p in self.cache.policies
                if p.stats.accesses
            ]
            out["fairness_jain"] = round(jain_fairness(hit_ratios), 4)
            out["min_tenant_hit_ratio"] = round(
                min(hit_ratios, default=0.0), 4
            )
            out["max_tenant_hit_ratio"] = round(
                max(hit_ratios, default=0.0), 4
            )
            wafs = [
                p.ssd.write_amplification
                for p in self.cache.policies
                if p.ssd is not None
            ]
            if wafs:
                out["waf_mean"] = round(sum(wafs) / len(wafs), 3)
            out.update(self.cache.realloc.row())
        return out


class ServeDriver:
    """Runs a composed workload against a partitioned cache."""

    def __init__(
        self,
        composer: WorkloadComposer,
        cache: PartitionedCache | None = None,
        label: str = "serve",
        window_s: float = 60.0,
        gap_stride: int = 64,
    ) -> None:
        if cache is not None and len(cache.policies) != composer.n_tenants:
            raise ConfigError(
                f"ServeDriver: composer has {composer.n_tenants} tenants "
                f"but the cache is partitioned {len(cache.policies)} ways"
            )
        self.composer = composer
        self.cache = cache
        self.label = label
        self.metrics = ServeMetrics(
            composer.n_tenants, window_s=window_s, gap_stride=gap_stride
        )

    def run(
        self,
        duration_s: float | None = None,
        max_requests: int | None = None,
    ) -> ServeReport:
        """Drive the stream to completion and return the report.

        Requests are routed strictly in composed arrival order (no
        per-tenant batching): dynamic reallocation boundaries fall at
        exact global access counts, keeping runs reproducible across
        epoch and batch sizing.
        """
        cache = self.cache
        metrics = self.metrics
        for batch in self.composer.compose(
            duration_s=duration_s, max_requests=max_requests
        ):
            metrics.observe_batch(batch)
            metrics.assert_bounded()
            if cache is not None:
                access = cache.access
                tenants = batch.tenant.tolist()
                lbas = batch.lba.tolist()
                reads = batch.is_read.tolist()
                for i in range(len(lbas)):
                    access(tenants[i], lbas[i], reads[i])
        if cache is not None:
            cache.finish()
        metrics.assert_bounded()
        return ServeReport(
            label=self.label,
            metrics=metrics,
            cache=cache,
            tenant_ids=tuple(s.tenant_id for s in self.composer.tenants),
        )
