"""Deterministic multi-tenant workload composition.

:class:`WorkloadComposer` multiplexes N tenant streams into one
time-ordered request stream without ever materializing a mega-trace:
composition proceeds in fixed wall-clock *epochs*, and each epoch's
requests are generated per tenant, merged by arrival time, and yielded
as one columnar :class:`ComposedBatch`.  Memory is O(epoch), not
O(trace).

Determinism is total and order-free: every (tenant, epoch) cell draws
from its own RNG stream whose seed is sha256-derived from the composer
seed and the tenant id (:func:`substream_seed`), so

* composing twice yields byte-identical streams,
* a tenant's subsequence is independent of which other tenants ride
  along — :meth:`WorkloadComposer.tenant_trace` replays exactly the
  requests the composed stream contains for that tenant, which is what
  the partition-isolation property tests against, and
* sweep workers can re-derive any cell without shared state.

Tenant address spaces are disjoint: tenant *i* owns
``[base_i, base_i + universe_pages_i)`` with bases aligned to
``align_pages`` (default: one RAID stripe group), so per-tenant page
populations never share a parity stripe.
"""

from __future__ import annotations

import hashlib
import math
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from ..contracts import columnar
from ..errors import ConfigError, TraceFormatError, raises
from ..traces.record import empty_records
from ..traces.synthetic import _zipf_cdf
from ..traces.trace import Trace
from .tenants import TenantSpec

__all__ = ["ComposedBatch", "WorkloadComposer", "substream_seed"]


def substream_seed(composer_seed: int, tenant_id: str) -> int:
    """Derive a tenant's RNG substream seed from the composer seed.

    sha256 keyed by the composer seed and the tenant id, so substreams
    are independent, reproducible, and free of accidental overlap
    between tenants or with other subsystem streams (the fault
    scheduler uses the same construction).  RPR111 statically enforces
    that every serve-layer RNG stream is seeded through here.
    """
    digest = hashlib.sha256(
        f"serve:{composer_seed}:{tenant_id}".encode()
    ).hexdigest()
    return int(digest[:16], 16)


@dataclass(frozen=True)
class ComposedBatch:
    """One epoch of the composed stream, columnar and time-ordered."""

    #: Arrival time of each request (seconds).
    times: np.ndarray
    #: Tenant index (into the composer's tenant tuple) per request.
    tenant: np.ndarray
    #: Absolute page address per request (single-page requests).
    lba: np.ndarray
    #: Read flag per request.
    is_read: np.ndarray

    def __len__(self) -> int:
        return len(self.times)


class WorkloadComposer:
    """Multiplexes tenant streams into one time-ordered batch iterator."""

    def __init__(
        self,
        tenants: Sequence[TenantSpec],
        seed: int = 0,
        epoch_s: float = 60.0,
        align_pages: int = 64,
    ) -> None:
        if not tenants:
            raise ConfigError(
                "WorkloadComposer.tenants: a zero-tenant composition is not "
                "allowed"
            )
        ids = [spec.tenant_id for spec in tenants]
        if len(set(ids)) != len(ids):
            dupes = sorted({t for t in ids if ids.count(t) > 1})
            raise ConfigError(
                f"WorkloadComposer.tenants: duplicate tenant ids {dupes}"
            )
        if not epoch_s > 0.0:
            raise ConfigError(
                f"WorkloadComposer.epoch_s must be positive, got {epoch_s}"
            )
        if align_pages < 1:
            raise ConfigError(
                f"WorkloadComposer.align_pages must be >= 1, got {align_pages}"
            )
        self.tenants = tuple(tenants)
        self.seed = seed
        self.epoch_s = float(epoch_s)
        self._index = {spec.tenant_id: i for i, spec in enumerate(self.tenants)}
        bases = []
        base = 0
        for spec in self.tenants:
            bases.append(base)
            base += -(-spec.universe_pages // align_pages) * align_pages
        self._bases = tuple(bases)
        self._total_pages = base
        # Zipf CDFs are shared across tenants with the same (universe,
        # alpha); a plain instance dict, deliberately not lru_cache
        # (module-level caches reachable from sweep workers are a
        # cross-cell leak, RPR206).
        self._cdf_cache: dict[tuple[int, float], np.ndarray] = {}
        self._scatter_cache: dict[int, tuple[int, int]] = {}

    @property
    def n_tenants(self) -> int:
        return len(self.tenants)

    @property
    def total_pages(self) -> int:
        """Size of the composed address space (all tenant regions)."""
        return self._total_pages

    def tenant_base(self, tenant_id: str) -> int:
        """Start of a tenant's address region."""
        return self._bases[self._tenant_index(tenant_id)]

    def _tenant_index(self, tenant_id: str) -> int:
        idx = self._index.get(tenant_id)
        if idx is None:
            raise ConfigError(
                f"WorkloadComposer: unknown tenant_id {tenant_id!r}"
            )
        return idx

    # -- per-tenant generation ----------------------------------------------

    def _cdf(self, universe: int, alpha: float) -> np.ndarray:
        key = (universe, alpha)
        cdf = self._cdf_cache.get(key)
        if cdf is None:
            cdf = _zipf_cdf(universe, alpha)
            self._cdf_cache[key] = cdf
        return cdf

    def _scatter(self, idx: int) -> tuple[int, int]:
        """Tenant's rank->page affine bijection ``(mult, offset)``.

        Scatters popularity ranks over the tenant's region (hot pages
        are not physically adjacent) in O(1) memory — a permutation
        table per tenant would be O(universe) per tenant, which a
        1000-tenant fleet cannot afford.  Substream 0 of the tenant's
        seed is reserved for this; epochs use substreams 1+.
        """
        cached = self._scatter_cache.get(idx)
        if cached is not None:
            return cached
        spec = self.tenants[idx]
        universe = spec.universe_pages
        if universe == 1:
            mult, offset = 1, 0
        else:
            rng = np.random.default_rng(
                (substream_seed(self.seed, spec.tenant_id), 0)
            )
            offset = int(rng.integers(0, universe))
            mult = int(rng.integers(1, universe))
            while math.gcd(mult, universe) != 1:
                mult = mult % (universe - 1) + 1
        self._scatter_cache[idx] = (mult, offset)
        return mult, offset

    @columnar(dtypes={"return": "(float64, uint64, bool)"})
    def _tenant_epoch(
        self, idx: int, epoch: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Generate tenant ``idx``'s requests for one epoch.

        Pure in (composer config, idx, epoch): the RNG stream is
        re-derived per call, so generation order — across tenants,
        across epochs, across compose()/tenant_trace() — cannot change
        the output.
        """
        spec = self.tenants[idx]
        t0 = epoch * self.epoch_s
        mid = t0 + self.epoch_s / 2.0
        rate = spec.base_iops * (
            1.0
            + spec.diurnal_amplitude
            * math.sin(
                2.0 * math.pi * (mid / spec.diurnal_period_s + spec.phase)
            )
        )
        rng = np.random.default_rng(
            (substream_seed(self.seed, spec.tenant_id), epoch + 1)
        )
        if spec.burst_prob > 0.0:
            if rng.random() < spec.burst_prob:
                rate *= spec.burst_factor
        count = int(rng.poisson(max(rate, 0.0) * self.epoch_s))
        if count == 0:
            return None
        # Uniform order statistics give the arrival times of a Poisson
        # process conditioned on its per-epoch count.
        times = t0 + self.epoch_s * np.sort(rng.random(count))
        cdf = self._cdf(spec.universe_pages, spec.zipf_alpha)
        ranks = np.searchsorted(cdf, rng.random(count), side="left").astype(
            np.int64
        )
        mult, offset = self._scatter(idx)
        pages = (ranks * mult + offset) % spec.universe_pages
        pages = (pages + self._bases[idx]).astype(np.uint64)
        is_read = rng.random(count) < spec.read_ratio
        return times, pages, is_read

    # -- composition --------------------------------------------------------

    @columnar(
        dtypes={
            "times": "float64",
            "tenant": "int32",
            "lba": "uint64",
            "is_read": "bool",
        }
    )
    def epoch_batch(self, epoch: int) -> ComposedBatch | None:
        """All tenants' requests for one epoch, merged by arrival time."""
        times_parts: list[np.ndarray] = []
        tenant_parts: list[np.ndarray] = []
        lba_parts: list[np.ndarray] = []
        read_parts: list[np.ndarray] = []
        for idx in range(len(self.tenants)):
            cell = self._tenant_epoch(idx, epoch)
            if cell is None:
                continue
            times, pages, is_read = cell
            times_parts.append(times)
            tenant_parts.append(np.full(len(times), idx, dtype=np.int32))
            lba_parts.append(pages)
            read_parts.append(is_read)
        if not times_parts:
            return None
        times = np.concatenate(times_parts)
        # Stable sort: simultaneous arrivals keep tenant-index order.
        order = np.argsort(times, kind="stable")
        return ComposedBatch(
            times=times[order],
            tenant=np.concatenate(tenant_parts)[order],
            lba=np.concatenate(lba_parts)[order],
            is_read=np.concatenate(read_parts)[order],
        )

    @columnar()
    def compose(
        self,
        duration_s: float | None = None,
        max_requests: int | None = None,
    ) -> Iterator[ComposedBatch]:
        """Yield the composed stream, one epoch batch at a time."""
        if duration_s is None and max_requests is None:
            raise ConfigError(
                "WorkloadComposer.compose: one of duration_s / max_requests "
                "is required"
            )
        if duration_s is not None and not duration_s > 0.0:
            raise ConfigError(
                f"WorkloadComposer.compose: duration_s must be positive, "
                f"got {duration_s}"
            )
        if max_requests is not None and max_requests < 1:
            raise ConfigError(
                f"WorkloadComposer.compose: max_requests must be >= 1, "
                f"got {max_requests}"
            )
        n_epochs = (
            None
            if duration_s is None
            else max(1, math.ceil(duration_s / self.epoch_s))
        )
        emitted = 0
        epoch = 0
        while n_epochs is None or epoch < n_epochs:
            batch = self.epoch_batch(epoch)
            epoch += 1
            if batch is None:
                continue
            if max_requests is not None and emitted + len(batch) > max_requests:
                keep = max_requests - emitted
                batch = ComposedBatch(
                    times=batch.times[:keep],
                    tenant=batch.tenant[:keep],
                    lba=batch.lba[:keep],
                    is_read=batch.is_read[:keep],
                )
            emitted += len(batch)
            if len(batch):
                yield batch
            if max_requests is not None and emitted >= max_requests:
                return

    @raises(TraceFormatError)
    def tenant_trace(self, tenant_id: str, duration_s: float) -> Trace:
        """Materialize one tenant's subsequence as a standalone trace.

        Byte-identical to that tenant's share of the composed stream
        over the same duration — the basis of the isolation property:
        a statically partitioned tenant must behave exactly as if it
        ran this trace alone on a cache of its quota size.
        """
        idx = self._tenant_index(tenant_id)
        if not duration_s > 0.0:
            raise ConfigError(
                f"WorkloadComposer.tenant_trace: duration_s must be "
                f"positive, got {duration_s}"
            )
        n_epochs = max(1, math.ceil(duration_s / self.epoch_s))
        times_parts: list[np.ndarray] = []
        lba_parts: list[np.ndarray] = []
        read_parts: list[np.ndarray] = []
        for epoch in range(n_epochs):
            cell = self._tenant_epoch(idx, epoch)
            if cell is None:
                continue
            times, pages, is_read = cell
            times_parts.append(times)
            lba_parts.append(pages)
            read_parts.append(is_read)
        n = sum(len(part) for part in times_parts)
        rec = empty_records(n)
        if n:
            rec["time"] = np.concatenate(times_parts)
            rec["lba"] = np.concatenate(lba_parts)
            rec["npages"] = 1
            rec["is_read"] = np.concatenate(read_parts)
        return Trace(rec, name=tenant_id)
