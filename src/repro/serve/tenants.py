"""Tenant stream specifications for the multi-tenant workload composer.

A :class:`TenantSpec` describes one tenant's access pattern — zipf
popularity skew, read ratio, diurnal intensity envelope, and burst
behaviour — without materializing anything.  :func:`make_tenant_fleet`
builds deterministic fleets of such specs with phase-staggered diurnal
envelopes, the churn shape the static-vs-dynamic partitioning sweep
exercises.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["TenantSpec", "make_tenant_fleet"]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's workload parameters.

    The request rate at time ``t`` follows a diurnal envelope::

        rate(t) = base_iops * (1 + diurnal_amplitude *
                               sin(2*pi*(t / diurnal_period_s + phase)))

    optionally multiplied by ``burst_factor`` in epochs where the
    tenant's burst draw fires (probability ``burst_prob`` per epoch).
    """

    tenant_id: str
    universe_pages: int
    zipf_alpha: float = 0.9
    read_ratio: float = 0.7
    base_iops: float = 100.0
    diurnal_amplitude: float = 0.0
    diurnal_period_s: float = 86_400.0
    phase: float = 0.0
    burst_prob: float = 0.0
    burst_factor: float = 1.0

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ConfigError("TenantSpec.tenant_id must be a non-empty string")
        if self.universe_pages < 1:
            raise ConfigError(
                f"TenantSpec.universe_pages must be >= 1, got "
                f"{self.universe_pages} (tenant {self.tenant_id!r})"
            )
        if not self.zipf_alpha > 0.0:
            raise ConfigError(
                f"TenantSpec.zipf_alpha must be positive, got "
                f"{self.zipf_alpha} (tenant {self.tenant_id!r})"
            )
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ConfigError(
                f"TenantSpec.read_ratio must be in [0, 1], got "
                f"{self.read_ratio} (tenant {self.tenant_id!r})"
            )
        if not self.base_iops > 0.0:
            raise ConfigError(
                f"TenantSpec.base_iops must be positive, got "
                f"{self.base_iops} (tenant {self.tenant_id!r})"
            )
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ConfigError(
                f"TenantSpec.diurnal_amplitude must be in [0, 1), got "
                f"{self.diurnal_amplitude} (tenant {self.tenant_id!r})"
            )
        if not self.diurnal_period_s > 0.0:
            raise ConfigError(
                f"TenantSpec.diurnal_period_s must be positive, got "
                f"{self.diurnal_period_s} (tenant {self.tenant_id!r})"
            )
        if not 0.0 <= self.phase < 1.0:
            raise ConfigError(
                f"TenantSpec.phase must be in [0, 1), got {self.phase} "
                f"(tenant {self.tenant_id!r})"
            )
        if not 0.0 <= self.burst_prob <= 1.0:
            raise ConfigError(
                f"TenantSpec.burst_prob must be in [0, 1], got "
                f"{self.burst_prob} (tenant {self.tenant_id!r})"
            )
        if not self.burst_factor >= 1.0:
            raise ConfigError(
                f"TenantSpec.burst_factor must be >= 1, got "
                f"{self.burst_factor} (tenant {self.tenant_id!r})"
            )


#: Cycled per-tenant parameter palettes: mixed skews and read mixes so a
#: fleet is heterogeneous without per-tenant configuration.
_ALPHAS = (0.8, 0.95, 1.1, 1.25)
_READ_RATIOS = (0.9, 0.7, 0.5, 0.8)


def make_tenant_fleet(
    n_tenants: int,
    universe_pages: int = 4096,
    base_iops: float = 100.0,
    diurnal_amplitude: float = 0.0,
    diurnal_period_s: float = 3600.0,
    burst_prob: float = 0.0,
    burst_factor: float = 4.0,
) -> tuple[TenantSpec, ...]:
    """A deterministic heterogeneous fleet of ``n_tenants`` specs.

    Zipf skew and read ratio cycle through fixed palettes; diurnal
    phases are spread evenly over the fleet, so with a non-zero
    amplitude the *set of currently-hot tenants* rotates through the
    day — the churn that makes dynamic partitioning matter.
    """
    if n_tenants < 1:
        raise ConfigError(
            f"make_tenant_fleet.n_tenants must be >= 1, got {n_tenants}"
        )
    return tuple(
        TenantSpec(
            tenant_id=f"t{i:04d}",
            universe_pages=universe_pages,
            zipf_alpha=_ALPHAS[i % len(_ALPHAS)],
            read_ratio=_READ_RATIOS[i % len(_READ_RATIOS)],
            base_iops=base_iops,
            diurnal_amplitude=diurnal_amplitude,
            diurnal_period_s=diurnal_period_s,
            phase=i / n_tenants,
            burst_prob=burst_prob,
            burst_factor=burst_factor,
        )
        for i in range(n_tenants)
    )
