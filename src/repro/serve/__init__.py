"""Multi-tenant serving: workload composition and the multi-stream driver.

Simulation-layer package: composes N deterministic tenant streams into
one time-ordered request stream (no materialized mega-trace) and drives
it through a per-tenant partitioned SSD cache with O(1) online metrics.
"""

from .composer import ComposedBatch, WorkloadComposer, substream_seed
from .driver import ServeDriver, ServeMetrics, ServeReport, jain_fairness
from .tenants import TenantSpec, make_tenant_fleet

__all__ = [
    "ComposedBatch",
    "ServeDriver",
    "ServeMetrics",
    "ServeReport",
    "TenantSpec",
    "WorkloadComposer",
    "jain_fairness",
    "make_tenant_fleet",
    "substream_seed",
]
