"""SSD device model: FTL + latency + optional data payload store.

The device has two roles in the reproduction:

* In the trace-driven cache simulator it *accounts*: host write traffic,
  NAND writes, write amplification, erase counts — the inputs to the
  lifetime comparison (Figures 6, 8, 11).
* In the timing simulator it *serves*: page reads/programs take MLC-class
  latencies, and batches exploit channel parallelism (the paper leans on
  this for KDD's concurrent data+delta reads, Section IV-B2).

Payload storage is optional: when ``store_data=True`` the device keeps
actual page bytes, which the prototype-path tests use to verify that
delta reconstruction returns bit-exact data.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError, FlashError
from ..units import GiB, MICROSECOND, MILLISECOND
from .ftl import PageMappedFTL
from .geometry import FlashGeometry
from .wear import MLC_ENDURANCE, LifetimeEstimate


@dataclass(frozen=True)
class SSDLatency:
    """Per-operation service times for an MLC-class SATA SSD."""

    page_read: float = 60 * MICROSECOND
    page_program: float = 200 * MICROSECOND
    block_erase: float = 2 * MILLISECOND
    #: Controller/bus overhead per host command.
    command_overhead: float = 20 * MICROSECOND

    def __post_init__(self) -> None:
        for field in ("page_read", "page_program", "block_erase", "command_overhead"):
            if getattr(self, field) < 0:
                raise ConfigError(f"{field} must be >= 0")


class SSD:
    """A flash SSD exposed as a page-addressable cache device."""

    def __init__(
        self,
        geometry: FlashGeometry | None = None,
        capacity_bytes: int | None = None,
        latency: SSDLatency | None = None,
        endurance: int = MLC_ENDURANCE,
        over_provisioning: float = 0.07,
        store_data: bool = False,
    ) -> None:
        if geometry is None:
            geometry = FlashGeometry.for_capacity(capacity_bytes or 1 * GiB)
        elif capacity_bytes is not None:
            raise ConfigError("pass either geometry or capacity_bytes, not both")
        self.geometry = geometry
        self.latency = latency or SSDLatency()
        self.ftl = PageMappedFTL(
            geometry, over_provisioning=over_provisioning, endurance=endurance
        )
        self._data: dict[int, bytes] | None = {} if store_data else None

    # -- capacity ---------------------------------------------------------

    @property
    def capacity_pages(self) -> int:
        """Host-visible capacity in pages (after over-provisioning)."""
        return self.ftl.exported_pages

    @property
    def page_size(self) -> int:
        return self.geometry.page_size

    # -- host I/O -----------------------------------------------------------

    def write(self, lpn: int, data: bytes | None = None) -> None:
        """Program one logical page."""
        if data is not None:
            if self._data is None:
                raise ConfigError("device was created with store_data=False")
            if len(data) > self.page_size:
                raise FlashError(
                    f"payload of {len(data)} bytes exceeds page size {self.page_size}"
                )
        self.ftl.write(lpn)
        if self._data is not None:
            self._data[lpn] = data if data is not None else b""

    def read(self, lpn: int) -> bytes | None:
        """Read one logical page; returns payload when data is stored."""
        self.ftl.read(lpn)
        if self._data is not None:
            return self._data.get(lpn)
        return None

    def trim(self, lpn: int) -> None:
        self.ftl.trim(lpn)
        if self._data is not None:
            self._data.pop(lpn, None)

    def is_mapped(self, lpn: int) -> bool:
        return self.ftl.is_mapped(lpn)

    # -- timing model --------------------------------------------------------

    def read_time(self, npages: int = 1) -> float:
        """Service time for reading ``npages`` logical pages in one command.

        Pages land on distinct channels with high probability under the
        round-robin allocator, so a batch of n pages takes
        ``ceil(n / channels)`` serialized page reads.
        """
        if npages < 1:
            raise ConfigError("npages must be >= 1")
        rounds = -(-npages // self.geometry.channels)
        return self.latency.command_overhead + rounds * self.latency.page_read

    def write_time(self, npages: int = 1) -> float:
        """Service time for programming ``npages`` pages in one command."""
        if npages < 1:
            raise ConfigError("npages must be >= 1")
        rounds = -(-npages // self.geometry.channels)
        return self.latency.command_overhead + rounds * self.latency.page_program

    # -- endurance accounting --------------------------------------------

    @property
    def host_write_pages(self) -> int:
        return self.ftl.host_writes

    @property
    def host_write_bytes(self) -> int:
        return self.ftl.host_writes * self.page_size

    @property
    def write_amplification(self) -> float:
        return self.ftl.write_amplification

    def lifetime(self, host_writes_per_day: float) -> LifetimeEstimate:
        """Project lifetime for a given daily host write volume (bytes)."""
        return LifetimeEstimate(
            capacity_bytes=self.geometry.capacity_bytes,
            endurance=self.ftl.wear.endurance,
            write_amplification=self.write_amplification,
            host_writes_per_day=host_writes_per_day,
        )
