"""Flash SSD substrate: geometry, FTL, wear tracking, device model."""

from .geometry import DEFAULT_GEOMETRY, FlashGeometry
from .ftl import FREE, PageMappedFTL
from .wear import (
    MLC_ENDURANCE,
    SLC_ENDURANCE,
    LifetimeEstimate,
    WearTracker,
    relative_lifetime,
)
from .device import SSD, SSDLatency

__all__ = [
    "DEFAULT_GEOMETRY",
    "FlashGeometry",
    "FREE",
    "PageMappedFTL",
    "MLC_ENDURANCE",
    "SLC_ENDURANCE",
    "LifetimeEstimate",
    "WearTracker",
    "relative_lifetime",
    "SSD",
    "SSDLatency",
]
