"""Flash SSD substrate: geometry, FTL, wear tracking, device model."""

from .device import SSD, SSDLatency
from .ftl import FREE, PageMappedFTL
from .geometry import DEFAULT_GEOMETRY, FlashGeometry
from .wear import (
    MLC_ENDURANCE,
    SLC_ENDURANCE,
    LifetimeEstimate,
    WearTracker,
    relative_lifetime,
)

__all__ = [
    "DEFAULT_GEOMETRY",
    "FlashGeometry",
    "FREE",
    "PageMappedFTL",
    "MLC_ENDURANCE",
    "SLC_ENDURANCE",
    "LifetimeEstimate",
    "WearTracker",
    "relative_lifetime",
    "SSD",
    "SSDLatency",
]
