"""Physical geometry of a NAND flash SSD.

SSDs are arrays of flash packages behind a controller; each package has
dies, each die planes, each plane blocks, each block pages (Section
II-A).  Reads and programs operate on pages, erases on whole blocks.
The geometry fixes the capacity and the degree of parallelism the
device model can exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..units import DEFAULT_PAGE_SIZE, GiB


@dataclass(frozen=True)
class FlashGeometry:
    """Structural parameters of the flash array."""

    channels: int = 8
    dies_per_channel: int = 2
    planes_per_die: int = 2
    blocks_per_plane: int = 256
    pages_per_block: int = 64
    page_size: int = DEFAULT_PAGE_SIZE

    def __post_init__(self) -> None:
        for field in (
            "channels",
            "dies_per_channel",
            "planes_per_die",
            "blocks_per_plane",
            "pages_per_block",
            "page_size",
        ):
            if getattr(self, field) < 1:
                raise ConfigError(f"{field} must be >= 1")

    @property
    def planes(self) -> int:
        return self.channels * self.dies_per_channel * self.planes_per_die

    @property
    def total_blocks(self) -> int:
        return self.planes * self.blocks_per_plane

    @property
    def total_pages(self) -> int:
        return self.total_blocks * self.pages_per_block

    @property
    def capacity_bytes(self) -> int:
        return self.total_pages * self.page_size

    @property
    def block_size(self) -> int:
        return self.pages_per_block * self.page_size

    def plane_of_block(self, block: int) -> int:
        """Plane index holding physical block ``block`` (blocks interleave
        across planes so consecutive allocations spread over channels)."""
        if not 0 <= block < self.total_blocks:
            raise ConfigError(f"block {block} out of range")
        return block % self.planes

    def channel_of_block(self, block: int) -> int:
        return self.plane_of_block(block) % self.channels

    @classmethod
    def for_capacity(
        cls,
        capacity_bytes: int,
        channels: int = 8,
        pages_per_block: int = 64,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> "FlashGeometry":
        """Smallest standard geometry holding at least ``capacity_bytes``.

        Convenience for tests and experiments ("a 1 GB flash cache").
        """
        if capacity_bytes < 1:
            raise ConfigError("capacity must be positive")
        dies_per_channel, planes_per_die = 2, 2
        planes = channels * dies_per_channel * planes_per_die
        block_bytes = pages_per_block * page_size
        blocks_needed = -(-capacity_bytes // block_bytes)
        # at least 4 blocks per plane: with a single block the plane's only
        # block is always the active one and garbage collection can never
        # find a victim (over-provisioning would be meaningless)
        blocks_per_plane = max(4, -(-blocks_needed // planes))
        return cls(
            channels=channels,
            dies_per_channel=dies_per_channel,
            planes_per_die=planes_per_die,
            blocks_per_plane=blocks_per_plane,
            pages_per_block=pages_per_block,
            page_size=page_size,
        )


#: A small default geometry (~1 GiB with 8x2x2 planes) mirroring the
#: paper's 1 GB cache partition of a 120 GB SSD.
DEFAULT_GEOMETRY = FlashGeometry.for_capacity(1 * GiB)
