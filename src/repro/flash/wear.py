"""Wear tracking and SSD lifetime estimation.

Flash blocks endure a limited number of program/erase cycles (about
100 K for SLC, 5-10 K for MLC — Section II-A).  This module tracks
per-block erase counts, detects wear-out, and projects device lifetime
from observed write traffic, which is how the paper converts "fewer SSD
writes" into "up to 5.1x longer lifetime".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError, WornOutError
from .geometry import FlashGeometry

#: Typical MLC endurance (erase cycles per block).
MLC_ENDURANCE = 10_000
#: Typical SLC endurance.
SLC_ENDURANCE = 100_000


class WearTracker:
    """Per-block erase counters with an endurance budget."""

    def __init__(self, geometry: FlashGeometry, endurance: int = MLC_ENDURANCE) -> None:
        if endurance < 1:
            raise ConfigError("endurance must be >= 1")
        self.geometry = geometry
        self.endurance = endurance
        self._erases = np.zeros(geometry.total_blocks, dtype=np.int64)

    def record_erase(self, block: int) -> None:
        """Count one erase of ``block``; raises once the budget is exceeded."""
        self._erases[block] += 1
        if self._erases[block] > self.endurance:
            raise WornOutError(
                f"block {block} exceeded endurance "
                f"({self._erases[block]} > {self.endurance} erases)"
            )

    def erases(self, block: int) -> int:
        return int(self._erases[block])

    @property
    def total_erases(self) -> int:
        return int(self._erases.sum())

    @property
    def max_erases(self) -> int:
        return int(self._erases.max()) if len(self._erases) else 0

    @property
    def mean_erases(self) -> float:
        return float(self._erases.mean()) if len(self._erases) else 0.0

    @property
    def wear_imbalance(self) -> float:
        """max/mean erase ratio; 1.0 is perfectly even wear."""
        mean = self.mean_erases
        return self.max_erases / mean if mean > 0 else 1.0

    @property
    def life_consumed(self) -> float:
        """Fraction of endurance consumed by the most-worn block."""
        return self.max_erases / self.endurance

    def least_worn(self, candidates: np.ndarray) -> int:
        """Among ``candidates`` (block indices), the one with fewest erases."""
        if len(candidates) == 0:
            raise ConfigError("no candidate blocks")
        return int(candidates[np.argmin(self._erases[candidates])])


@dataclass(frozen=True)
class LifetimeEstimate:
    """Projected device lifetime from observed traffic.

    ``host_writes_per_day`` is in bytes.  The estimate is the standard
    endurance formula: capacity x endurance / (daily writes x WAF).
    """

    capacity_bytes: int
    endurance: int
    write_amplification: float
    host_writes_per_day: float

    @property
    def total_endurance_bytes(self) -> float:
        return float(self.capacity_bytes) * self.endurance

    @property
    def lifetime_days(self) -> float:
        daily_nand = self.host_writes_per_day * self.write_amplification
        if daily_nand <= 0:
            return float("inf")
        return self.total_endurance_bytes / daily_nand

    @property
    def lifetime_years(self) -> float:
        return self.lifetime_days / 365.25


def relative_lifetime(host_writes_a: float, host_writes_b: float) -> float:
    """Lifetime of scheme A relative to scheme B given their write traffic.

    With identical devices and write amplification, lifetime is inversely
    proportional to bytes written, which is how the paper reports
    "extending the lifetime of SSD by up to 5.1x".
    """
    if host_writes_a <= 0:
        return float("inf")
    return host_writes_b / host_writes_a
