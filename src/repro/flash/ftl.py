"""Page-mapped Flash Translation Layer.

The FTL hides flash's no-in-place-update constraint: logical page
writes are appended to active blocks (one per plane, filled round-robin
so consecutive writes spread across channels), the previous physical
copy is invalidated, and garbage collection reclaims blocks when free
space runs low.  Write amplification (NAND writes / host writes) is the
quantity that couples host-visible cache traffic to real wear.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..errors import CapacityError, ConfigError, FlashError
from .geometry import FlashGeometry
from .wear import MLC_ENDURANCE, WearTracker

FREE = -1


class PageMappedFTL:
    """Log-structured page-mapping FTL with greedy garbage collection."""

    #: Supported GC victim-selection policies.
    GC_POLICIES = ("greedy", "fifo", "cost-benefit")

    def __init__(
        self,
        geometry: FlashGeometry,
        over_provisioning: float = 0.07,
        gc_free_block_threshold: int | None = None,
        endurance: int = MLC_ENDURANCE,
        gc_policy: str = "greedy",
        hot_cold: bool = False,
    ) -> None:
        if not 0.0 <= over_provisioning < 0.5:
            raise ConfigError("over_provisioning must be in [0, 0.5)")
        if gc_policy not in self.GC_POLICIES:
            raise ConfigError(
                f"unknown gc_policy {gc_policy!r}; choose from {self.GC_POLICIES}"
            )
        self.gc_policy = gc_policy
        #: Hot/cold separation: GC relocations (cold data, by definition it
        #: survived a whole block's lifetime) go to their own frontier so
        #: they stop being re-copied alongside hot pages — the technique
        #: behind Kgil et al.'s split read/write regions (§V-C).
        self.hot_cold = hot_cold
        self.geometry = geometry
        self.wear = WearTracker(geometry, endurance=endurance)
        self.exported_pages = int(geometry.total_pages * (1.0 - over_provisioning))
        if self.exported_pages < geometry.pages_per_block:
            raise ConfigError("geometry too small for requested over-provisioning")

        g = geometry
        self._l2p = np.full(self.exported_pages, FREE, dtype=np.int64)
        self._p2l = np.full(g.total_pages, FREE, dtype=np.int64)
        self._valid_in_block = np.zeros(g.total_blocks, dtype=np.int32)
        self._writeptr_in_block = np.zeros(g.total_blocks, dtype=np.int32)

        # Free-block pools and the currently-filling block, per plane.
        self._free_blocks: list[deque[int]] = [deque() for _ in range(g.planes)]
        for block in range(g.total_blocks):
            self._free_blocks[g.plane_of_block(block)].append(block)
        self._active_block = [self._free_blocks[p].popleft() for p in range(g.planes)]
        #: cold-data frontier (GC relocations) when hot/cold separation is on;
        #: allocated lazily so small geometries are not forced to reserve it.
        self._active_cold: list[int] = [FREE] * g.planes if hot_cold else []
        self._next_plane = 0
        self._program_seq = 0
        self._seal_seq = np.full(g.total_blocks, -1, dtype=np.int64)

        if gc_free_block_threshold is None:
            gc_free_block_threshold = max(2, g.total_blocks // 64)
        self.gc_free_block_threshold = gc_free_block_threshold

        # Traffic counters (pages).
        self.host_writes = 0
        self.host_reads = 0
        self.gc_relocations = 0
        self.gc_runs = 0

    # -- queries ---------------------------------------------------------

    @property
    def nand_writes(self) -> int:
        """Total pages programmed, including GC relocations."""
        return self.host_writes + self.gc_relocations

    @property
    def write_amplification(self) -> float:
        return self.nand_writes / self.host_writes if self.host_writes else 1.0

    @property
    def free_block_count(self) -> int:
        return sum(len(q) for q in self._free_blocks)

    def physical_of(self, lpn: int) -> int:
        """Physical page of logical page ``lpn`` (FREE if unmapped)."""
        self._check_lpn(lpn)
        return int(self._l2p[lpn])

    def is_mapped(self, lpn: int) -> bool:
        return self.physical_of(lpn) != FREE

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.exported_pages:
            raise CapacityError(
                f"logical page {lpn} out of range [0, {self.exported_pages})"
            )

    # -- host operations ---------------------------------------------------

    def read(self, lpn: int) -> int:
        """Read a logical page; returns the physical page serving it."""
        self._check_lpn(lpn)
        ppn = int(self._l2p[lpn])
        if ppn == FREE:
            raise FlashError(f"read of unmapped logical page {lpn}")
        self.host_reads += 1
        return ppn

    def write(self, lpn: int) -> int:
        """Write a logical page; returns the new physical page."""
        self._check_lpn(lpn)
        old = int(self._l2p[lpn])
        if old != FREE:
            self._invalidate_physical(old)
        ppn = self._allocate_page(for_gc=False)
        self._l2p[lpn] = ppn
        self._p2l[ppn] = lpn
        self.host_writes += 1
        self._maybe_gc()
        return ppn

    def trim(self, lpn: int) -> None:
        """Discard a logical page (cache eviction)."""
        self._check_lpn(lpn)
        old = int(self._l2p[lpn])
        if old != FREE:
            self._invalidate_physical(old)
            self._l2p[lpn] = FREE

    # -- internals --------------------------------------------------------

    def _invalidate_physical(self, ppn: int) -> None:
        block = ppn // self.geometry.pages_per_block
        self._p2l[ppn] = FREE
        self._valid_in_block[block] -= 1
        if self._valid_in_block[block] < 0:
            raise FlashError(f"negative valid count in block {block}")

    def _frontier(self, for_gc: bool) -> list[int]:
        """The active-block list this write should append to."""
        if self.hot_cold and for_gc:
            return self._active_cold
        return self._active_block

    def _allocate_page(self, for_gc: bool) -> int:
        g = self.geometry
        frontier = self._frontier(for_gc)
        for _ in range(g.planes):
            plane = self._next_plane
            self._next_plane = (self._next_plane + 1) % g.planes
            block = frontier[plane]
            if block == FREE or self._writeptr_in_block[block] >= g.pages_per_block:
                self._seal(block)
                block = self._new_active_block(plane, frontier)
                if block == FREE:
                    continue
            offset = self._writeptr_in_block[block]
            self._writeptr_in_block[block] += 1
            self._valid_in_block[block] += 1
            self._program_seq += 1
            if self._writeptr_in_block[block] >= g.pages_per_block:
                self._seal(block)
            return block * g.pages_per_block + offset
        if self.hot_cold and for_gc:
            # cold frontier starved: fall back to the shared hot frontier
            self.hot_cold = False
            try:
                return self._allocate_page(for_gc)
            finally:
                self.hot_cold = True
        raise CapacityError(
            "flash device out of free blocks"
            + ("" if for_gc else " (GC could not keep up)")
        )

    def _seal(self, block: int) -> None:
        if block != FREE and self._seal_seq[block] < 0:
            self._seal_seq[block] = self._program_seq

    def _new_active_block(self, plane: int, frontier: list[int] | None = None) -> int:
        if frontier is None:
            frontier = self._active_block
        pool = self._free_blocks[plane]
        if not pool:
            frontier[plane] = FREE
            return FREE
        if len(pool) > 1:
            # pick the least-worn free block: cheap static wear levelling
            candidates = np.fromiter(pool, dtype=np.int64)
            block = self.wear.least_worn(candidates)
            pool.remove(block)
        else:
            block = pool.popleft()
        frontier[plane] = block
        self._seal_seq[block] = -1
        return block

    def _maybe_gc(self) -> None:
        while self.free_block_count < self.gc_free_block_threshold:
            if not self._collect_once():
                break

    def _collect_once(self) -> bool:
        """One GC pass: pick a victim per policy, relocate, erase."""
        g = self.geometry
        ppb = g.pages_per_block
        # Candidates: fully-written blocks that are not active.
        full = self._writeptr_in_block >= ppb
        for block in self._active_block:
            if block != FREE:
                full[block] = False
        for block in self._active_cold:
            if block != FREE:
                full[block] = False
        candidates = np.flatnonzero(full)
        if candidates.size == 0:
            return False
        victim = self._select_victim(candidates, ppb)
        if self._valid_in_block[victim] >= ppb:
            return False  # nothing reclaimable anywhere
        base = victim * ppb
        for ppn in range(base, base + ppb):
            lpn = int(self._p2l[ppn])
            if lpn == FREE:
                continue
            new_ppn = self._allocate_page(for_gc=True)
            self._l2p[lpn] = new_ppn
            self._p2l[new_ppn] = lpn
            self._p2l[ppn] = FREE
            self._valid_in_block[victim] -= 1
            self.gc_relocations += 1
        self._erase_block(victim)
        self.gc_runs += 1
        return True

    def _select_victim(self, candidates: np.ndarray, ppb: int) -> int:
        """GC victim per the configured policy.

        * greedy — fewest valid pages (default; best immediate yield);
        * fifo — oldest sealed block (even wear, poor yield on skew);
        * cost-benefit — LFS formula age * free_space / (2 * utilisation):
          prefers old blocks whose remaining valid data has gone cold.
        """
        valid = self._valid_in_block[candidates].astype(np.float64)
        if self.gc_policy == "greedy":
            return int(candidates[np.argmin(valid)])
        if self.gc_policy == "fifo":
            # oldest sealed block that actually has reclaimable space;
            # relocating a fully-valid block would free nothing net
            reclaimable = candidates[valid < ppb]
            if reclaimable.size == 0:
                return int(candidates[0])  # caller detects full-valid and stops
            return int(reclaimable[np.argmin(self._seal_seq[reclaimable])])
        age = (self._program_seq - self._seal_seq[candidates]).astype(np.float64)
        u = valid / ppb
        benefit = age * (1.0 - u) / (2.0 * u + 1e-9)
        return int(candidates[np.argmax(benefit)])

    def _erase_block(self, block: int) -> None:
        if self._valid_in_block[block] != 0:
            raise FlashError(f"erasing block {block} with valid pages")
        self._writeptr_in_block[block] = 0
        self._seal_seq[block] = -1
        self.wear.record_erase(block)
        self._free_blocks[self.geometry.plane_of_block(block)].append(block)

    def check_invariants(self) -> None:
        """Consistency checks used by the test suite."""
        g = self.geometry
        mapped = self._l2p[self._l2p != FREE]
        if len(np.unique(mapped)) != len(mapped):
            raise FlashError("two logical pages map to one physical page")
        for ppn in mapped:
            if self._l2p[self._p2l[ppn]] != ppn:
                raise FlashError(f"l2p/p2l disagree at physical page {ppn}")
        per_block = np.bincount(
            mapped // g.pages_per_block, minlength=g.total_blocks
        )
        if not np.array_equal(per_block, self._valid_in_block):
            raise FlashError("valid-count bookkeeping is inconsistent")
