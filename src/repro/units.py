"""Size and time units used throughout the library.

All sizes are bytes unless a name says otherwise; all simulated times
are seconds (floats).  Block-level components address storage in fixed
4 KiB *pages* by default, matching the paper's configuration.
"""

from __future__ import annotations

from .errors import ConfigError

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

#: Default cache/RAID page size used by the paper (Section IV-A1).
DEFAULT_PAGE_SIZE = 4 * KiB

MICROSECOND = 1e-6
MILLISECOND = 1e-3


def pages_for_bytes(nbytes: int, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Number of whole pages needed to hold ``nbytes`` (ceiling division)."""
    if nbytes < 0:
        raise ConfigError(f"negative byte count: {nbytes}")
    return -(-nbytes // page_size)


def format_bytes(nbytes: float) -> str:
    """Human-readable byte count, e.g. ``format_bytes(1536) == '1.5 KiB'``."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{value:.0f} B"
        value /= 1024.0
    raise AssertionError("unreachable")
