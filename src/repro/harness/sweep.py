"""Parallel experiment engine: fan independent simulation cells out to workers.

Every figure/table of the evaluation is a grid of independent
(policy x workload x cache-size) *cells*.  This module turns such a grid
into a list of :class:`SweepCell` descriptors, executes them on a
:class:`~concurrent.futures.ProcessPoolExecutor` (or inline for
``jobs=1``), and reassembles the result rows **in cell order** so the
output is byte-identical no matter how many workers ran or in which
order they finished.

Determinism rules:

* a cell carries its own RNG seed; when ``seed=None`` the seed is
  derived from the cell's stable config hash, so the same cell always
  sees the same randomness regardless of scheduling;
* rows are ordered by cell index, never by completion order;
* result rows are normalised through a JSON round-trip before being
  returned, so fresh and disk-cached runs yield equal rows.

The config hash also keys an optional on-disk result cache
(:class:`ResultCache`): re-running a sweep skips every already-computed
cell, which makes regenerating a figure after an interrupted run (or
re-rendering with one new policy added) nearly free.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any

from ..errors import ConfigError

#: Bump when a change to cell execution invalidates cached rows.
ENGINE_VERSION = 1

#: Trace-descriptor kinds the worker knows how to materialise.
TRACE_KINDS = ("workload", "zipf", "uniform", "sequential")

#: Cell kinds (see the ``_run_*_cell`` executors below).
CELL_KINDS = ("sim", "replay", "fio", "stats", "faults", "reliability",
              "serve")

#: ``params`` keys consumed by the replay executor (not CacheConfig fields).
_REPLAY_KEYS = ("max_requests", "max_seconds", "time_scale")

#: ``params`` keys consumed by the FIO executor (FioConfig fields).
_FIO_KEYS = ("total_requests", "working_set_pages", "zipf_alpha", "read_rate",
             "nthreads")


# ---------------------------------------------------------------------------
# Trace descriptors
# ---------------------------------------------------------------------------

def trace_desc(kind: str, **kwargs: Any) -> tuple:
    """A hashable, picklable description of a trace to build in a worker.

    Cells reference traces by descriptor rather than by object so a cell
    stays cheap to pickle and stable to hash; each worker process
    materialises (and memoises) the trace on first use.
    """
    if kind not in TRACE_KINDS:
        raise ConfigError(
            f"unknown trace kind {kind!r}; choose from {list(TRACE_KINDS)}"
        )
    return (kind, tuple(sorted(kwargs.items())))


def workload_trace(name: str, scale: float = 1.0) -> tuple:
    """Descriptor for one of the calibrated paper workloads."""
    return trace_desc("workload", name=name, scale=scale)


@lru_cache(maxsize=16)
def _trace_for(desc: tuple):
    """Materialise (once per process) the trace a descriptor names.

    Deliberate per-process memoisation: the descriptor tuple captures
    every input, so a cached trace is identical to a fresh one and
    worker determinism is preserved.  This is the one entry on the
    effect analyzer's sweep allowlist (RPR206, ``SWEEP_ALLOWLIST`` in
    :mod:`repro.devtools.analyze.effects`) — any other module-level
    state reachable from a cell worker is flagged.
    """
    from ..traces.synthetic import (
        sequential_workload,
        uniform_workload,
        zipf_workload,
    )
    from ..traces.workloads import make_workload

    kind, items = desc
    kwargs = dict(items)
    if kind == "workload":
        return make_workload(kwargs["name"], scale=kwargs.get("scale", 1.0),
                             seed=kwargs.get("seed"))
    builder = {
        "zipf": zipf_workload,
        "uniform": uniform_workload,
        "sequential": sequential_workload,
    }[kind]
    return builder(**kwargs)


# ---------------------------------------------------------------------------
# Cells
# ---------------------------------------------------------------------------

def _json_default(obj: Any):
    if hasattr(obj, "item"):  # numpy scalars
        return obj.item()
    raise TypeError(f"not JSON-serialisable: {obj!r} ({type(obj).__name__})")


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      default=_json_default)


def _normalize_row(row: dict[str, Any]) -> dict[str, Any]:
    """JSON round-trip a row so fresh and cached results compare equal."""
    return json.loads(json.dumps(row, default=_json_default))


@dataclass(frozen=True)
class SweepCell:
    """One independent simulation: the unit of work the engine schedules.

    ``params`` holds extra keyword arguments as a tuple of ``(key,
    value)`` pairs (sorted on construction, so equal configurations hash
    equally however they were written).  Depending on ``kind`` they feed
    :class:`~repro.cache.base.CacheConfig` and, for ``replay``/``fio``
    cells, the replay/FioConfig knobs named in ``_REPLAY_KEYS`` /
    ``_FIO_KEYS``.

    ``seed=None`` opts into hash-derived per-cell seeding; an explicit
    integer is used verbatim (what the figure drivers do, keeping their
    rows identical to the historical serial implementation).
    """

    kind: str = "sim"
    policy: str = ""
    trace: tuple = ()
    cache_pages: int = 0
    seed: int | None = 0
    label: str | None = None
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in CELL_KINDS:
            raise ConfigError(
                f"unknown cell kind {self.kind!r}; choose from {list(CELL_KINDS)}"
            )
        object.__setattr__(self, "params", tuple(sorted(self.params)))

    def config(self) -> dict[str, Any]:
        """Canonical config dict: what the hash (and cache key) covers."""
        return {
            "engine": ENGINE_VERSION,
            "kind": self.kind,
            "policy": self.policy,
            "trace": self.trace,
            "cache_pages": self.cache_pages,
            "seed": self.seed,
            "label": self.label,
            "params": self.params,
        }

    def config_hash(self) -> str:
        """Stable hex digest of the cell configuration."""
        return hashlib.sha256(_canonical(self.config()).encode()).hexdigest()

    def effective_seed(self) -> int:
        """The explicit seed, or one derived from the config hash."""
        if self.seed is not None:
            return self.seed
        return int(self.config_hash()[:8], 16) % (2**31)


def sim_cell(
    policy: str,
    trace: tuple,
    cache_pages: int,
    seed: int | None = 0,
    label: str | None = None,
    **config_kwargs: Any,
) -> SweepCell:
    """Convenience constructor for a :func:`simulate_policy` cell."""
    return SweepCell(kind="sim", policy=policy, trace=trace,
                     cache_pages=cache_pages, seed=seed, label=label,
                     params=tuple(config_kwargs.items()))


# ---------------------------------------------------------------------------
# Cell executors (run inside worker processes; must stay module-level)
# ---------------------------------------------------------------------------

def _split_params(cell: SweepCell, reserved: Sequence[str]):
    params = dict(cell.params)
    taken = {k: params.pop(k) for k in reserved if k in params}
    return taken, params


def _run_sim_cell(cell: SweepCell) -> dict[str, Any]:
    from .runner import simulate_policy

    trace = _trace_for(cell.trace)
    policy_kwargs, config_kwargs = _split_params(cell, ("policy_kwargs",))
    result = simulate_policy(
        cell.policy,
        trace,
        cell.cache_pages,
        policy_kwargs=dict(policy_kwargs.get("policy_kwargs", ())) or None,
        seed=cell.effective_seed(),
        **config_kwargs,
    )
    row = result.row()
    row["meta_writes"] = result.stats.meta_writes
    # row() rounds meta_fraction for display; keep the exact value too so
    # downstream drivers (fig4) can re-round at their own precision.
    row["meta_fraction_exact"] = result.meta_fraction
    row.update(result.extras)
    if cell.label:
        row["policy"] = cell.label
    return row


def _run_replay_cell(cell: SweepCell) -> dict[str, Any]:
    from ..cache.base import CacheConfig
    from ..sim.openloop import replay_trace
    from ..sim.system import TimedSystem
    from .runner import build_policy, make_raid_for_trace

    trace = _trace_for(cell.trace)
    replay_kwargs, config_kwargs = _split_params(cell, _REPLAY_KEYS)
    raid = make_raid_for_trace(trace)
    config = CacheConfig(cache_pages=cell.cache_pages,
                         seed=cell.effective_seed(), **config_kwargs)
    system = TimedSystem(build_policy(cell.policy, config, raid))
    rep = replay_trace(system, trace, **replay_kwargs)
    row = {"workload": trace.name, "policy": cell.label or cell.policy}
    row.update(rep.row())
    return row


def _run_fio_cell(cell: SweepCell) -> dict[str, Any]:
    from ..cache.base import CacheConfig
    from ..raid.array import RAIDArray
    from ..raid.layout import RaidLevel
    from ..sim.closedloop import FioConfig, run_closed_loop
    from ..sim.system import TimedSystem
    from .runner import build_policy

    fio_kwargs, config_kwargs = _split_params(cell, _FIO_KEYS)
    seed = cell.effective_seed()
    fio = FioConfig(seed=seed, **fio_kwargs)
    raid = RAIDArray(
        RaidLevel.RAID5,
        ndisks=5,
        chunk_pages=16,
        pages_per_disk=max(1 << 14, 2 * fio.working_set_pages),
    )
    config = CacheConfig(cache_pages=cell.cache_pages, seed=seed,
                         **config_kwargs)
    system = TimedSystem(build_policy(cell.policy, config, raid))
    rep = run_closed_loop(system, fio)
    stats = system.policy.stats
    row = {"read_rate": fio.read_rate, "policy": cell.label or cell.policy}
    row.update(rep.row())
    row.update(
        mean_s=rep.latency.mean,
        ssd_write_pages=stats.ssd_writes,
        fills=stats.fill_writes,
        data=stats.data_writes,
        delta=stats.delta_writes,
        meta=stats.meta_writes,
    )
    return row


def _run_stats_cell(cell: SweepCell) -> dict[str, Any]:
    return _trace_for(cell.trace).stats().row()


def _run_faults_cell(cell: SweepCell) -> dict[str, Any]:
    from .faultsweep import run_faults_cell

    return run_faults_cell(cell, _trace_for(cell.trace))


def _run_reliability_cell(cell: SweepCell) -> dict[str, Any]:
    from .relsweep import run_reliability_cell

    return run_reliability_cell(cell)


def _run_serve_cell(cell: SweepCell) -> dict[str, Any]:
    from .servesweep import run_serve_cell

    return run_serve_cell(cell)


_CELL_RUNNERS: dict[str, Callable[[SweepCell], dict[str, Any]]] = {
    "sim": _run_sim_cell,
    "replay": _run_replay_cell,
    "fio": _run_fio_cell,
    "stats": _run_stats_cell,
    "faults": _run_faults_cell,
    "reliability": _run_reliability_cell,
    "serve": _run_serve_cell,
}


def _execute_cell(cell: SweepCell) -> tuple[dict[str, Any], float]:
    """Worker entry point: run one cell, return (row, wall seconds)."""
    start = time.perf_counter()
    row = _normalize_row(_CELL_RUNNERS[cell.kind](cell))
    return row, time.perf_counter() - start


# ---------------------------------------------------------------------------
# On-disk result cache
# ---------------------------------------------------------------------------

class ResultCache:
    """Directory of ``<config-hash>.json`` files, one per computed cell."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """The cached row for ``key``, or None on miss/corruption."""
        try:
            payload = json.loads(self._path(key).read_text())
        except (OSError, ValueError):
            return None
        row = payload.get("row")
        return row if isinstance(row, dict) else None

    def put(self, key: str, cell: SweepCell, row: dict[str, Any]) -> None:
        """Atomically persist ``row`` (config kept alongside for debugging)."""
        payload = json.dumps(
            {"config": cell.config(), "row": row}, default=_json_default
        )
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every cached cell; returns the number removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink()
            removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))


# ---------------------------------------------------------------------------
# Progress / timing instrumentation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepProgress:
    """One progress tick: a cell finished (or was served from cache)."""

    done: int
    total: int
    cell: SweepCell
    seconds: float
    from_cache: bool


@dataclass
class SweepStats:
    """Timing/throughput instrumentation for one :meth:`SweepEngine.run`."""

    total: int = 0
    executed: int = 0
    cached: int = 0
    deduped: int = 0
    jobs: int = 1
    elapsed: float = 0.0
    cell_seconds: list[float] = field(default_factory=list)

    @property
    def cells_per_sec(self) -> float:
        return self.total / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def mean_cell_seconds(self) -> float:
        return (sum(self.cell_seconds) / len(self.cell_seconds)
                if self.cell_seconds else 0.0)

    @property
    def max_cell_seconds(self) -> float:
        return max(self.cell_seconds, default=0.0)

    @property
    def worker_utilisation(self) -> float:
        """Busy worker-seconds over available worker-seconds (0..1)."""
        if self.elapsed <= 0 or self.jobs < 1:
            return 0.0
        return min(1.0, sum(self.cell_seconds) / (self.elapsed * self.jobs))

    def row(self) -> dict[str, Any]:
        return {
            "cells": self.total,
            "executed": self.executed,
            "cached": self.cached,
            "deduped": self.deduped,
            "jobs": self.jobs,
            "elapsed_s": round(self.elapsed, 3),
            "cells_per_sec": round(self.cells_per_sec, 2),
            "mean_cell_s": round(self.mean_cell_seconds, 4),
            "max_cell_s": round(self.max_cell_seconds, 4),
            "worker_utilisation": round(self.worker_utilisation, 3),
        }


@dataclass(frozen=True)
class SweepResult:
    """Rows (in cell order) plus the run's instrumentation."""

    rows: tuple[dict[str, Any], ...]
    stats: SweepStats
    cells: tuple[SweepCell, ...]


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class SweepEngine:
    """Executes sweep cells, optionally in parallel and against a cache.

    ``jobs=1`` runs inline (no subprocesses); ``jobs=N`` fans cells out
    to a process pool.  Rows come back ordered by cell index either way,
    and each cell's seed travels inside the cell, so serial and parallel
    runs are byte-identical.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | str | os.PathLike | None = None,
        force: bool = False,
        progress: Callable[[SweepProgress], None] | None = None,
    ) -> None:
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.force = force
        self.progress = progress
        self.last_stats: SweepStats | None = None

    # -- internals ----------------------------------------------------------

    def _tick(self, stats: SweepStats, cell: SweepCell, seconds: float,
              from_cache: bool, done: int) -> None:
        if self.progress is not None:
            self.progress(SweepProgress(done=done, total=stats.total,
                                        cell=cell, seconds=seconds,
                                        from_cache=from_cache))

    def run(self, cells: Iterable[SweepCell]) -> SweepResult:
        cells = tuple(cells)
        stats = SweepStats(total=len(cells), jobs=self.jobs)
        start = time.perf_counter()
        rows: list[dict[str, Any] | None] = [None] * len(cells)

        # Group duplicate cells so identical work runs exactly once.
        groups: dict[str, list[int]] = {}
        for i, cell in enumerate(cells):
            groups.setdefault(cell.config_hash(), []).append(i)
        stats.deduped = len(cells) - len(groups)

        done = 0
        todo: list[tuple[str, int]] = []  # (hash, first cell index)
        for key, indices in groups.items():
            cached = None if (self.cache is None or self.force) \
                else self.cache.get(key)
            if cached is not None:
                for i in indices:
                    rows[i] = dict(cached)
                stats.cached += 1
                done += len(indices)
                self._tick(stats, cells[indices[0]], 0.0, True, done)
            else:
                todo.append((key, indices[0]))

        def _finish(key: str, first: int, row: dict[str, Any],
                    seconds: float) -> None:
            nonlocal done
            if self.cache is not None:
                self.cache.put(key, cells[first], row)
            indices = groups[key]
            for i in indices:
                rows[i] = dict(row)
            stats.executed += 1
            stats.cell_seconds.append(seconds)
            done += len(indices)
            self._tick(stats, cells[first], seconds, False, done)

        if todo:
            if self.jobs == 1 or len(todo) == 1:
                for key, first in todo:
                    row, seconds = _execute_cell(cells[first])
                    _finish(key, first, row, seconds)
            else:
                workers = min(self.jobs, len(todo))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = {
                        pool.submit(_execute_cell, cells[first]): (key, first)
                        for key, first in todo
                    }
                    pending = set(futures)
                    while pending:
                        ready, pending = wait(pending,
                                              return_when=FIRST_COMPLETED)
                        for fut in ready:
                            key, first = futures[fut]
                            row, seconds = fut.result()
                            _finish(key, first, row, seconds)

        stats.elapsed = time.perf_counter() - start
        self.last_stats = stats
        assert all(r is not None for r in rows)
        return SweepResult(rows=tuple(rows), stats=stats, cells=cells)  # type: ignore[arg-type]


def run_sweep(
    cells: Iterable[SweepCell],
    jobs: int = 1,
    cache: ResultCache | str | os.PathLike | None = None,
    force: bool = False,
    progress: Callable[[SweepProgress], None] | None = None,
) -> SweepResult:
    """One-shot convenience wrapper around :class:`SweepEngine`."""
    return SweepEngine(jobs=jobs, cache=cache, force=force,
                       progress=progress).run(cells)
