"""Fault-sweep cell executor and fault demo drivers.

This is harness code — it wires the application-layer pieces (policy
builders, sweep cells, trace loaders) around :mod:`repro.faults`.  It
lives here rather than in ``repro.faults`` because the layering
contract (see ``kdd-repro analyze``, RPR102) forbids simulation-layer
packages from importing the harness; the pure vulnerability-window
scenario that needs no harness stays in :mod:`repro.faults.demo`.

:func:`run_faults_cell` is the executor behind the sweep engine's
``faults`` cell kind: one (policy, workload, fault-rate, retry-policy)
point of the grid, run through
:class:`~repro.faults.timed.FaultyTimedSystem` and summarised as one
result row.  Determinism inherits from the sweep discipline — the
fault schedule is seeded with the cell's effective seed, so rows are
byte-identical for any ``--jobs``.
"""

from __future__ import annotations

from typing import Any

from ..cache.base import CacheConfig
from ..engine import InstrumentationHook
from ..faults.retry import RETRY_POLICIES, retry_policy
from ..faults.schedule import FaultConfig
from ..faults.timed import FaultyTimedSystem, StaleExposureHook
from ..raid.array import RAIDArray
from ..raid.layout import RaidLevel
from ..sim.openloop import replay_trace
from ..traces import uniform_workload
from .runner import build_policy, make_raid_for_trace
from .sweep import SweepCell

#: ``SweepCell.params`` keys consumed by the faults executor
#: (everything else feeds :class:`~repro.cache.base.CacheConfig`).
FAULTS_KEYS = (
    "ure_rate",
    "timeout_rate",
    "timeout_s",
    "retry",
    "repair_stale_on_demand",
    "device_failures",
    "max_requests",
    "max_seconds",
    "time_scale",
    "track_exposure",
)


def run_faults_cell(cell: SweepCell, trace: Any) -> dict[str, Any]:
    """Execute one fault-sweep cell; returns its (deterministic) row."""
    params = dict(cell.params)
    fault_kwargs = {k: params.pop(k) for k in FAULTS_KEYS if k in params}
    replay_kwargs = {
        k: fault_kwargs.pop(k)
        for k in ("max_requests", "max_seconds", "time_scale")
        if k in fault_kwargs
    }
    retry_name = fault_kwargs.pop("retry", "backoff")
    repair_stale = fault_kwargs.pop("repair_stale_on_demand", True)
    track_exposure = fault_kwargs.pop("track_exposure", False)
    device_failures = tuple(
        tuple(f) for f in fault_kwargs.pop("device_failures", ())
    )
    seed = cell.effective_seed()
    faults = FaultConfig(seed=seed, device_failures=device_failures,
                         **fault_kwargs)

    raid = make_raid_for_trace(trace)
    config = CacheConfig(cache_pages=cell.cache_pages, seed=seed, **params)
    system = FaultyTimedSystem(
        build_policy(cell.policy, config, raid),
        faults,
        retry=retry_policy(retry_name),
        repair_stale_on_demand=repair_stale,
    )
    exposure_hook = None
    if track_exposure:
        exposure_hook = StaleExposureHook()
        system.add_hook(exposure_hook)
    rep = replay_trace(system, trace, **replay_kwargs)
    row: dict[str, Any] = {
        "workload": trace.name,
        "policy": cell.label or cell.policy,
        "retry": retry_name,
        "ure_rate": faults.ure_rate,
        "timeout_rate": faults.timeout_rate,
    }
    row.update(rep.row())
    row.update(system.fault_row())
    if exposure_hook is not None:
        # Same nested block as the reliability report (shared shape).
        row["exposure"] = exposure_hook.exposure.row()
    return row


def faults_cell(
    policy: str,
    trace: tuple,
    cache_pages: int,
    ure_rate: float = 0.0,
    timeout_rate: float = 0.0,
    retry: str = "backoff",
    track_exposure: bool = False,
    seed: int | None = None,
    label: str | None = None,
    **params: Any,
) -> SweepCell:
    """Convenience constructor for a ``faults`` sweep cell.

    ``seed=None`` (the default) opts into hash-derived per-cell seeding,
    the sweep engine's determinism discipline.  ``track_exposure`` adds
    the shared vulnerability-window ``exposure`` block to the row; the
    key enters the cell config (and thus its hash) only when set, so
    existing cell identities are unchanged.
    """
    if retry not in RETRY_POLICIES:
        retry_policy(retry)  # raises the canonical ConfigError
    cell_params = {
        "ure_rate": ure_rate,
        "timeout_rate": timeout_rate,
        "retry": retry,
        **params,
    }
    if track_exposure:
        cell_params["track_exposure"] = True
    return SweepCell(
        kind="faults",
        policy=policy,
        trace=trace,
        cache_pages=cache_pages,
        seed=seed,
        label=label,
        params=tuple(cell_params.items()),
    )


def demo_op_trace(
    path: str,
    requests: int = 300,
    policy: str = "wt",
    seed: int = 11,
) -> dict[str, Any]:
    """Run one derandomized fault-injected replay with op-level
    instrumentation and write the per-op trace to ``path`` as JSONL.

    Everything is seeded, so the exported trace is byte-identical across
    runs — the CI op-trace artifact diffs meaningfully.  Returns the
    instrumentation summary (op/request counts, per-device queue-delay
    stats, queue-depth histograms, utilisation timeline) plus the fault
    counters.
    """
    raid = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=4,
                     pages_per_disk=4096)
    system = FaultyTimedSystem(
        build_policy(policy,
                     CacheConfig(cache_pages=128, ways=16, group_pages=16),
                     raid),
        FaultConfig(seed=seed, ure_rate=0.01, timeout_rate=0.02),
        retry="backoff",
    )
    instrument = InstrumentationHook()
    system.add_hook(instrument)
    trace = uniform_workload(requests, 4096, read_ratio=0.6, seed=seed)
    rep = replay_trace(system, trace)
    nops = instrument.write_jsonl(path)
    summary = instrument.summary(duration=rep.duration)
    summary["ops_written"] = nops
    summary["mean_response_ms"] = rep.latency.mean_ms
    summary["faults"] = system.fault_row()
    return summary
