"""Serve-sweep cell executor and grid builder.

Harness glue for :mod:`repro.serve` (the layering contract, RPR102,
keeps the simulation layer from importing the harness): one ``serve``
cell composes a deterministic tenant fleet, partitions the SSD cache
per :class:`~repro.cache.partition.PartitionPlan`, drives the composed
stream through the partitioned cache, and reports the aggregate row
with fairness/isolation and per-tenant endurance columns.

Determinism follows the sweep discipline: the composer is seeded with
the cell's effective seed and every tenant substream is sha256-derived
from it, so rows are byte-identical for any ``--jobs`` count.
"""

from __future__ import annotations

from typing import Any

from ..cache.base import CacheConfig
from ..cache.partition import PartitionedCache, PartitionPlan
from ..raid.array import RAIDArray
from ..serve.composer import WorkloadComposer
from ..serve.driver import ServeDriver
from ..serve.tenants import make_tenant_fleet
from .runner import build_policy
from .sweep import SweepCell

#: ``SweepCell.params`` keys that shape the tenant fleet.
FLEET_KEYS = (
    "universe_pages",
    "base_iops",
    "diurnal_amplitude",
    "diurnal_period_s",
    "burst_prob",
    "burst_factor",
)

#: ``SweepCell.params`` keys that shape the partition plan.
PLAN_KEYS = ("realloc_period", "min_fraction", "ewma_alpha")

#: ``SweepCell.params`` keys consumed by the driver/run (not CacheConfig).
RUN_KEYS = ("duration_s", "max_requests", "epoch_s", "window_s",
            "gap_stride", "tenant_rows")


def _make_raid(total_pages: int) -> RAIDArray:
    """A RAID-5 array sized for the composed address space."""
    data_disks = 4
    pages_per_disk = max(64, -(-(total_pages + 1) // data_disks) + 16)
    pages_per_disk = -(-pages_per_disk // 16) * 16
    return RAIDArray(ndisks=5, chunk_pages=16, pages_per_disk=pages_per_disk)


def run_serve_cell(cell: SweepCell) -> dict[str, Any]:
    """Execute one serve cell; returns its (deterministic) row."""
    params = dict(cell.params)
    n_tenants = params.pop("n_tenants")
    dynamic = bool(params.pop("dynamic", False))
    fleet_kwargs = {k: params.pop(k) for k in FLEET_KEYS if k in params}
    plan_kwargs = {k: params.pop(k) for k in PLAN_KEYS if k in params}
    run_kwargs = {k: params.pop(k) for k in RUN_KEYS if k in params}
    tenant_rows = bool(run_kwargs.pop("tenant_rows", False))
    seed = cell.effective_seed()

    fleet = make_tenant_fleet(n_tenants, **fleet_kwargs)
    composer = WorkloadComposer(
        fleet, seed=seed, epoch_s=run_kwargs.pop("epoch_s", 60.0)
    )
    plan = PartitionPlan.equal(n_tenants, dynamic=dynamic, **plan_kwargs)
    raid = _make_raid(composer.total_pages)
    policies = [
        build_policy(
            cell.policy,
            CacheConfig(cache_pages=quota, seed=seed, **params),
            raid,
        )
        for quota in plan.quotas(cell.cache_pages)
    ]
    cache = PartitionedCache(policies, plan, total_pages=cell.cache_pages)
    driver = ServeDriver(
        composer,
        cache,
        label=cell.label or ("dynamic" if dynamic else "static"),
        window_s=run_kwargs.pop("window_s", 60.0),
        gap_stride=run_kwargs.pop("gap_stride", 64),
    )
    report = driver.run(**run_kwargs)
    row: dict[str, Any] = {
        "plan": "dynamic" if dynamic else "static",
        "policy": cell.policy,
    }
    row.update(report.row())
    if tenant_rows:
        row["per_tenant"] = report.tenant_rows()
    return row


def serve_cell(
    policy: str = "wt",
    cache_pages: int = 1024,
    n_tenants: int = 8,
    dynamic: bool = False,
    seed: int | None = None,
    label: str | None = None,
    **params: Any,
) -> SweepCell:
    """Convenience constructor for a ``serve`` sweep cell.

    ``dynamic`` selects ECI-Cache-style reallocation against the static
    even split; fleet shape (:data:`FLEET_KEYS`), plan knobs
    (:data:`PLAN_KEYS`), run bounds (:data:`RUN_KEYS`) and any remaining
    :class:`~repro.cache.base.CacheConfig` fields pass through
    ``params``.  ``seed=None`` (the default) opts into hash-derived
    per-cell seeding.
    """
    return SweepCell(
        kind="serve",
        policy=policy,
        cache_pages=cache_pages,
        seed=seed,
        label=label,
        params=tuple({"n_tenants": n_tenants, "dynamic": dynamic,
                      **params}.items()),
    )
