"""Drivers that regenerate every table and figure of the evaluation.

Each ``figN`` / ``tableN`` function reruns the corresponding experiment
of Section IV at a configurable ``scale`` (footprints, request counts
and cache sizes all shrink by the same factor, preserving per-page
temporal locality and therefore the figures' shapes) and returns a
:class:`FigureResult` whose rows mirror the paper's plotted series.

Every driver expresses its experiment grid as :class:`SweepCell` lists
and submits them through the :class:`SweepEngine` (``engine=`` keyword),
so each one gets process-pool parallelism, cell de-duplication and the
on-disk result cache for free; with no engine given, a plain serial
engine is used and the rows are identical to the historical inline
loops.  The timed cells (``replay`` / ``fio`` / ``faults``) execute on
the discrete-event engine (:mod:`repro.engine`) via the
``TimedSystem`` facades; ``tests/test_engine_equivalence.py`` pins
their numerics to the pre-engine implementation.

The index lives in DESIGN.md; EXPERIMENTS.md records paper-vs-measured.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from ..traces.workloads import (
    ALL_WORKLOADS,
    READ_DOMINANT,
    TABLE1_SPECS,
    WRITE_DOMINANT,
    workload_spec,
)
from .report import FigureResult
from .sweep import SweepCell, SweepEngine, sim_cell, workload_trace

#: KDD variants at the three content-locality levels the paper evaluates.
KDD_VARIANTS = {"kdd-50": 0.50, "kdd-25": 0.25, "kdd-12": 0.12}

#: Cache sizes as fractions of a workload's unique footprint, mirroring
#: the x-axis ranges of Figures 5-8.
CACHE_FRACTIONS = (0.025, 0.05, 0.10, 0.20)

DEFAULT_SCALE = 0.01

#: The columns the hit-ratio / write-traffic figures publish per row.
_SIM_ROW_KEYS = ("policy", "workload", "cache_pages", "hit_ratio",
                 "ssd_write_pages", "meta_fraction", "raid_reads",
                 "raid_writes")

#: Engine-internal FIO columns stripped from the latency figures' rows.
_FIO_EXTRA_KEYS = ("mean_s", "ssd_write_pages", "fills", "data", "delta",
                   "meta")


def _engine(engine: SweepEngine | None) -> SweepEngine:
    return engine if engine is not None else SweepEngine()


def _project(row: dict[str, Any], keys: Sequence[str]) -> dict[str, Any]:
    return {k: row[k] for k in keys if k in row}


def _cache_sizes(workload: str, scale: float,
                 fractions: Sequence[float] = CACHE_FRACTIONS) -> list[int]:
    """Cache sizes for a workload's sweep: unique, monotone, <= footprint.

    The 64-page floor keeps tiny scales meaningful, but it can collapse
    several fractions onto the same value (or overshoot the footprint
    entirely); duplicates are dropped and sizes are clamped to the
    workload's unique footprint so figure x-axes stay monotone.
    """
    unique = workload_spec(workload, scale).unique_pages
    sizes: list[int] = []
    for f in fractions:
        size = max(64, int(unique * f))
        if unique > 0:
            size = min(size, unique)
        if size not in sizes:
            sizes.append(size)
    return sorted(sizes)


def _grid_cell(policy: str, trace: tuple, cache_pages: int, seed: int,
               **config_kw: Any) -> SweepCell:
    """One figure-grid cell; 'kdd-NN' labels map to KDD at that locality."""
    label = None
    if policy in KDD_VARIANTS:
        label = policy
        config_kw["mean_compression"] = KDD_VARIANTS[policy]
        policy = "kdd"
    return sim_cell(policy, trace, cache_pages, seed=seed, label=label,
                    **config_kw)


# ---------------------------------------------------------------------------
# Table I — workload characteristics
# ---------------------------------------------------------------------------

def table1(scale: float = DEFAULT_SCALE,
           engine: SweepEngine | None = None) -> FigureResult:
    """Regenerate Table I from the calibrated synthetic traces."""
    result = FigureResult(
        "table1",
        "Characteristics of I/O workload traces (scaled)",
        notes=[
            f"generated at scale={scale}; multiply page/request counts by "
            f"{1 / scale:g} to compare with the paper's absolute numbers",
        ],
    )
    cells = [
        SweepCell(kind="stats", trace=workload_trace(name, scale))
        for name in ALL_WORKLOADS
    ]
    sweep = _engine(engine).run(cells)
    for name, row in zip(ALL_WORKLOADS, sweep.rows):
        spec = TABLE1_SPECS[name]
        row = dict(row)
        row["paper_read_ratio"] = round(
            spec.read_requests / (spec.read_requests + spec.write_requests), 2
        )
        result.rows.append(row)
    result.timing = sweep.stats.row()
    return result


# ---------------------------------------------------------------------------
# Figure 4 — metadata partition size vs metadata I/O share
# ---------------------------------------------------------------------------

def fig4(
    scale: float = DEFAULT_SCALE,
    partition_fracs: Sequence[float] = (0.0039, 0.0059, 0.0078, 0.0098),
    cache_fraction: float = 0.20,
    seed: int = 0,
    engine: SweepEngine | None = None,
) -> FigureResult:
    """Metadata I/O as a share of cache writes vs metadata partition size.

    The paper sweeps 0.39-0.98 % of the SSD for KDD with medium content
    locality and reports the share staying under ~1.8 % at 0.59 %.
    """
    result = FigureResult(
        "fig4",
        "Effect of the metadata partition size on metadata I/Os (KDD-25%)",
    )
    cells: list[SweepCell] = []
    grid: list[tuple[str, int, float]] = []
    for name in ALL_WORKLOADS:
        trace = workload_trace(name, scale)
        cache_pages = _cache_sizes(name, scale, (cache_fraction,))[0]
        for frac in partition_fracs:
            cells.append(sim_cell("kdd", trace, cache_pages, seed=seed,
                                  mean_compression=0.25,
                                  meta_partition_frac=frac))
            grid.append((name, cache_pages, frac))
    sweep = _engine(engine).run(cells)
    for (name, cache_pages, frac), row in zip(grid, sweep.rows):
        result.rows.append(
            {
                "workload": name,
                "cache_pages": cache_pages,
                "meta_partition_pct": round(frac * 100, 2),
                "meta_io_pct": round(row["meta_fraction_exact"] * 100, 3),
                "meta_pages_written": row["meta_writes"],
            }
        )
    result.timing = sweep.stats.row()
    return result


# ---------------------------------------------------------------------------
# Figures 5-8 — hit ratio and SSD write traffic vs cache size
# ---------------------------------------------------------------------------

def _sweep(
    workloads: Sequence[str],
    policies: Sequence[str],
    scale: float,
    fractions: Sequence[float],
    seed: int,
    engine: SweepEngine | None = None,
) -> tuple[list[dict], dict]:
    cells = [
        _grid_cell(policy, workload_trace(name, scale), cache_pages, seed)
        for name in workloads
        for cache_pages in _cache_sizes(name, scale, fractions)
        for policy in policies
    ]
    sweep = _engine(engine).run(cells)
    rows = [_project(row, _SIM_ROW_KEYS) for row in sweep.rows]
    return rows, sweep.stats.row()


def fig5(scale: float = DEFAULT_SCALE, seed: int = 0,
         fractions: Sequence[float] = CACHE_FRACTIONS,
         engine: SweepEngine | None = None) -> FigureResult:
    """Cache hit ratios, write-dominant traces (Fin1, Hm0)."""
    result = FigureResult("fig5", "Hit ratios under write-dominant traces")
    result.rows, result.timing = _sweep(
        WRITE_DOMINANT, ["wt", "leavo", "kdd-50", "kdd-25", "kdd-12"],
        scale, fractions, seed, engine,
    )
    result.notes.append("expected order: WT >= KDD-12 >= KDD-25 >= KDD-50 >= LeavO")
    return result


def fig6(scale: float = DEFAULT_SCALE, seed: int = 0,
         fractions: Sequence[float] = CACHE_FRACTIONS,
         engine: SweepEngine | None = None) -> FigureResult:
    """SSD write traffic, write-dominant traces (adds WA)."""
    result = FigureResult("fig6", "SSD write traffic under write-dominant traces")
    result.rows, result.timing = _sweep(
        WRITE_DOMINANT, ["wa", "wt", "leavo", "kdd-50", "kdd-25", "kdd-12"],
        scale, fractions, seed, engine,
    )
    result.notes.append("expected order: WA < KDD-12 < KDD-25 < KDD-50 < WT < LeavO")
    return result


def fig7(scale: float = DEFAULT_SCALE, seed: int = 0,
         fractions: Sequence[float] = CACHE_FRACTIONS,
         engine: SweepEngine | None = None) -> FigureResult:
    """Cache hit ratios, read-dominant traces (Fin2, Web0)."""
    result = FigureResult("fig7", "Hit ratios under read-dominant traces")
    result.rows, result.timing = _sweep(
        READ_DOMINANT, ["wt", "leavo", "kdd-50", "kdd-25", "kdd-12"],
        scale, fractions, seed, engine,
    )
    result.notes.append(
        "Web0 at small caches: KDD can beat WT (write locality >> read locality)"
    )
    return result


def fig8(scale: float = DEFAULT_SCALE, seed: int = 0,
         fractions: Sequence[float] = CACHE_FRACTIONS,
         engine: SweepEngine | None = None) -> FigureResult:
    """SSD write traffic, read-dominant traces."""
    result = FigureResult("fig8", "SSD write traffic under read-dominant traces")
    result.rows, result.timing = _sweep(
        READ_DOMINANT, ["wa", "wt", "leavo", "kdd-50", "kdd-25", "kdd-12"],
        scale, fractions, seed, engine,
    )
    result.notes.append("gap to WA narrows; KDD-12 can undercut WA at large caches")
    return result


# ---------------------------------------------------------------------------
# Figure 9 — open-loop trace replay response times
# ---------------------------------------------------------------------------

FIG9_POLICIES = ("nossd", "wa", "wt", "leavo", "kdd")


def fig9(
    scale: float = 0.004,
    seed: int = 0,
    cache_fraction: float = 0.10,
    max_requests: int = 15_000,
    target_iops: float = 120.0,
    engine: SweepEngine | None = None,
) -> FigureResult:
    """Average response time replaying each trace (RAIDmeter experiment).

    ``target_iops`` rescales arrival times so a 5-disk RAID-5 runs near
    (not beyond) saturation, like the paper's testbed; KDD uses medium
    content locality (25 %) as in Section IV-B1.
    """
    result = FigureResult("fig9", "Average response time, open-loop trace replay")
    cells: list[SweepCell] = []
    for name in ALL_WORKLOADS:
        trace = workload_trace(name, scale)
        spec = workload_spec(name, scale)
        time_scale = spec.iops / target_iops
        cache_pages = _cache_sizes(name, scale, (cache_fraction,))[0]
        for policy in FIG9_POLICIES:
            cells.append(
                SweepCell(
                    kind="replay",
                    policy=policy,
                    trace=trace,
                    cache_pages=cache_pages,
                    seed=seed,
                    params=(
                        ("max_requests", max_requests),
                        ("mean_compression", 0.25),
                        ("time_scale", time_scale),
                    ),
                )
            )
    sweep = _engine(engine).run(cells)
    result.rows = [dict(row) for row in sweep.rows]
    result.timing = sweep.stats.row()
    result.notes.append(
        "expected: KDD ~ LeavO < WT/WA; WT/WA beat Nossd only on read-heavy Fin2"
    )
    return result


# ---------------------------------------------------------------------------
# Figures 10-11 — FIO closed-loop benchmark
# ---------------------------------------------------------------------------

FIO_READ_RATES = (0.0, 0.25, 0.50, 0.75)


def _fio_cell(
    policy: str,
    read_rate: float,
    total_requests: int,
    working_set_pages: int,
    cache_pages: int,
    nthreads: int,
    seed: int,
) -> SweepCell:
    """One closed-loop FIO cell (Section IV-B3 setup)."""
    return SweepCell(
        kind="fio",
        policy=policy,
        cache_pages=cache_pages,
        seed=seed,
        params=(
            ("mean_compression", 0.25),
            ("nthreads", nthreads),
            ("read_rate", read_rate),
            ("total_requests", total_requests),
            ("working_set_pages", working_set_pages),
        ),
    )


def fig10(
    total_requests: int = 6000,
    working_set_pages: int = 80_000,
    cache_pages: int = 50_000,
    nthreads: int = 16,
    seed: int = 0,
    engine: SweepEngine | None = None,
) -> FigureResult:
    """Average response time under the FIO zipf benchmark (Section IV-B3).

    Paper setup scaled down: working set larger than the cache, 16
    threads, Zipf alpha 1.0001, read rates 0-75 %.
    """
    result = FigureResult("fig10", "Average response time under FIO benchmark")
    cells = [
        _fio_cell(policy, read_rate, total_requests, working_set_pages,
                  cache_pages, nthreads, seed)
        for read_rate in FIO_READ_RATES
        for policy in FIG9_POLICIES
    ]
    sweep = _engine(engine).run(cells)
    result.rows = [
        {k: v for k, v in row.items() if k not in _FIO_EXTRA_KEYS}
        for row in sweep.rows
    ]
    result.timing = sweep.stats.row()
    result.notes.append("expected: KDD ~ LeavO << WT ~ WA ~ Nossd at low read rates")
    return result


def fig11(
    total_requests: int = 6000,
    working_set_pages: int = 80_000,
    cache_pages: int = 50_000,
    nthreads: int = 16,
    seed: int = 0,
    engine: SweepEngine | None = None,
) -> FigureResult:
    """SSD write traffic under the FIO benchmark."""
    result = FigureResult("fig11", "SSD write traffic under FIO benchmark")
    cells = [
        _fio_cell(policy, read_rate, total_requests, working_set_pages,
                  cache_pages, nthreads, seed)
        for read_rate in FIO_READ_RATES
        for policy in ("wa", "wt", "leavo", "kdd")
    ]
    sweep = _engine(engine).run(cells)
    result.rows = [
        _project(row, ("read_rate", "policy", "ssd_write_pages", "fills",
                       "data", "delta", "meta"))
        for row in sweep.rows
    ]
    result.timing = sweep.stats.row()
    result.notes.append("expected: WA least; KDD < WT < LeavO; WA approaches KDD as reads grow")
    return result


# ---------------------------------------------------------------------------
# Table II — qualitative comparison, derived from measurements
# ---------------------------------------------------------------------------

def table2(
    total_requests: int = 4000,
    working_set_pages: int = 40_000,
    cache_pages: int = 25_000,
    nthreads: int = 16,
    seed: int = 0,
    engine: SweepEngine | None = None,
) -> FigureResult:
    """Derive Table II (latency / endurance classes) from measurements.

    A policy gets 'Low' latency if it beats the no-cache baseline by more
    than 25 % on a write-heavy mix, and 'Good' endurance if its cache
    write traffic is within 3x of write-around's.
    """
    policies = ("nossd", "wt", "wa", "leavo", "kdd")
    cells = [
        _fio_cell(policy, 0.25, total_requests, working_set_pages,
                  cache_pages, nthreads, seed)
        for policy in policies
    ]
    sweep = _engine(engine).run(cells)
    by_policy = dict(zip(policies, sweep.rows))
    baseline_mean = by_policy["nossd"]["mean_s"]
    wa_writes = max(1, by_policy["wa"]["ssd_write_pages"])
    result = FigureResult("table2", "Comparison of different caching policies")
    for policy in ("wt", "wa", "leavo", "kdd"):
        row = by_policy[policy]
        speedup = 1.0 - row["mean_s"] / baseline_mean
        writes_vs_wa = row["ssd_write_pages"] / wa_writes
        result.rows.append(
            {
                "policy": policy,
                "io_latency": "Low" if speedup > 0.25 else "High",
                "ssd_endurance": "Good" if writes_vs_wa <= 3.0 else "Bad",
                "latency_reduction_vs_nossd_pct": round(100 * speedup, 1),
                "ssd_writes_vs_wa": round(writes_vs_wa, 2),
            }
        )
    result.timing = sweep.stats.row()
    result.notes.append("paper's Table II: WT/WA high latency; WT/LeavO bad endurance")
    return result


ALL_FIGURES = {
    "table1": table1,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "table2": table2,
}
