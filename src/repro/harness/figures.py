"""Drivers that regenerate every table and figure of the evaluation.

Each ``figN`` / ``tableN`` function reruns the corresponding experiment
of Section IV at a configurable ``scale`` (footprints, request counts
and cache sizes all shrink by the same factor, preserving per-page
temporal locality and therefore the figures' shapes) and returns a
:class:`FigureResult` whose rows mirror the paper's plotted series.

The index lives in DESIGN.md; EXPERIMENTS.md records paper-vs-measured.
"""

from __future__ import annotations

from typing import Sequence

from ..cache.base import CacheConfig
from ..raid.array import RAIDArray
from ..raid.layout import RaidLevel
from ..sim.closedloop import FioConfig, run_closed_loop
from ..sim.openloop import replay_trace
from ..sim.system import TimedSystem
from ..traces.trace import Trace
from ..traces.workloads import (
    ALL_WORKLOADS,
    READ_DOMINANT,
    TABLE1_SPECS,
    WRITE_DOMINANT,
    make_workload,
    workload_spec,
)
from .report import FigureResult
from .runner import build_policy, make_raid_for_trace, simulate_policy

#: KDD variants at the three content-locality levels the paper evaluates.
KDD_VARIANTS = {"kdd-50": 0.50, "kdd-25": 0.25, "kdd-12": 0.12}

#: Cache sizes as fractions of a workload's unique footprint, mirroring
#: the x-axis ranges of Figures 5-8.
CACHE_FRACTIONS = (0.025, 0.05, 0.10, 0.20)

DEFAULT_SCALE = 0.01


def _cache_sizes(workload: str, scale: float,
                 fractions: Sequence[float] = CACHE_FRACTIONS) -> list[int]:
    unique = workload_spec(workload, scale).unique_pages
    return [max(64, int(unique * f)) for f in fractions]


def _run_cell(
    policy: str,
    trace: Trace,
    cache_pages: int,
    seed: int = 0,
    **config_kw,
) -> dict:
    """One (policy, workload, cache size) simulation -> a result row."""
    if policy in KDD_VARIANTS:
        row = simulate_policy(
            "kdd",
            trace,
            cache_pages,
            mean_compression=KDD_VARIANTS[policy],
            seed=seed,
            **config_kw,
        ).row()
        row["policy"] = policy
        return row
    return simulate_policy(policy, trace, cache_pages, seed=seed, **config_kw).row()


# ---------------------------------------------------------------------------
# Table I — workload characteristics
# ---------------------------------------------------------------------------

def table1(scale: float = DEFAULT_SCALE) -> FigureResult:
    """Regenerate Table I from the calibrated synthetic traces."""
    result = FigureResult(
        "table1",
        "Characteristics of I/O workload traces (scaled)",
        notes=[
            f"generated at scale={scale}; multiply page/request counts by "
            f"{1 / scale:g} to compare with the paper's absolute numbers",
        ],
    )
    for name in ALL_WORKLOADS:
        row = make_workload(name, scale=scale).stats().row()
        spec = TABLE1_SPECS[name]
        row["paper_read_ratio"] = round(
            spec.read_requests / (spec.read_requests + spec.write_requests), 2
        )
        result.rows.append(row)
    return result


# ---------------------------------------------------------------------------
# Figure 4 — metadata partition size vs metadata I/O share
# ---------------------------------------------------------------------------

def fig4(
    scale: float = DEFAULT_SCALE,
    partition_fracs: Sequence[float] = (0.0039, 0.0059, 0.0078, 0.0098),
    cache_fraction: float = 0.20,
    seed: int = 0,
) -> FigureResult:
    """Metadata I/O as a share of cache writes vs metadata partition size.

    The paper sweeps 0.39-0.98 % of the SSD for KDD with medium content
    locality and reports the share staying under ~1.8 % at 0.59 %.
    """
    result = FigureResult(
        "fig4",
        "Effect of the metadata partition size on metadata I/Os (KDD-25%)",
    )
    for name in ALL_WORKLOADS:
        trace = make_workload(name, scale=scale)
        cache_pages = _cache_sizes(name, scale, (cache_fraction,))[0]
        for frac in partition_fracs:
            r = simulate_policy(
                "kdd",
                trace,
                cache_pages,
                mean_compression=0.25,
                meta_partition_frac=frac,
                seed=seed,
            )
            result.rows.append(
                {
                    "workload": name,
                    "cache_pages": cache_pages,
                    "meta_partition_pct": round(frac * 100, 2),
                    "meta_io_pct": round(r.meta_fraction * 100, 3),
                    "meta_pages_written": r.stats.meta_writes,
                }
            )
    return result


# ---------------------------------------------------------------------------
# Figures 5-8 — hit ratio and SSD write traffic vs cache size
# ---------------------------------------------------------------------------

def _sweep(
    workloads: Sequence[str],
    policies: Sequence[str],
    scale: float,
    fractions: Sequence[float],
    seed: int,
) -> list[dict]:
    rows = []
    for name in workloads:
        trace = make_workload(name, scale=scale)
        for cache_pages in _cache_sizes(name, scale, fractions):
            for policy in policies:
                rows.append(_run_cell(policy, trace, cache_pages, seed=seed))
    return rows


def fig5(scale: float = DEFAULT_SCALE, seed: int = 0,
         fractions: Sequence[float] = CACHE_FRACTIONS) -> FigureResult:
    """Cache hit ratios, write-dominant traces (Fin1, Hm0)."""
    result = FigureResult("fig5", "Hit ratios under write-dominant traces")
    result.rows = _sweep(
        WRITE_DOMINANT, ["wt", "leavo", "kdd-50", "kdd-25", "kdd-12"],
        scale, fractions, seed,
    )
    result.notes.append("expected order: WT >= KDD-12 >= KDD-25 >= KDD-50 >= LeavO")
    return result


def fig6(scale: float = DEFAULT_SCALE, seed: int = 0,
         fractions: Sequence[float] = CACHE_FRACTIONS) -> FigureResult:
    """SSD write traffic, write-dominant traces (adds WA)."""
    result = FigureResult("fig6", "SSD write traffic under write-dominant traces")
    result.rows = _sweep(
        WRITE_DOMINANT, ["wa", "wt", "leavo", "kdd-50", "kdd-25", "kdd-12"],
        scale, fractions, seed,
    )
    result.notes.append("expected order: WA < KDD-12 < KDD-25 < KDD-50 < WT < LeavO")
    return result


def fig7(scale: float = DEFAULT_SCALE, seed: int = 0,
         fractions: Sequence[float] = CACHE_FRACTIONS) -> FigureResult:
    """Cache hit ratios, read-dominant traces (Fin2, Web0)."""
    result = FigureResult("fig7", "Hit ratios under read-dominant traces")
    result.rows = _sweep(
        READ_DOMINANT, ["wt", "leavo", "kdd-50", "kdd-25", "kdd-12"],
        scale, fractions, seed,
    )
    result.notes.append(
        "Web0 at small caches: KDD can beat WT (write locality >> read locality)"
    )
    return result


def fig8(scale: float = DEFAULT_SCALE, seed: int = 0,
         fractions: Sequence[float] = CACHE_FRACTIONS) -> FigureResult:
    """SSD write traffic, read-dominant traces."""
    result = FigureResult("fig8", "SSD write traffic under read-dominant traces")
    result.rows = _sweep(
        READ_DOMINANT, ["wa", "wt", "leavo", "kdd-50", "kdd-25", "kdd-12"],
        scale, fractions, seed,
    )
    result.notes.append("gap to WA narrows; KDD-12 can undercut WA at large caches")
    return result


# ---------------------------------------------------------------------------
# Figure 9 — open-loop trace replay response times
# ---------------------------------------------------------------------------

FIG9_POLICIES = ("nossd", "wa", "wt", "leavo", "kdd")


def fig9(
    scale: float = 0.004,
    seed: int = 0,
    cache_fraction: float = 0.10,
    max_requests: int = 15_000,
    target_iops: float = 120.0,
) -> FigureResult:
    """Average response time replaying each trace (RAIDmeter experiment).

    ``target_iops`` rescales arrival times so a 5-disk RAID-5 runs near
    (not beyond) saturation, like the paper's testbed; KDD uses medium
    content locality (25 %) as in Section IV-B1.
    """
    result = FigureResult("fig9", "Average response time, open-loop trace replay")
    for name in ALL_WORKLOADS:
        trace = make_workload(name, scale=scale)
        spec = workload_spec(name, scale)
        time_scale = spec.iops / target_iops
        cache_pages = _cache_sizes(name, scale, (cache_fraction,))[0]
        for policy in FIG9_POLICIES:
            raid = make_raid_for_trace(trace)
            config = CacheConfig(cache_pages=cache_pages, mean_compression=0.25,
                                 seed=seed)
            system = TimedSystem(build_policy(policy, config, raid))
            rep = replay_trace(
                system, trace, max_requests=max_requests, time_scale=time_scale
            )
            row = {"workload": name, "policy": policy}
            row.update(rep.row())
            result.rows.append(row)
    result.notes.append(
        "expected: KDD ~ LeavO < WT/WA; WT/WA beat Nossd only on read-heavy Fin2"
    )
    return result


# ---------------------------------------------------------------------------
# Figures 10-11 — FIO closed-loop benchmark
# ---------------------------------------------------------------------------

FIO_READ_RATES = (0.0, 0.25, 0.50, 0.75)


def _fio_cell(
    policy: str,
    read_rate: float,
    total_requests: int,
    working_set_pages: int,
    cache_pages: int,
    nthreads: int,
    seed: int,
):
    raid = RAIDArray(
        RaidLevel.RAID5,
        ndisks=5,
        chunk_pages=16,
        pages_per_disk=max(1 << 14, 2 * working_set_pages),
    )
    config = CacheConfig(cache_pages=cache_pages, mean_compression=0.25, seed=seed)
    system = TimedSystem(build_policy(policy, config, raid))
    rep = run_closed_loop(
        system,
        FioConfig(
            total_requests=total_requests,
            working_set_pages=working_set_pages,
            read_rate=read_rate,
            nthreads=nthreads,
            seed=seed,
        ),
    )
    return system, rep


def fig10(
    total_requests: int = 6000,
    working_set_pages: int = 80_000,
    cache_pages: int = 50_000,
    nthreads: int = 16,
    seed: int = 0,
) -> FigureResult:
    """Average response time under the FIO zipf benchmark (Section IV-B3).

    Paper setup scaled down: working set larger than the cache, 16
    threads, Zipf alpha 1.0001, read rates 0-75 %.
    """
    result = FigureResult("fig10", "Average response time under FIO benchmark")
    for read_rate in FIO_READ_RATES:
        for policy in FIG9_POLICIES:
            _, rep = _fio_cell(
                policy, read_rate, total_requests, working_set_pages,
                cache_pages, nthreads, seed,
            )
            row = {"read_rate": read_rate, "policy": policy}
            row.update(rep.row())
            result.rows.append(row)
    result.notes.append("expected: KDD ~ LeavO << WT ~ WA ~ Nossd at low read rates")
    return result


def fig11(
    total_requests: int = 6000,
    working_set_pages: int = 80_000,
    cache_pages: int = 50_000,
    nthreads: int = 16,
    seed: int = 0,
) -> FigureResult:
    """SSD write traffic under the FIO benchmark."""
    result = FigureResult("fig11", "SSD write traffic under FIO benchmark")
    for read_rate in FIO_READ_RATES:
        for policy in ("wa", "wt", "leavo", "kdd"):
            system, rep = _fio_cell(
                policy, read_rate, total_requests, working_set_pages,
                cache_pages, nthreads, seed,
            )
            stats = system.policy.stats
            result.rows.append(
                {
                    "read_rate": read_rate,
                    "policy": policy,
                    "ssd_write_pages": stats.ssd_writes,
                    "fills": stats.fill_writes,
                    "data": stats.data_writes,
                    "delta": stats.delta_writes,
                    "meta": stats.meta_writes,
                }
            )
    result.notes.append("expected: WA least; KDD < WT < LeavO; WA approaches KDD as reads grow")
    return result


# ---------------------------------------------------------------------------
# Table II — qualitative comparison, derived from measurements
# ---------------------------------------------------------------------------

def table2(
    total_requests: int = 4000,
    working_set_pages: int = 40_000,
    cache_pages: int = 25_000,
    nthreads: int = 16,
    seed: int = 0,
) -> FigureResult:
    """Derive Table II (latency / endurance classes) from measurements.

    A policy gets 'Low' latency if it beats the no-cache baseline by more
    than 25 % on a write-heavy mix, and 'Good' endurance if its cache
    write traffic is within 3x of write-around's.
    """
    baseline_sys, baseline = _fio_cell(
        "nossd", 0.25, total_requests, working_set_pages, cache_pages, nthreads, seed
    )
    wa_sys, _ = _fio_cell(
        "wa", 0.25, total_requests, working_set_pages, cache_pages, nthreads, seed
    )
    wa_writes = max(1, wa_sys.policy.stats.ssd_writes)
    result = FigureResult("table2", "Comparison of different caching policies")
    for policy in ("wt", "wa", "leavo", "kdd"):
        system, rep = _fio_cell(
            policy, 0.25, total_requests, working_set_pages, cache_pages,
            nthreads, seed,
        )
        speedup = 1.0 - rep.latency.mean / baseline.latency.mean
        writes_vs_wa = system.policy.stats.ssd_writes / wa_writes
        result.rows.append(
            {
                "policy": policy,
                "io_latency": "Low" if speedup > 0.25 else "High",
                "ssd_endurance": "Good" if writes_vs_wa <= 3.0 else "Bad",
                "latency_reduction_vs_nossd_pct": round(100 * speedup, 1),
                "ssd_writes_vs_wa": round(writes_vs_wa, 2),
            }
        )
    result.notes.append("paper's Table II: WT/WA high latency; WT/LeavO bad endurance")
    return result


ALL_FIGURES = {
    "table1": table1,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "table2": table2,
}
