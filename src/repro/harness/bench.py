"""Performance benchmark harness with tracked ``BENCH_<fig>.json`` baselines.

Each bench runs one figure's experiment grid at a pinned small scale
twice — once through the scalar per-request path and once through the
columnar fast path (``vectorized=True``, see
:meth:`repro.cache.base.CachePolicy.process_trace`) — and emits one
machine-readable ``BENCH_<fig>.json`` file:

* ``ops`` / ``ops_per_s`` — page accesses processed per wall-second in
  each mode, plus the total-time ``speedup`` and a per-policy breakdown
  with its geometric mean (``geomean_speedup``);
* ``row_checksum`` — SHA-256 over the canonical JSON of the result rows.
  Scalar and vectorized rows must be byte-identical; a divergence is a
  correctness bug and aborts the bench (:class:`SimulationError`);
* for the timed figures (fig9 replay, fig10 fio), an ``engine`` section
  with events processed per wall-second on the discrete-event loop.

Regression tracking compares a fresh run against the committed baseline
with :func:`compare_reports`.  Two classes of failure:

* checksum drift — the simulation's numerics changed; regenerate the
  baseline deliberately (``kdd-repro bench``) if the change is intended;
* speedup regression — the vectorized/scalar *ratio* fell by more than
  ``threshold`` (default 20 %).  The ratio is machine-independent, so
  the gate is meaningful even when CI hardware differs from the machine
  that produced the baseline.  Absolute ``ops_per_s`` / ``events_per_s``
  are recorded for trajectory but never gated.

Per-policy ceilings are structural, not incidental: policies whose hot
path is pure cache bookkeeping (nossd, wa, wt) vectorize by orders of
magnitude, while KDD's mlog/staging/DEZ-commit machinery is an
event-ordered state machine that must run per request in both modes to
keep rows byte-identical (see DESIGN.md, "What must stay
event-ordered").

This module is deliberately outside :mod:`repro.sim`/:mod:`repro.core`
so it may read the wall clock (kdd-lint RPR001 exempts the harness).
"""

from __future__ import annotations

import hashlib
import json
import math
import time
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable

from ..errors import ConfigError, SimulationError
from ..traces.workloads import (
    ALL_WORKLOADS,
    READ_DOMINANT,
    WRITE_DOMINANT,
    make_workload,
    workload_spec,
)
from .figures import FIG9_POLICIES, KDD_VARIANTS, _cache_sizes
from .runner import build_policy, make_raid_for_trace, simulate_policy
from .sweep import _canonical

#: Pinned scale for the trace-driven benches (same as benchmarks/).
BENCH_SCALE = 0.004

#: Default regression threshold on the vectorized/scalar speedup ratio.
BENCH_THRESHOLD = 0.20

#: Target IOPS for the fig9 replay bench (mirrors figures.fig9).
_REPLAY_TARGET_IOPS = 120.0
_REPLAY_MAX_REQUESTS = 2000

#: Pinned fig10 fio-bench shape (scaled-down figures.fig10 setup).
_FIO_PARAMS = dict(total_requests=1200, working_set_pages=20_000,
                   nthreads=16)
_FIO_CACHE_PAGES = 8000
_FIO_READ_RATES = (0.0, 0.5)


@dataclass(frozen=True)
class BenchCell:
    """One (policy, workload, cache size, config) benchmark cell."""

    policy: str     # registry name ('kdd', 'wt', ...)
    label: str      # reported name ('kdd-25' for locality variants)
    workload: str
    cache_pages: int
    config: tuple[tuple[str, Any], ...]


def _cell(policy: str, workload: str, cache_pages: int,
          **config: Any) -> BenchCell:
    label = policy
    if policy in KDD_VARIANTS:
        config["mean_compression"] = KDD_VARIANTS[policy]
        policy = "kdd"
    config.setdefault("seed", 0)
    return BenchCell(policy=policy, label=label, workload=workload,
                     cache_pages=cache_pages,
                     config=tuple(sorted(config.items())))


@lru_cache(maxsize=None)
def _trace(name: str, scale: float):
    return make_workload(name, scale)


@lru_cache(maxsize=None)
def _trace_ops(name: str, scale: float) -> int:
    """Page accesses in one pass over the workload."""
    return _trace(name, scale).stats().requests


# ---------------------------------------------------------------------------
# Figure grids (pinned, reduced versions of the figures.py grids)
# ---------------------------------------------------------------------------

def _grid(workloads, policies, scale: float, fraction: float,
          **extra: Any) -> list[BenchCell]:
    cells = []
    for name in workloads:
        cache_pages = _cache_sizes(name, scale, (fraction,))[0]
        for policy in policies:
            cells.append(_cell(policy, name, cache_pages, **extra))
    return cells


def _cells_fig4(scale: float) -> list[BenchCell]:
    return [
        _cell("kdd", name, _cache_sizes(name, scale, (0.20,))[0],
              mean_compression=0.25, meta_partition_frac=frac)
        for name in ALL_WORKLOADS
        for frac in (0.0039, 0.0098)
    ]


_HIT_POLICIES = ("wt", "leavo", "kdd-50", "kdd-25", "kdd-12")
_TRAFFIC_POLICIES = ("wa",) + _HIT_POLICIES

_FIG_GRIDS: dict[str, Callable[[float], list[BenchCell]]] = {
    "fig4": _cells_fig4,
    "fig5": lambda s: _grid(WRITE_DOMINANT, _HIT_POLICIES, s, 0.10),
    "fig6": lambda s: _grid(WRITE_DOMINANT, _TRAFFIC_POLICIES, s, 0.10),
    "fig7": lambda s: _grid(READ_DOMINANT, _HIT_POLICIES, s, 0.10),
    "fig8": lambda s: _grid(READ_DOMINANT, _TRAFFIC_POLICIES, s, 0.10),
    "fig9": lambda s: _grid(ALL_WORKLOADS, FIG9_POLICIES, s, 0.10,
                            mean_compression=0.25),
}


# ---------------------------------------------------------------------------
# Running
# ---------------------------------------------------------------------------

def _checksum(rows: list[dict[str, Any]]) -> str:
    return "sha256:" + hashlib.sha256(_canonical(rows).encode()).hexdigest()


def _run_cells(cells: list[BenchCell], scale: float, vectorized: bool):
    rows: list[dict[str, Any]] = []
    per_policy: dict[str, float] = {}
    wall = 0.0
    for cell in cells:
        trace = _trace(cell.workload, scale)
        start = time.perf_counter()
        result = simulate_policy(cell.policy, trace, cell.cache_pages,
                                 vectorized=vectorized, **dict(cell.config))
        elapsed = time.perf_counter() - start
        row = result.row()
        row["meta_writes"] = result.stats.meta_writes
        row.update(result.extras)
        row["policy"] = cell.label
        rows.append(row)
        wall += elapsed
        per_policy[cell.label] = per_policy.get(cell.label, 0.0) + elapsed
    return rows, wall, per_policy


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _bench_trace_grid(fig: str, cells: list[BenchCell],
                      scale: float) -> dict[str, Any]:
    for cell in cells:  # materialise traces outside the timed region
        _trace(cell.workload, scale)
    ops = sum(_trace_ops(c.workload, scale) for c in cells)
    rows_s, wall_s, per_s = _run_cells(cells, scale, vectorized=False)
    rows_v, wall_v, per_v = _run_cells(cells, scale, vectorized=True)
    if rows_s != rows_v:
        diverged = [
            (a["policy"], a["workload"])
            for a, b in zip(rows_s, rows_v) if a != b
        ]
        raise SimulationError(
            f"{fig}: vectorized rows diverge from scalar rows for cells "
            f"{diverged}; the columnar fast path must be result-identical"
        )
    floor = 1e-9
    per_policy = {
        label: {
            "scalar_s": round(per_s[label], 4),
            "vectorized_s": round(per_v[label], 4),
            "speedup": round(per_s[label] / max(per_v[label], floor), 2),
        }
        for label in per_s
    }
    return {
        "figure": fig,
        "kind": "trace",
        "scale": scale,
        "cells": len(cells),
        "ops": ops,
        "scalar": {
            "wall_s": round(wall_s, 4),
            "ops_per_s": round(ops / max(wall_s, floor)),
        },
        "vectorized": {
            "wall_s": round(wall_v, 4),
            "ops_per_s": round(ops / max(wall_v, floor)),
        },
        "speedup": round(wall_s / max(wall_v, floor), 2),
        "geomean_speedup": round(
            _geomean([v["speedup"] for v in per_policy.values()]), 2
        ),
        "per_policy": per_policy,
        "rows_identical": True,
        "row_checksum": _checksum(rows_s),
    }


# ---------------------------------------------------------------------------
# Engine (discrete-event) benches — events per wall-second
# ---------------------------------------------------------------------------

def _bench_replay_engine(scale: float) -> dict[str, Any]:
    """fig9's timed half: open-loop replay on the event engine (Fin1)."""
    from ..cache.base import CacheConfig
    from ..sim.openloop import replay_trace
    from ..sim.system import TimedSystem

    name = "Fin1"
    trace = _trace(name, scale)
    spec = workload_spec(name, scale)
    time_scale = spec.iops / _REPLAY_TARGET_IOPS
    cache_pages = _cache_sizes(name, scale, (0.10,))[0]
    rows: list[dict[str, Any]] = []
    events = 0
    wall = 0.0
    for policy in FIG9_POLICIES:
        raid = make_raid_for_trace(trace)
        config = CacheConfig(cache_pages=cache_pages, seed=0,
                             mean_compression=0.25)
        system = TimedSystem(build_policy(policy, config, raid))
        start = time.perf_counter()
        rep = replay_trace(system, trace,
                           max_requests=_REPLAY_MAX_REQUESTS,
                           time_scale=time_scale)
        wall += time.perf_counter() - start
        events += system.engine.loop.processed
        rows.append({"workload": name, "policy": policy, **rep.row()})
    return {
        "workload": name,
        "max_requests": _REPLAY_MAX_REQUESTS,
        "cache_pages": cache_pages,
        "events": events,
        "wall_s": round(wall, 4),
        "events_per_s": round(events / max(wall, 1e-9)),
        "row_checksum": _checksum(rows),
    }


def _bench_fio_engine() -> dict[str, Any]:
    """fig10: closed-loop fio benchmark on the event engine."""
    from ..cache.base import CacheConfig
    from ..raid.array import RAIDArray
    from ..raid.layout import RaidLevel
    from ..sim.closedloop import FioConfig, run_closed_loop
    from ..sim.system import TimedSystem

    rows: list[dict[str, Any]] = []
    events = 0
    wall = 0.0
    for read_rate in _FIO_READ_RATES:
        for policy in FIG9_POLICIES:
            fio = FioConfig(read_rate=read_rate, seed=0, **_FIO_PARAMS)
            raid = RAIDArray(
                RaidLevel.RAID5,
                ndisks=5,
                chunk_pages=16,
                pages_per_disk=max(1 << 14, 2 * fio.working_set_pages),
            )
            config = CacheConfig(cache_pages=_FIO_CACHE_PAGES, seed=0,
                                 mean_compression=0.25)
            system = TimedSystem(build_policy(policy, config, raid))
            start = time.perf_counter()
            rep = run_closed_loop(system, fio)
            wall += time.perf_counter() - start
            events += system.engine.loop.processed
            rows.append({"read_rate": read_rate, "policy": policy,
                         **rep.row()})
    return {
        "cells": len(rows),
        "cache_pages": _FIO_CACHE_PAGES,
        "params": dict(_FIO_PARAMS, read_rates=list(_FIO_READ_RATES)),
        "events": events,
        "wall_s": round(wall, 4),
        "events_per_s": round(events / max(wall, 1e-9)),
        "row_checksum": _checksum(rows),
    }


# ---------------------------------------------------------------------------
# Robustness bench — crash matrix + reliability models
# ---------------------------------------------------------------------------

#: Pinned shapes for the reliability bench (mirror the test fixtures).
_CRASH_MATRIX_ACCESSES = 160
_RELIABILITY_CFG = dict(accesses=800, universe_pages=128, cache_pages=64,
                        seed=3)
_MC_BENCH_TRIALS = 20_000


def _bench_reliability() -> dict[str, Any]:
    """Crash-matrix and reliability-model throughput, checksummed rows.

    Timed regions: the full crash matrix (capture pass plus one armed
    replay per boundary — the dominant cost of the robustness CI step)
    and the Monte-Carlo estimator alone (trials per wall-second over a
    measured stale-stripe distribution).  The checksum covers only the
    deterministic result rows, never the timings, so the baseline gates
    numerics drift while throughput stays informational — there is no
    ``speedup`` key, so the ratio gate does not apply.
    """
    from ..faults.crash import run_crash_matrix
    from ..reliability.measure import (
        ExposureRunConfig,
        derive_params,
        measure_exposure,
        run_reliability_point,
    )
    from ..reliability.montecarlo import monte_carlo_loss

    start = time.perf_counter()
    matrix = run_crash_matrix(accesses=_CRASH_MATRIX_ACCESSES, seed=0,
                              armed_stride=1)
    crash_wall = time.perf_counter() - start

    cfg = ExposureRunConfig(**_RELIABILITY_CFG)
    point = run_reliability_point(cfg, trials=2000)
    exposure, _scrub, samples = measure_exposure(cfg)
    params = derive_params(exposure, iops=2.0e4)
    start = time.perf_counter()
    mc = monte_carlo_loss(params, trials=_MC_BENCH_TRIALS, seed=0,
                          stale_samples=samples)
    mc_wall = time.perf_counter() - start

    point_row = point.row()
    rows = [matrix.row(), point_row, mc.row()]
    return {
        "figure": "reliability",
        "kind": "robustness",
        "crash_matrix": {
            "accesses": _CRASH_MATRIX_ACCESSES,
            "boundaries": matrix.boundaries,
            "torn_boundaries": matrix.torn_boundaries,
            "armed_runs": matrix.armed_runs,
            "wall_s": round(crash_wall, 4),
            "boundaries_per_s": round(
                matrix.boundaries / max(crash_wall, 1e-9)
            ),
        },
        "monte_carlo": {
            "trials": _MC_BENCH_TRIALS,
            "wall_s": round(mc_wall, 4),
            "trials_per_s": round(_MC_BENCH_TRIALS / max(mc_wall, 1e-9)),
        },
        "cross_check": {
            "agrees": point_row["agrees"],
            "p_loss_delta": point_row["p_loss_delta"],
            "tolerance": point_row["tolerance"],
        },
        "row_checksum": _checksum(rows),
    }


# ---------------------------------------------------------------------------
# Serving bench — composition throughput + the partitioned pipeline
# ---------------------------------------------------------------------------

#: Pinned composition-scaling shape: a 1M-request stream over a
#: 1000-tenant fleet, metrics-only (the acceptance scale for O(1)
#: online-metric state).
_SERVE_COMPOSE = dict(tenants=1000, max_requests=1_000_000,
                      universe_pages=512, base_iops=2.0,
                      diurnal_amplitude=0.8, diurnal_period_s=3600.0)

#: Pinned full-pipeline shape (static + dynamic partitioning).
_SERVE_DRIVE = dict(n_tenants=32, cache_pages=2048, universe_pages=1024,
                    base_iops=50.0, diurnal_amplitude=0.9,
                    diurnal_period_s=600.0, max_requests=100_000,
                    realloc_period=4000, min_fraction=0.01, ways=16)


def _bench_serve() -> dict[str, Any]:
    """Multi-tenant serving throughput, checksummed deterministic rows.

    Two timed regions: *compose* — the workload multiplexer alone,
    feeding the streaming metrics (composed requests and tenant-epochs
    per wall-second, with the frozen online-metric byte budget asserted
    over the full 1M-request / 1000-tenant stream) — and *drive* — the
    full partitioned-cache pipeline through the serve sweep executor,
    once static and once dynamic.  The checksum covers the
    deterministic result rows only, never the timings; like the
    reliability bench there is no ``speedup`` key, so the ratio gate
    does not apply.
    """
    from ..serve.composer import WorkloadComposer
    from ..serve.driver import ServeMetrics
    from ..serve.tenants import make_tenant_fleet
    from .servesweep import run_serve_cell, serve_cell

    shape = dict(_SERVE_COMPOSE)
    n_tenants = shape.pop("tenants")
    max_requests = shape.pop("max_requests")
    fleet = make_tenant_fleet(n_tenants, **shape)
    composer = WorkloadComposer(fleet, seed=0, epoch_s=60.0)
    metrics = ServeMetrics(n_tenants, window_s=60.0)
    requests = 0
    epochs = 0
    start = time.perf_counter()
    for batch in composer.compose(max_requests=max_requests):
        metrics.observe_batch(batch)
        requests += len(batch)
        epochs += 1
    compose_wall = time.perf_counter() - start
    metrics.assert_bounded()
    floor = 1e-9
    rows: list[dict[str, Any]] = [metrics.summary()]

    drive_shape = dict(_SERVE_DRIVE)
    drive_rows = []
    drive_wall = 0.0
    for dynamic in (False, True):
        cell = serve_cell(
            policy="wt",
            dynamic=dynamic,
            seed=0,
            label="dynamic" if dynamic else "static",
            **drive_shape,
        )
        start = time.perf_counter()
        drive_rows.append(run_serve_cell(cell))
        drive_wall += time.perf_counter() - start
    rows.extend(drive_rows)
    drive_requests = sum(row["requests"] for row in drive_rows)
    return {
        "figure": "serve",
        "kind": "serve",
        "compose": {
            "tenants": n_tenants,
            "requests": requests,
            "epochs": epochs,
            "wall_s": round(compose_wall, 4),
            "requests_per_s": round(requests / max(compose_wall, floor)),
            "tenants_per_s": round(
                n_tenants * epochs / max(compose_wall, floor)
            ),
            "peak_metric_state_bytes": metrics.state_bytes(),
        },
        "drive": {
            "cells": len(drive_rows),
            "tenants": drive_shape["n_tenants"],
            "requests": drive_requests,
            "wall_s": round(drive_wall, 4),
            "requests_per_s": round(drive_requests / max(drive_wall, floor)),
        },
        "dynamic_hit_gain": round(
            drive_rows[1]["hit_ratio"] - drive_rows[0]["hit_ratio"], 4
        ),
        "row_checksum": _checksum(rows),
    }


# ---------------------------------------------------------------------------
# Per-figure entry points
# ---------------------------------------------------------------------------

def bench_figure(fig: str, scale: float = BENCH_SCALE) -> dict[str, Any]:
    """Run one figure's bench and return its report dict."""
    if fig == "fig10":
        report = {"figure": "fig10", "kind": "engine",
                  "engine": _bench_fio_engine()}
        return report
    if fig == "reliability":
        return _bench_reliability()
    if fig == "serve":
        return _bench_serve()
    if fig not in _FIG_GRIDS:
        raise ConfigError(
            f"unknown bench figure {fig!r}; choose from {sorted(BENCH_FIGURES)}"
        )
    report = _bench_trace_grid(fig, _FIG_GRIDS[fig](scale), scale)
    if fig == "fig9":
        report["engine"] = _bench_replay_engine(scale)
    return report


BENCH_FIGURES = ("fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
                 "reliability", "serve")


# ---------------------------------------------------------------------------
# Baseline files and regression comparison
# ---------------------------------------------------------------------------

def report_path(fig: str, out_dir: str | Path = ".") -> Path:
    return Path(out_dir) / f"BENCH_{fig}.json"


def write_report(report: dict[str, Any], out_dir: str | Path = ".") -> Path:
    path = report_path(report["figure"], out_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def load_report(fig: str, out_dir: str | Path = ".") -> dict[str, Any] | None:
    """Committed baseline for ``fig``, or None when none is committed.

    A baseline that exists but cannot be read or parsed is a
    :class:`ConfigError` naming the file — a corrupt checkout should
    fail loudly, not look like a missing baseline (or a traceback).
    """
    path = report_path(fig, out_dir)
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ConfigError(
            f"unreadable bench baseline {path}: {exc}"
        ) from exc


def compare_reports(old: dict[str, Any], new: dict[str, Any],
                    threshold: float = BENCH_THRESHOLD) -> list[str]:
    """Regressions of ``new`` versus baseline ``old`` (empty = clean).

    Gated: row checksums (exact) and the vectorized/scalar speedup ratio
    (machine-independent).  Absolute throughput is informational only.
    """
    fig = new.get("figure", "?")
    problems: list[str] = []
    if old.get("row_checksum") != new.get("row_checksum"):
        problems.append(
            f"{fig}: result rows changed (checksum "
            f"{old.get('row_checksum')} -> {new.get('row_checksum')}); "
            f"regenerate the baseline if this is intended"
        )
    old_speedup, new_speedup = old.get("speedup"), new.get("speedup")
    if old_speedup and new_speedup and \
            new_speedup < old_speedup * (1.0 - threshold):
        problems.append(
            f"{fig}: vectorized speedup regressed {old_speedup:.2f}x -> "
            f"{new_speedup:.2f}x (> {threshold:.0%} drop)"
        )
    old_eng, new_eng = old.get("engine"), new.get("engine")
    if old_eng and new_eng and \
            old_eng.get("row_checksum") != new_eng.get("row_checksum"):
        problems.append(f"{fig}: engine-bench rows changed (checksum "
                        f"mismatch); regenerate the baseline if intended")
    return problems


def run_benches(
    figures: list[str] | None = None,
    out_dir: str | Path = ".",
    scale: float = BENCH_SCALE,
    threshold: float = BENCH_THRESHOLD,
    check_only: bool = False,
    artifact_dir: str | Path | None = None,
    echo: Callable[[str], None] = print,
) -> int:
    """Run benches, compare to committed baselines, rewrite them.

    ``check_only=True`` (CI mode) compares without rewriting and raises
    :class:`ConfigError` up front if any figure has no committed
    baseline.  ``artifact_dir`` gets a copy of every fresh report
    regardless of mode (CI uploads it).  Returns a shell-style exit
    code.
    """
    names = list(figures) if figures else list(BENCH_FIGURES)
    unknown = [n for n in names if n not in BENCH_FIGURES]
    if unknown:
        raise ConfigError(
            f"unknown bench figures {unknown}; choose from {list(BENCH_FIGURES)}"
        )
    if check_only:
        # Fail before the (slow) benches run, naming every absent file.
        missing = [str(report_path(name, out_dir)) for name in names
                   if not report_path(name, out_dir).exists()]
        if missing:
            raise ConfigError(
                "bench --check needs a committed baseline for every "
                "figure; missing: " + ", ".join(missing)
            )
    problems: list[str] = []
    for name in names:
        report = bench_figure(name, scale=scale)
        baseline = load_report(name, out_dir)
        if baseline is not None:
            problems.extend(compare_reports(baseline, report, threshold))
        summary = _summary_line(report)
        echo(summary)
        if artifact_dir is not None:
            write_report(report, artifact_dir)
        if not check_only:
            write_report(report, out_dir)
    if problems:
        for problem in problems:
            echo(f"REGRESSION: {problem}")
        return 1
    return 0


def _summary_line(report: dict[str, Any]) -> str:
    fig = report["figure"]
    if report["kind"] == "engine":
        eng = report["engine"]
        return (f"{fig}: engine {eng['events']} events in "
                f"{eng['wall_s']:.2f}s ({eng['events_per_s']:,} events/s)")
    if report["kind"] == "serve":
        comp, drive = report["compose"], report["drive"]
        return (f"{fig}: composed {comp['requests']:,} requests over "
                f"{comp['tenants']} tenants in {comp['wall_s']:.2f}s "
                f"({comp['requests_per_s']:,} req/s, "
                f"{comp['tenants_per_s']:,} tenant-epochs/s, "
                f"{comp['peak_metric_state_bytes']:,} metric bytes); "
                f"drive {drive['requests']:,} requests in "
                f"{drive['wall_s']:.2f}s ({drive['requests_per_s']:,} req/s); "
                f"dynamic hit gain {report['dynamic_hit_gain']:+.4f}")
    if report["kind"] == "robustness":
        cm, mc = report["crash_matrix"], report["monte_carlo"]
        verdict = "agrees" if report["cross_check"]["agrees"] else "DISAGREES"
        return (f"{fig}: crash matrix {cm['boundaries']} boundaries "
                f"({cm['armed_runs']} armed) in {cm['wall_s']:.2f}s; "
                f"MC {mc['trials']:,} trials in {mc['wall_s']:.2f}s "
                f"({mc['trials_per_s']:,} trials/s); cross-check {verdict}")
    line = (
        f"{fig}: {report['cells']} cells, {report['ops']:,} ops; "
        f"scalar {report['scalar']['wall_s']:.2f}s "
        f"({report['scalar']['ops_per_s']:,} ops/s), "
        f"vectorized {report['vectorized']['wall_s']:.2f}s "
        f"({report['vectorized']['ops_per_s']:,} ops/s); "
        f"speedup {report['speedup']:.1f}x "
        f"(geomean {report['geomean_speedup']:.1f}x)"
    )
    if "engine" in report:
        eng = report["engine"]
        line += (f"; engine {eng['events_per_s']:,} events/s")
    return line
