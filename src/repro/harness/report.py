"""Plain-text rendering of experiment results (tables and series)."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

from ..errors import ConfigError


def render_table(rows: Sequence[dict[str, Any]], headers: Sequence[str] | None = None) -> str:
    """Align a list of dict rows into a monospace table."""
    if not rows:
        return "(no rows)"
    if headers is None:
        headers = list(rows[0].keys())
    table = [[str(r.get(h, "")) for h in headers] for r in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in table)) for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in table]
    return "\n".join(lines)


def render_sweep_stats(timing: dict[str, Any]) -> str:
    """One-line summary of a sweep's timing instrumentation.

    ``timing`` is a :meth:`repro.harness.sweep.SweepStats.row` dict:
    cell counts (executed / cached / deduped), wall time, throughput and
    worker utilisation.
    """
    cells = timing.get("cells", 0)
    parts = [f"{cells} cell{'s' if cells != 1 else ''}"]
    detail = []
    if timing.get("cached"):
        detail.append(f"{timing['cached']} cached")
    if timing.get("deduped"):
        detail.append(f"{timing['deduped']} deduped")
    if detail:
        parts[0] += f" ({timing.get('executed', 0)} run, {', '.join(detail)})"
    parts.append(f"{timing.get('elapsed_s', 0.0):.2f}s")
    parts.append(f"{timing.get('cells_per_sec', 0.0):.1f} cells/s")
    jobs = timing.get("jobs", 1)
    util = timing.get("worker_utilisation", 0.0)
    parts.append(f"{jobs} job{'s' if jobs != 1 else ''} at {util:.0%} utilisation")
    return "sweep: " + ", ".join(parts)


@dataclass
class FigureResult:
    """One regenerated table/figure: rows plus provenance."""

    figure_id: str
    title: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: Sweep-engine instrumentation for the run that produced the rows
    #: (a :meth:`repro.harness.sweep.SweepStats.row` dict), if any.
    timing: dict[str, Any] | None = None

    def render(self) -> str:
        out = [f"=== {self.figure_id}: {self.title} ===", render_table(self.rows)]
        out += [f"note: {n}" for n in self.notes]
        if self.timing:
            out.append(render_sweep_stats(self.timing))
        return "\n".join(out)

    def series(self, x: str, y: str, key: str) -> dict[Any, list[tuple[Any, Any]]]:
        """Group rows into plot-ready (x, y) series keyed by column ``key``."""
        for col in (x, y, key):
            if self.rows and col not in self.rows[0]:
                raise ConfigError(f"no column {col!r} in figure rows")
        series: dict[Any, list[tuple[Any, Any]]] = {}
        for row in self.rows:
            series.setdefault(row[key], []).append((row[x], row[y]))
        for points in series.values():
            points.sort()
        return series
