"""Plain-text rendering of experiment results (tables and series)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from ..errors import ConfigError


def render_table(rows: Sequence[dict[str, Any]], headers: Sequence[str] | None = None) -> str:
    """Align a list of dict rows into a monospace table."""
    if not rows:
        return "(no rows)"
    if headers is None:
        headers = list(rows[0].keys())
    table = [[str(r.get(h, "")) for h in headers] for r in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in table)) for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in table]
    return "\n".join(lines)


@dataclass
class FigureResult:
    """One regenerated table/figure: rows plus provenance."""

    figure_id: str
    title: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        out = [f"=== {self.figure_id}: {self.title} ===", render_table(self.rows)]
        out += [f"note: {n}" for n in self.notes]
        return "\n".join(out)

    def series(self, x: str, y: str, key: str) -> dict[Any, list[tuple[Any, Any]]]:
        """Group rows into plot-ready (x, y) series keyed by column ``key``."""
        for col in (x, y, key):
            if self.rows and col not in self.rows[0]:
                raise ConfigError(f"no column {col!r} in figure rows")
        series: dict[Any, list[tuple[Any, Any]]] = {}
        for row in self.rows:
            series.setdefault(row[key], []).append((row[x], row[y]))
        for points in series.values():
            points.sort()
        return series
