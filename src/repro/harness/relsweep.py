"""Reliability-sweep cell executor and grid builder.

This is harness code — it wires :mod:`repro.reliability` into the sweep
engine (the layering contract, RPR102, keeps simulation packages from
importing the harness).  One ``reliability`` cell is one operating point
of the cleaner/scrubber/rebuild policy: the executor measures the
vulnerability-window exposure from a real KDD run, derives the model
rates, solves the analytic Markov chain, runs the seeded Monte-Carlo
estimator over the measured stale-stripe distribution and reports both
plus their agreement — one nested row per cell, in the shared JSON
shapes (``exposure`` block, ``scrub`` block, model blocks).

Determinism inherits from the sweep discipline twice over: the workload
and cache are seeded with the cell's effective seed, and every
Monte-Carlo trial owns a ``sha256``-derived stream — rows are
byte-identical for any ``--jobs`` count.
"""

from __future__ import annotations

from typing import Any

from ..reliability.measure import ExposureRunConfig, run_reliability_point
from .sweep import SweepCell

#: ``SweepCell.params`` keys consumed by the model side of the executor
#: (everything else feeds :class:`~repro.reliability.measure.ExposureRunConfig`).
MODEL_KEYS = (
    "iops",
    "ndisks",
    "disk_mttf_h",
    "rebuild_h",
    "rebuild_priority",
    "horizon_h",
    "trials",
)

#: The measurement knobs an :class:`ExposureRunConfig` accepts from a
#: cell (``cache_pages`` and ``seed`` come from the cell itself).
MEASURE_KEYS = (
    "accesses",
    "universe_pages",
    "read_ratio",
    "dirty_threshold",
    "low_watermark",
    "scrub_period",
    "scrub_stripes",
)


def run_reliability_cell(cell: SweepCell) -> dict[str, Any]:
    """Execute one reliability cell; returns its (deterministic) row."""
    params = dict(cell.params)
    model_kwargs = {k: params.pop(k) for k in MODEL_KEYS if k in params}
    cfg = ExposureRunConfig(
        cache_pages=cell.cache_pages,
        seed=cell.effective_seed(),
        **params,
    )
    report = run_reliability_point(cfg, model_seed=cell.effective_seed(),
                                   **model_kwargs)
    row: dict[str, Any] = {
        "label": cell.label or "reliability",
        "accesses": cfg.accesses,
        "scrub_period": cfg.scrub_period,
        "dirty_threshold": cfg.dirty_threshold,
        "rebuild_priority": model_kwargs.get("rebuild_priority", 1.0),
    }
    row.update(report.row())
    return row


def reliability_cell(
    cache_pages: int = 64,
    scrub_period: int = 0,
    dirty_threshold: float = 0.50,
    low_watermark: float = 0.25,
    rebuild_priority: float = 1.0,
    seed: int | None = None,
    label: str | None = None,
    **params: Any,
) -> SweepCell:
    """Convenience constructor for a ``reliability`` sweep cell.

    The three named knobs are the sweep axes of the reliability study —
    scrub period, cleaner aggressiveness, rebuild priority; any other
    :data:`MEASURE_KEYS` / :data:`MODEL_KEYS` key passes through
    ``params``.  ``seed=None`` (the default) opts into hash-derived
    per-cell seeding, the sweep engine's determinism discipline.
    """
    return SweepCell(
        kind="reliability",
        policy="kdd",
        cache_pages=cache_pages,
        seed=seed,
        label=label,
        params=tuple(
            {
                "scrub_period": scrub_period,
                "dirty_threshold": dirty_threshold,
                "low_watermark": low_watermark,
                "rebuild_priority": rebuild_priority,
                **params,
            }.items()
        ),
    )
