"""High-level simulation runner: one call = one (policy, trace) cell.

This is the function behind every hit-ratio / write-traffic figure:
build a RAID array sized for the trace, build the requested policy,
stream the trace through it, and return a :class:`SimulationResult`.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, fields
from typing import Any

from ..cache.base import CacheConfig, CachePolicy, TrafficCounters
from ..cache.dedup import DedupWriteThrough
from ..cache.leavo import LeavO
from ..cache.nocache import Nossd
from ..cache.raidcache import MirroredWriteBack
from ..cache.wbpolicies import JournaledWriteBack, OrderedWriteBack
from ..cache.wec import WecWriteThrough
from ..cache.writearound import WriteAround
from ..cache.writeback import WriteBack
from ..cache.writethrough import WriteThrough
from ..core.kdd import KDD
from ..errors import ConfigError
from ..raid.array import RaidCounters, RAIDArray
from ..raid.layout import RaidLevel
from ..traces.trace import Trace

POLICIES: dict[str, type[CachePolicy]] = {
    "nossd": Nossd,
    "wt": WriteThrough,
    "wa": WriteAround,
    "wb": WriteBack,
    "leavo": LeavO,
    "kdd": KDD,
    "dedup-wt": DedupWriteThrough,
    "mwb": MirroredWriteBack,
    "owb": OrderedWriteBack,
    "jwb": JournaledWriteBack,
    "wec-wt": WecWriteThrough,
}


@dataclass(frozen=True)
class SimulationResult:
    """Everything a figure needs from one simulation run."""

    policy: str
    workload: str
    cache_pages: int
    stats: TrafficCounters
    raid: RaidCounters
    extras: dict[str, Any]

    @property
    def hit_ratio(self) -> float:
        return self.stats.hit_ratio

    @property
    def read_hit_ratio(self) -> float:
        return self.stats.read_hit_ratio

    @property
    def ssd_write_pages(self) -> int:
        return self.stats.ssd_writes

    @property
    def meta_fraction(self) -> float:
        return self.stats.meta_fraction

    def row(self) -> dict[str, Any]:
        return {
            "policy": self.policy,
            "workload": self.workload,
            "cache_pages": self.cache_pages,
            "hit_ratio": round(self.hit_ratio, 4),
            "ssd_write_pages": self.ssd_write_pages,
            "meta_fraction": round(self.meta_fraction, 4),
            "raid_reads": self.raid.reads,
            "raid_writes": self.raid.writes,
        }


def make_raid_for_trace(
    trace: Trace,
    level: RaidLevel = RaidLevel.RAID5,
    ndisks: int = 5,
    chunk_pages: int = 16,
    store_data: bool = False,
) -> RAIDArray:
    """A RAID array large enough to hold the trace's address space.

    An empty trace is valid input: ``Trace.max_page`` is 0 for it, and
    the minimum-size floor below yields a small but fully functional
    array (a few stripes), so policies can be exercised on degenerate
    traces without special-casing.
    """
    data_disks = max(1, ndisks - {RaidLevel.RAID5: 1, RaidLevel.RAID6: 2}.get(level, 0))
    if level is RaidLevel.RAID1:
        data_disks = 1
    max_page = trace.max_page if len(trace) else 0
    pages_per_disk = max(
        chunk_pages * 4, -(-(max_page + 1) // data_disks) + chunk_pages
    )
    # round up to whole stripes
    pages_per_disk = -(-pages_per_disk // chunk_pages) * chunk_pages
    return RAIDArray(
        level=level,
        ndisks=ndisks,
        chunk_pages=chunk_pages,
        pages_per_disk=pages_per_disk,
        page_size=trace.page_size,
        store_data=store_data,
    )


def build_policy(
    name: str,
    config: CacheConfig,
    raid: RAIDArray,
    **policy_kwargs: Any,
) -> CachePolicy:
    """Instantiate a policy by name ('wt', 'wa', 'wb', 'leavo', 'kdd', 'nossd')."""
    try:
        cls = POLICIES[name.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None
    if policy_kwargs:
        _check_policy_kwargs(name, cls, policy_kwargs)
    return cls(config, raid, **policy_kwargs)


def _check_policy_kwargs(
    name: str, cls: type[CachePolicy], policy_kwargs: dict[str, Any]
) -> None:
    """Reject unknown constructor kwargs with a ConfigError, not a TypeError.

    Mirrors the ``config_kwargs`` validation in :func:`simulate_policy`:
    a misspelt policy option is a configuration mistake and should name
    the policy and the offending keyword instead of leaking the raw
    ``TypeError`` from ``cls.__init__``.
    """
    try:
        params = inspect.signature(cls.__init__).parameters
    except (TypeError, ValueError):  # C-level or exotic __init__
        return
    if any(p.kind is p.VAR_KEYWORD for p in params.values()):
        return
    valid = {
        n for n, p in params.items()
        if n != "self" and p.kind in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)
    }
    bad = set(policy_kwargs) - valid
    if bad:
        options = sorted(valid - {"config", "raid"})
        raise ConfigError(
            f"policy {name!r} ({cls.__name__}) got unknown keyword(s) "
            f"{sorted(bad)}; valid options: {options}"
        )


def simulate_policy(
    name: str,
    trace: Trace,
    cache_pages: int,
    raid: RAIDArray | None = None,
    policy_kwargs: dict[str, Any] | None = None,
    vectorized: bool = False,
    **config_kwargs: Any,
) -> SimulationResult:
    """Run ``trace`` through policy ``name`` with a ``cache_pages`` cache.

    Extra keyword arguments go to :class:`CacheConfig` (e.g.
    ``mean_compression=0.12``, ``meta_partition_frac=0.0039``, ``seed=7``).
    ``vectorized=True`` enables the columnar fast path (identical
    results; see :meth:`repro.cache.base.CachePolicy.process_trace`).
    """
    valid = {f.name for f in fields(CacheConfig)}
    bad = set(config_kwargs) - valid
    if bad:
        raise ConfigError(f"unknown CacheConfig fields: {sorted(bad)}")
    config = CacheConfig(cache_pages=cache_pages, **config_kwargs)
    if raid is None:
        raid = make_raid_for_trace(trace)
    policy = build_policy(name, config, raid, **(policy_kwargs or {}))
    stats = policy.process_trace(trace, vectorized=vectorized)
    extras: dict[str, Any] = {}
    if isinstance(policy, KDD):
        extras.update(
            cleanings=policy.cleanings,
            forced_cleanings=policy.forced_cleanings,
            dez_pages=len(policy.dez_pages),
            mlog_gc_pages=policy.mlog.gc_pages_reclaimed,
        )
    if policy.ssd is not None:
        extras.update(
            write_amplification=policy.ssd.write_amplification,
            nand_erases=policy.ssd.ftl.wear.total_erases,
        )
    return SimulationResult(
        policy=name.lower(),
        workload=trace.name,
        cache_pages=cache_pages,
        stats=stats,
        raid=raid.counters,
        extras=extras,
    )
