"""Experiment harness: simulation runner, per-figure drivers, CLI."""

from .runner import (
    POLICIES,
    SimulationResult,
    build_policy,
    make_raid_for_trace,
    simulate_policy,
)
from .report import FigureResult, render_table
from .figures import ALL_FIGURES

__all__ = [
    "POLICIES",
    "SimulationResult",
    "build_policy",
    "make_raid_for_trace",
    "simulate_policy",
    "FigureResult",
    "render_table",
    "ALL_FIGURES",
]
