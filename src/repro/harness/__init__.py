"""Experiment harness: simulation runner, per-figure drivers, CLI."""

from .runner import (
    POLICIES,
    SimulationResult,
    build_policy,
    make_raid_for_trace,
    simulate_policy,
)
from .report import FigureResult, render_sweep_stats, render_table
from .sweep import (
    ResultCache,
    SweepCell,
    SweepEngine,
    SweepResult,
    SweepStats,
    run_sweep,
    sim_cell,
    trace_desc,
    workload_trace,
)
from .figures import ALL_FIGURES

__all__ = [
    "POLICIES",
    "SimulationResult",
    "build_policy",
    "make_raid_for_trace",
    "simulate_policy",
    "FigureResult",
    "render_sweep_stats",
    "render_table",
    "ResultCache",
    "SweepCell",
    "SweepEngine",
    "SweepResult",
    "SweepStats",
    "run_sweep",
    "sim_cell",
    "trace_desc",
    "workload_trace",
    "ALL_FIGURES",
]
