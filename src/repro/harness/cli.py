"""Command-line entry point: regenerate any table/figure of the paper.

Examples::

    kdd-repro list
    kdd-repro run fig6 --scale 0.01
    kdd-repro run all --jobs 4 --cache-dir .sweep-cache
    kdd-repro run fig5 --jobs 4 --cache-dir .sweep-cache --force
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from ..errors import ReproError
from .figures import ALL_FIGURES, DEFAULT_SCALE
from .sweep import SweepEngine, SweepProgress


def main(argv: list[str] | None = None) -> int:
    # Delegate `kdd-repro lint ...` wholesale to the kdd-lint CLI before
    # argparse sees the arguments (REMAINDER would swallow leading
    # options like --list-rules otherwise).
    args_in = sys.argv[1:] if argv is None else argv
    if args_in[:1] == ["lint"]:
        from ..devtools.lint.cli import main as lint_main

        return lint_main(args_in[1:])
    if args_in[:1] == ["analyze"]:
        from ..devtools.analyze.cli import main as analyze_main

        return analyze_main(args_in[1:])

    parser = argparse.ArgumentParser(
        prog="kdd-repro",
        description="Reproduce the evaluation of 'Improving RAID Performance "
        "Using an Endurable SSD Cache' (ICPP 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available tables/figures")
    run = sub.add_parser("run", help="regenerate one or more tables/figures")
    run.add_argument("figures", nargs="+", help="figure ids (or 'all')")
    run.add_argument(
        "--scale",
        type=float,
        default=DEFAULT_SCALE,
        help="workload scale factor for trace-driven figures (default %(default)s)",
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes for the sweep engine; rows are identical "
        "for any job count (default %(default)s)",
    )
    run.add_argument(
        "--cache-dir",
        default=os.environ.get("REPRO_SWEEP_CACHE"),
        help="directory for the on-disk sweep result cache; already-"
        "computed cells are skipped on re-runs (default: $REPRO_SWEEP_CACHE, "
        "else no cache)",
    )
    run.add_argument(
        "--force",
        action="store_true",
        help="recompute every cell even if cached (refreshes the cache)",
    )
    run.add_argument(
        "--progress",
        action="store_true",
        help="print one line per finished sweep cell",
    )

    sub.add_parser(
        "lint",
        help="run the kdd-lint static analyzer (determinism/taxonomy/unit "
        "invariants); same as the kdd-lint console script",
        add_help=False,
    )

    sub.add_parser(
        "analyze",
        help="whole-program analysis: layering contract, unit/RNG taint, "
        "exception-flow contracts; exports the import graph",
        add_help=False,
    )

    faults = sub.add_parser(
        "faults",
        help="fault-injection sweep: fault rate x retry policy through the "
        "timing simulator (deterministic for any --jobs)",
    )
    faults.add_argument("--policy", default="kdd",
                        help="cache policy under test (default %(default)s)")
    faults.add_argument("--rates", default="0,0.001,0.01",
                        help="comma-separated URE rates per page read "
                        "(default %(default)s)")
    faults.add_argument("--timeout-rates", default="0.005",
                        help="comma-separated timeout rates per command "
                        "(default %(default)s)")
    faults.add_argument("--retries", default="none,fixed,backoff",
                        help="comma-separated retry policies "
                        "(default %(default)s)")
    faults.add_argument("--requests", type=int, default=2000,
                        help="requests per cell (default %(default)s)")
    faults.add_argument("--universe-pages", type=int, default=1 << 14,
                        help="workload address-space size in pages "
                        "(default %(default)s)")
    faults.add_argument("--cache-pages", type=int, default=512,
                        help="cache size in pages (default %(default)s)")
    faults.add_argument("--jobs", "-j", type=int, default=1)
    faults.add_argument("--cache-dir", default=os.environ.get("REPRO_SWEEP_CACHE"))
    faults.add_argument("--force", action="store_true")
    faults.add_argument("--progress", action="store_true")
    faults.add_argument(
        "--events-out", default=None, metavar="PATH",
        help="write the deterministic vulnerability-window demo event log "
        "(fresh-stripe URE reconstructs; stale-stripe URE degrades until "
        "the cleaner repairs parity) as JSON",
    )
    faults.add_argument(
        "--op-trace", default=None, metavar="PATH",
        help="run one derandomized fault-injected replay with op-level "
        "instrumentation and write the per-op trace (device, kind, "
        "submitted/start/finish, queue delay, residual fault) as JSONL",
    )

    rel = sub.add_parser(
        "reliability",
        help="sweep cleaner/scrubber/rebuild knobs, measure the "
        "vulnerability-window exposure, and cross-check the Monte-Carlo "
        "data-loss estimate against the analytic Markov MTTDL",
    )
    rel.add_argument("--scrub-periods", default="0,25",
                     help="comma-separated scrub periods in accesses, "
                     "0 = scrubbing off (default %(default)s)")
    rel.add_argument("--dirty-thresholds", default="0.35,0.75",
                     help="comma-separated cleaner dirty thresholds; the "
                     "low watermark follows at half the threshold "
                     "(default %(default)s)")
    rel.add_argument("--rebuild-priorities", default="1.0",
                     help="comma-separated rebuild-rate multipliers "
                     "(default %(default)s)")
    rel.add_argument("--accesses", type=int, default=2000,
                     help="measured workload length per cell "
                     "(default %(default)s)")
    rel.add_argument("--universe-pages", type=int, default=256,
                     help="workload address-space size in pages "
                     "(default %(default)s)")
    rel.add_argument("--cache-pages", type=int, default=64,
                     help="cache size in pages (default %(default)s)")
    rel.add_argument("--trials", type=int, default=4000,
                     help="Monte-Carlo trials per cell (default %(default)s)")
    rel.add_argument("--iops", type=float, default=2.0e4,
                     help="IOPS figure mapping accesses to wall time "
                     "(default %(default)s)")
    rel.add_argument("--jobs", "-j", type=int, default=1)
    rel.add_argument("--cache-dir", default=os.environ.get("REPRO_SWEEP_CACHE"))
    rel.add_argument("--force", action="store_true")
    rel.add_argument("--progress", action="store_true")
    rel.add_argument(
        "--report-out", default=None, metavar="PATH",
        help="write the full nested report (exposure / scrub / params / "
        "markov / monte_carlo blocks per cell) as JSON",
    )

    serve = sub.add_parser(
        "serve",
        help="multi-tenant serving sweep: compose N tenant streams onto one "
        "array and compare static vs dynamic per-tenant cache partitioning "
        "(deterministic for any --jobs)",
    )
    serve.add_argument("--policy", default="wt",
                       help="cache policy per tenant (default %(default)s; "
                       "dynamic partitioning needs a clean-line policy)")
    serve.add_argument("--tenants", type=int, default=8,
                       help="tenant streams in the fleet (default %(default)s)")
    serve.add_argument("--cache-pages", type=int, default=2048,
                       help="total SSD cache pages split across tenants "
                       "(default %(default)s)")
    serve.add_argument("--universe-pages", type=int, default=2048,
                       help="per-tenant address-space size in pages "
                       "(default %(default)s)")
    serve.add_argument("--base-iops", type=float, default=50.0,
                       help="per-tenant mean request rate (default %(default)s)")
    serve.add_argument("--duration", type=float, default=1200.0,
                       help="composed-workload duration in seconds "
                       "(default %(default)s)")
    serve.add_argument("--max-requests", type=int, default=None,
                       help="optional hard cap on composed requests")
    serve.add_argument("--epoch", type=float, default=60.0,
                       help="composition epoch in seconds (default %(default)s)")
    serve.add_argument("--diurnal-amplitude", type=float, default=0.9,
                       help="diurnal intensity swing in [0,1); phases are "
                       "spread over the fleet so the hot set rotates "
                       "(default %(default)s)")
    serve.add_argument("--diurnal-period", type=float, default=1200.0,
                       help="diurnal period in seconds (default %(default)s)")
    serve.add_argument("--burst-prob", type=float, default=0.0,
                       help="per-epoch burst probability (default %(default)s)")
    serve.add_argument("--burst-factor", type=float, default=4.0,
                       help="rate multiplier in burst epochs (default %(default)s)")
    serve.add_argument("--plans", default="static,dynamic",
                       help="comma-separated partition plans to compare "
                       "(default %(default)s)")
    serve.add_argument("--realloc-period", type=int, default=2000,
                       help="accesses between dynamic reallocation passes "
                       "(default %(default)s)")
    serve.add_argument("--min-fraction", type=float, default=0.05,
                       help="per-tenant quota floor as a cache fraction "
                       "(default %(default)s)")
    serve.add_argument("--ewma-alpha", type=float, default=0.5,
                       help="hit-density EWMA smoothing (default %(default)s)")
    serve.add_argument("--ways", type=int, default=16,
                       help="cache associativity per tenant directory "
                       "(default %(default)s)")
    serve.add_argument("--flash", action="store_true",
                       help="attach a per-tenant FTL-backed flash model "
                       "(slower; adds per-tenant WAF columns)")
    serve.add_argument("--per-tenant", action="store_true",
                       help="also print the per-tenant fairness/endurance table")
    serve.add_argument("--seed", type=int, default=0,
                       help="composer seed, shared by every plan so static "
                       "and dynamic see the identical composed workload "
                       "(default %(default)s)")
    serve.add_argument("--jobs", "-j", type=int, default=1)
    serve.add_argument("--cache-dir", default=os.environ.get("REPRO_SWEEP_CACHE"))
    serve.add_argument("--force", action="store_true")
    serve.add_argument("--progress", action="store_true")
    serve.add_argument(
        "--report-out", default=None, metavar="PATH",
        help="write the full report (aggregate + per-tenant rows per plan) "
        "as JSON",
    )

    bench = sub.add_parser(
        "bench",
        help="run the scalar-vs-vectorized performance benches and track "
        "the BENCH_<fig>.json baselines at the repo root",
    )
    bench.add_argument(
        "figures", nargs="*",
        help="bench ids (fig4..fig10, reliability; default: all)",
    )
    bench.add_argument(
        "--scale", type=float, default=None,
        help="workload scale for the trace-driven benches "
        "(default: the pinned bench scale)",
    )
    bench.add_argument(
        "--out-dir", default=".",
        help="directory holding the BENCH_<fig>.json baselines "
        "(default: current directory)",
    )
    bench.add_argument(
        "--check", action="store_true",
        help="CI mode: compare against the committed baselines without "
        "rewriting them; fail on checksum drift, missing baselines, or "
        "a speedup regression beyond --threshold",
    )
    bench.add_argument(
        "--threshold", type=float, default=None,
        help="allowed fractional drop in the vectorized/scalar speedup "
        "ratio before failing (default 0.20)",
    )
    bench.add_argument(
        "--artifact-dir", default=None,
        help="also write every fresh report here (works with --check; "
        "CI uploads this directory)",
    )

    simulate = sub.add_parser(
        "simulate", help="run one policy over one workload and print the row"
    )
    simulate.add_argument("policy", help="nossd/wa/wt/wb/leavo/kdd")
    simulate.add_argument(
        "--workload", default="Fin1",
        help="Fin1/Fin2/Hm0/Web0, or a path to an SPC (.spc) / MSR (.csv) file",
    )
    simulate.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                          help="scale for the named synthetic workloads")
    simulate.add_argument("--cache-fraction", type=float, default=0.10,
                          help="cache size as a fraction of the unique footprint")
    simulate.add_argument("--cache-pages", type=int, default=None,
                          help="explicit cache size (overrides --cache-fraction)")
    simulate.add_argument("--compression", type=float, default=0.25,
                          help="mean delta compression ratio (KDD)")
    simulate.add_argument("--admission", default="always",
                          choices=["always", "larc", "count"])
    simulate.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.command == "list":
        for name, fn in ALL_FIGURES.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:8s} {doc}")
        return 0

    if args.command == "simulate":
        return _simulate_command(args)

    if args.command == "bench":
        return _bench_command(args)

    if args.command == "faults":
        return _faults_command(args)

    if args.command == "reliability":
        return _reliability_command(args)

    if args.command == "serve":
        return _serve_command(args)

    names = list(ALL_FIGURES) if "all" in args.figures else args.figures
    unknown = [n for n in names if n not in ALL_FIGURES]
    if unknown:
        print(f"unknown figures: {unknown}; try 'kdd-repro list'", file=sys.stderr)
        return 2

    engine = SweepEngine(
        jobs=args.jobs,
        cache=args.cache_dir,
        force=args.force,
        progress=_print_progress if args.progress else None,
    )
    for name in names:
        fn = ALL_FIGURES[name]
        kwargs = {"engine": engine}
        # trace-driven figures accept scale/seed; timing figures accept seed
        import inspect

        params = inspect.signature(fn).parameters
        if "scale" in params:
            kwargs["scale"] = args.scale
        if "seed" in params:
            kwargs["seed"] = args.seed
        start = time.time()
        result = fn(**kwargs)
        print(result.render())
        print(f"({name} finished in {time.time() - start:.1f}s)\n")
    return 0


def _print_progress(tick: SweepProgress) -> None:
    cell = tick.cell
    what = cell.label or cell.policy or cell.kind
    source = "cache" if tick.from_cache else f"{tick.seconds:.2f}s"
    print(
        f"  [{tick.done}/{tick.total}] {cell.kind}:{what} "
        f"cache_pages={cell.cache_pages} ({source})",
        file=sys.stderr,
    )


def _load_workload(name: str, scale: float):
    from ..traces import make_workload, parse_msr, parse_spc, ALL_WORKLOADS

    if name in ALL_WORKLOADS:
        return make_workload(name, scale=scale)
    if name.endswith(".spc"):
        return parse_spc(name, name=name)
    if name.endswith(".csv"):
        return parse_msr(name, name=name)
    raise SystemExit(
        f"unknown workload {name!r}: use one of {ALL_WORKLOADS} "
        "or a path ending in .spc/.csv"
    )


def _parse_rates(text: str, what: str) -> list[float]:
    try:
        return [float(part) for part in text.split(",") if part.strip() != ""]
    except ValueError:
        raise SystemExit(f"bad {what} list {text!r}: expected comma-separated "
                         "numbers") from None


def _faults_command(args) -> int:
    import json

    from ..faults import RETRY_POLICIES, demo_event_log
    from .faultsweep import demo_op_trace, faults_cell
    from .report import render_table
    from .sweep import trace_desc

    retries = [r.strip() for r in args.retries.split(",") if r.strip()]
    unknown = [r for r in retries if r not in RETRY_POLICIES]
    if unknown:
        raise SystemExit(f"unknown retry policies {unknown}; "
                         f"choose from {sorted(RETRY_POLICIES)}")
    trace = trace_desc(
        "uniform",
        n_requests=args.requests,
        universe_pages=args.universe_pages,
        read_ratio=0.6,
        seed=0,
        name="faults-uniform",
    )
    cells = [
        faults_cell(
            args.policy,
            trace,
            args.cache_pages,
            ure_rate=rate,
            timeout_rate=timeout_rate,
            retry=retry,
            track_exposure=True,
        )
        for rate in _parse_rates(args.rates, "--rates")
        for timeout_rate in _parse_rates(args.timeout_rates, "--timeout-rates")
        for retry in retries
    ]
    engine = SweepEngine(
        jobs=args.jobs,
        cache=args.cache_dir,
        force=args.force,
        progress=_print_progress if args.progress else None,
    )
    start = time.time()
    result = engine.run(cells)
    # The nested exposure block (shared shape with the reliability
    # report) is summarised into flat columns for the table.
    table_rows = []
    for row in result.rows:
        flat = dict(row)
        exposure = flat.pop("exposure", None)
        if exposure:
            flat["exposure_frac"] = exposure["exposure_fraction"]
            flat["mean_stale"] = exposure["mean_stale_stripes"]
            flat["mean_window"] = exposure["mean_window_accesses"]
        table_rows.append(flat)
    print(render_table(table_rows))
    print(f"({len(cells)} cells in {time.time() - start:.1f}s, "
          f"jobs={args.jobs})")
    if args.events_out:
        events = demo_event_log()
        with open(args.events_out, "w") as fh:
            json.dump(events, fh, indent=2)
        print(f"wrote {len(events)} demo events to {args.events_out}")
    if args.op_trace:
        summary = demo_op_trace(args.op_trace)
        print(f"wrote {summary['ops_written']} op records to {args.op_trace} "
              f"({summary['requests']} requests, "
              f"mean {summary['mean_response_ms']:.3f} ms)")
    return 0


def _reliability_command(args) -> int:
    import json

    from .relsweep import reliability_cell
    from .report import render_table

    cells = [
        reliability_cell(
            cache_pages=args.cache_pages,
            scrub_period=period,
            dirty_threshold=dirty,
            low_watermark=dirty / 2.0,
            rebuild_priority=priority,
            accesses=args.accesses,
            universe_pages=args.universe_pages,
            trials=args.trials,
            iops=args.iops,
            label=f"scrub={period} dirty={dirty} prio={priority}",
        )
        for period in (int(p) for p in
                       _parse_rates(args.scrub_periods, "--scrub-periods"))
        for dirty in _parse_rates(args.dirty_thresholds, "--dirty-thresholds")
        for priority in _parse_rates(args.rebuild_priorities,
                                     "--rebuild-priorities")
    ]
    engine = SweepEngine(
        jobs=args.jobs,
        cache=args.cache_dir,
        force=args.force,
        progress=_print_progress if args.progress else None,
    )
    start = time.time()
    result = engine.run(cells)
    rows = [dict(r) for r in result.rows]
    table = [
        {
            "label": row["label"],
            "exposure_frac": row["exposure"]["exposure_fraction"],
            "mean_stale": row["exposure"]["mean_stale_stripes"],
            "mean_window": row["exposure"]["mean_window_accesses"],
            "parity_repaired": row["scrub"]["parity_repaired"],
            "mttdl_markov_h": f"{row['markov']['mttdl_h']:.0f}",
            "p_markov": f"{row['markov']['p_loss']:.4f}",
            "p_mc": f"{row['monte_carlo']['p_loss']:.4f}",
            "delta": f"{row['p_loss_delta']:.4f}",
            "tolerance": f"{row['tolerance']:.4f}",
            "agrees": row["agrees"],
            "stripes_lost": row["monte_carlo"]["mean_stripes_lost"],
        }
        for row in rows
    ]
    print(render_table(table))
    print(f"({len(cells)} cells in {time.time() - start:.1f}s, "
          f"jobs={args.jobs})")
    if args.report_out:
        with open(args.report_out, "w") as fh:
            json.dump(rows, fh, indent=2, sort_keys=True)
        print(f"wrote {len(rows)} reliability rows to {args.report_out}")
    disagree = [row["label"] for row in rows if not row["agrees"]]
    if disagree:
        print("Monte-Carlo / Markov cross-check FAILED for: "
              + ", ".join(disagree), file=sys.stderr)
        return 1
    return 0


def _serve_command(args) -> int:
    import json

    from .report import render_table
    from .servesweep import serve_cell

    plans = [p.strip() for p in args.plans.split(",") if p.strip()]
    unknown = [p for p in plans if p not in ("static", "dynamic")]
    if unknown:
        raise SystemExit(f"unknown plans {unknown}; choose from "
                         "['static', 'dynamic']")
    want_tenants = args.per_tenant or bool(args.report_out)
    cells = [
        serve_cell(
            policy=args.policy,
            cache_pages=args.cache_pages,
            n_tenants=args.tenants,
            dynamic=(plan == "dynamic"),
            universe_pages=args.universe_pages,
            base_iops=args.base_iops,
            diurnal_amplitude=args.diurnal_amplitude,
            diurnal_period_s=args.diurnal_period,
            burst_prob=args.burst_prob,
            burst_factor=args.burst_factor,
            duration_s=args.duration,
            **({"max_requests": args.max_requests}
               if args.max_requests is not None else {}),
            epoch_s=args.epoch,
            realloc_period=args.realloc_period,
            min_fraction=args.min_fraction,
            ewma_alpha=args.ewma_alpha,
            ways=args.ways,
            flash_model=args.flash,
            tenant_rows=want_tenants,
            seed=args.seed,
            label=plan,
        )
        for plan in plans
    ]
    engine = SweepEngine(
        jobs=args.jobs,
        cache=args.cache_dir,
        force=args.force,
        progress=_print_progress if args.progress else None,
    )
    start = time.time()
    result = engine.run(cells)
    rows = [dict(r) for r in result.rows]
    table = [{k: v for k, v in row.items() if k != "per_tenant"}
             for row in rows]
    print(render_table(table))
    if args.per_tenant:
        for row in rows:
            tenants = row.get("per_tenant", [])
            print(f"\nper-tenant ({row['plan']}, first {min(len(tenants), 16)} "
                  f"of {len(tenants)}):")
            print(render_table(tenants[:16]))
    print(f"({len(cells)} cells in {time.time() - start:.1f}s, "
          f"jobs={args.jobs})")
    if args.report_out:
        with open(args.report_out, "w") as fh:
            json.dump(rows, fh, indent=2, sort_keys=True)
        print(f"wrote {len(rows)} serve rows to {args.report_out}")
    return 0


def _bench_command(args) -> int:
    from .bench import BENCH_SCALE, BENCH_THRESHOLD, run_benches

    try:
        return run_benches(
            figures=args.figures or None,
            out_dir=args.out_dir,
            scale=args.scale if args.scale is not None else BENCH_SCALE,
            threshold=args.threshold
            if args.threshold is not None else BENCH_THRESHOLD,
            check_only=args.check,
            artifact_dir=args.artifact_dir,
        )
    except ReproError as exc:
        print(f"kdd-repro bench: {exc}", file=sys.stderr)
        return 2


def _simulate_command(args) -> int:
    from .report import render_table
    from .runner import simulate_policy

    trace = _load_workload(args.workload, args.scale)
    stats = trace.stats()
    cache_pages = args.cache_pages or max(64, int(stats.unique_pages * args.cache_fraction))
    print(
        f"workload {stats.name}: {stats.requests:,} page accesses, "
        f"{stats.unique_pages:,} unique pages, read ratio {stats.read_ratio:.2f}; "
        f"cache {cache_pages:,} pages"
    )
    start = time.time()
    result = simulate_policy(
        args.policy,
        trace,
        cache_pages,
        mean_compression=args.compression,
        admission=args.admission,
        seed=args.seed,
    )
    row = result.row()
    row.update({k: v for k, v in result.extras.items()})
    print(render_table([row]))
    print(f"(finished in {time.time() - start:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
