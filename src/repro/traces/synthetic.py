"""Synthetic workload generators.

Two families:

* Simple generators (:func:`uniform_workload`, :func:`sequential_workload`,
  :func:`zipf_workload`) used by unit tests and the FIO-style closed-loop
  benchmark (Section IV-B3 of the paper: Zipfian writes, alpha = 1.0001).

* A calibrated generator (:func:`footprint_workload`) that produces a trace
  matching target *footprint* statistics — unique read pages, unique write
  pages, their overlap, request counts and read ratio — which
  :mod:`repro.traces.workloads` uses to build stand-ins for the paper's
  Fin1/Fin2/Hm0/Web0 traces (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .record import empty_records
from .trace import Trace


def _zipf_cdf(n: int, alpha: float) -> np.ndarray:
    """Cumulative Zipf(alpha) distribution over ranks 1..n."""
    weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), alpha)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return cdf


def zipf_ranks(rng: np.random.Generator, n_samples: int, universe: int, alpha: float) -> np.ndarray:
    """Sample ``n_samples`` ranks in ``[0, universe)`` with Zipf(alpha) popularity."""
    if universe <= 0:
        raise ConfigError("universe must be positive")
    if alpha < 0:
        raise ConfigError("zipf alpha must be >= 0")
    if alpha == 0.0:
        return rng.integers(0, universe, size=n_samples)
    cdf = _zipf_cdf(universe, alpha)
    return np.searchsorted(cdf, rng.random(n_samples), side="left").astype(np.int64)


def _arrival_times(rng: np.random.Generator, n: int, iops: float) -> np.ndarray:
    """Poisson arrival process at the given mean request rate."""
    if iops <= 0:
        raise ConfigError("iops must be positive")
    gaps = rng.exponential(1.0 / iops, size=n)
    return np.cumsum(gaps)


def uniform_workload(
    n_requests: int,
    universe_pages: int,
    read_ratio: float = 0.5,
    iops: float = 1000.0,
    seed: int = 0,
    name: str = "uniform",
) -> Trace:
    """Uniformly random single-page accesses over ``universe_pages``."""
    rng = np.random.default_rng(seed)
    rec = empty_records(n_requests)
    rec["time"] = _arrival_times(rng, n_requests, iops)
    rec["lba"] = rng.integers(0, universe_pages, size=n_requests).astype(np.uint64)
    rec["npages"] = 1
    rec["is_read"] = rng.random(n_requests) < read_ratio
    return Trace(rec, name=name)


def sequential_workload(
    n_requests: int,
    start_page: int = 0,
    npages_per_request: int = 8,
    read_ratio: float = 0.0,
    iops: float = 1000.0,
    seed: int = 0,
    name: str = "sequential",
) -> Trace:
    """A sequential scan, the classic full-stripe-write friendly pattern."""
    rng = np.random.default_rng(seed)
    rec = empty_records(n_requests)
    rec["time"] = _arrival_times(rng, n_requests, iops)
    rec["lba"] = (
        start_page + np.arange(n_requests, dtype=np.uint64) * npages_per_request
    )
    rec["npages"] = npages_per_request
    rec["is_read"] = rng.random(n_requests) < read_ratio
    return Trace(rec, name=name)


def zipf_workload(
    n_requests: int,
    universe_pages: int,
    alpha: float = 1.0001,
    read_ratio: float = 0.0,
    iops: float = 5000.0,
    seed: int = 0,
    name: str = "zipf",
) -> Trace:
    """FIO-style Zipfian workload (Section IV-B3).

    The paper's closed-loop benchmark writes a 1.6 GB working set out of a
    4 GB file with ``zipf`` distribution, alpha = 1.0001, 4 KB blocks, and
    read rates of 0/25/50/75 %.  Page popularity ranks are scattered over
    the address space so hot pages are not physically adjacent.
    """
    rng = np.random.default_rng(seed)
    ranks = zipf_ranks(rng, n_requests, universe_pages, alpha)
    page_of_rank = rng.permutation(universe_pages).astype(np.uint64)
    rec = empty_records(n_requests)
    rec["time"] = _arrival_times(rng, n_requests, iops)
    rec["lba"] = page_of_rank[ranks]
    rec["npages"] = 1
    rec["is_read"] = rng.random(n_requests) < read_ratio
    return Trace(rec, name=name)


@dataclass(frozen=True)
class FootprintSpec:
    """Target characteristics for a calibrated synthetic trace.

    Counts are in pages/requests (not thousands).  ``read_only_pages`` +
    ``shared_pages`` is the unique read footprint; ``write_only_pages`` +
    ``shared_pages`` is the unique write footprint (cf. Table I).
    """

    name: str
    read_only_pages: int
    write_only_pages: int
    shared_pages: int
    read_requests: int
    write_requests: int
    read_alpha: float = 0.9
    write_alpha: float = 0.9
    run_length: int = 16
    iops: float = 3000.0

    def __post_init__(self) -> None:
        if min(self.read_only_pages, self.write_only_pages, self.shared_pages) < 0:
            raise ConfigError("footprint page counts must be non-negative")
        if self.read_requests < self.unique_read_pages:
            raise ConfigError(
                f"{self.name}: read requests ({self.read_requests}) cannot cover "
                f"the read footprint ({self.unique_read_pages})"
            )
        if self.write_requests < self.unique_write_pages:
            raise ConfigError(
                f"{self.name}: write requests ({self.write_requests}) cannot cover "
                f"the write footprint ({self.unique_write_pages})"
            )

    @property
    def unique_read_pages(self) -> int:
        return self.read_only_pages + self.shared_pages

    @property
    def unique_write_pages(self) -> int:
        return self.write_only_pages + self.shared_pages

    @property
    def unique_pages(self) -> int:
        return self.read_only_pages + self.shared_pages + self.write_only_pages

    def scaled(self, factor: float) -> "FootprintSpec":
        """Uniformly scale footprint and request counts (for fast runs)."""
        if factor <= 0:
            raise ConfigError("scale factor must be positive")

        def s(x: int) -> int:
            return max(1, int(round(x * factor)))

        return FootprintSpec(
            name=self.name,
            read_only_pages=s(self.read_only_pages),
            write_only_pages=s(self.write_only_pages),
            shared_pages=s(self.shared_pages),
            read_requests=s(self.read_requests),
            write_requests=s(self.write_requests),
            read_alpha=self.read_alpha,
            write_alpha=self.write_alpha,
            run_length=self.run_length,
            iops=self.iops,
        )


def _clustered_layout(
    rng: np.random.Generator, n_pages: int, run_length: int
) -> np.ndarray:
    """Map footprint indices 0..n-1 to LBAs laid out in contiguous runs.

    Runs of ``run_length`` pages are placed in a shuffled order with random
    gaps, giving the trace stripe-level spatial locality (consecutive
    footprint indices usually share a RAID stripe) without making the whole
    footprint one sequential extent.
    """
    n_runs = -(-n_pages // run_length)
    # Each run occupies run_length pages plus a random gap of 0..3 runs.
    gaps = rng.integers(0, 4, size=n_runs)
    run_starts = np.cumsum((gaps + 1) * run_length) - run_length
    order = rng.permutation(n_runs)
    lbas = np.empty(n_pages, dtype=np.uint64)
    for i in range(n_runs):
        start = i * run_length
        stop = min(start + run_length, n_pages)
        base = run_starts[order[i]]
        lbas[start:stop] = base + np.arange(stop - start, dtype=np.uint64)
    return lbas


def _cover_missing(
    rng: np.random.Generator, samples: np.ndarray, universe: int
) -> np.ndarray:
    """Force every value in [0, universe) to appear at least once.

    Pages the Zipf sampler never hit are written over uniformly random
    positions, preserving the overall mixing of the stream while meeting
    the unique-page target exactly.
    """
    counts = np.bincount(samples, minlength=universe)
    missing = np.flatnonzero(counts == 0)
    if missing.size == 0:
        return samples
    if missing.size > samples.size - np.count_nonzero(counts):
        raise ConfigError("not enough requests to cover the footprint")
    samples = samples.copy()
    # Overwrite positions holding the most-duplicated pages first so no
    # page's count ever drops to zero (which would reopen a gap).
    order = np.argsort(-counts[samples], kind="stable")
    pos_iter = iter(order)
    for page in rng.permutation(missing):
        for pos in pos_iter:
            victim = samples[pos]
            if counts[victim] >= 2:
                counts[victim] -= 1
                counts[page] += 1
                samples[pos] = page
                break
        else:  # pragma: no cover - guarded by the size check above
            raise ConfigError("not enough requests to cover the footprint")
    return samples


def footprint_workload(spec: FootprintSpec, seed: int = 0) -> Trace:
    """Generate a trace matching ``spec`` exactly on footprint statistics.

    Reads draw Zipf(``read_alpha``) over the read footprint, writes draw
    Zipf(``write_alpha``) over the write footprint; the two footprints
    overlap in ``shared_pages`` pages.  Every footprint page is touched at
    least once, so :meth:`Trace.stats` reproduces the spec's Table I row.
    """
    rng = np.random.default_rng(seed)

    layout = _clustered_layout(rng, spec.unique_pages, spec.run_length)
    # Footprint index space: [0, shared) shared, then read-only, then write-only.
    shared = np.arange(spec.shared_pages, dtype=np.int64)
    read_idx = np.concatenate(
        [shared, spec.shared_pages + np.arange(spec.read_only_pages, dtype=np.int64)]
    )
    wo_base = spec.shared_pages + spec.read_only_pages
    write_idx = np.concatenate(
        [shared, wo_base + np.arange(spec.write_only_pages, dtype=np.int64)]
    )
    # Popularity rank -> footprint member, independently shuffled per op
    # so read-hot and write-hot sets differ (as in real mixed workloads).
    read_members = rng.permutation(read_idx)
    write_members = rng.permutation(write_idx)

    def _op_pages(n_req: int, members: np.ndarray, alpha: float) -> np.ndarray:
        if n_req == 0 or len(members) == 0:
            return np.empty(0, dtype=np.uint64)
        ranks = zipf_ranks(rng, n_req, len(members), alpha)
        ranks = _cover_missing(rng, ranks, len(members))
        return layout[members[ranks]]

    r_pages = _op_pages(spec.read_requests, read_members, spec.read_alpha)
    w_pages = _op_pages(spec.write_requests, write_members, spec.write_alpha)

    n = spec.read_requests + spec.write_requests
    is_read = np.zeros(n, dtype=bool)
    is_read[rng.choice(n, size=spec.read_requests, replace=False)] = True

    rec = empty_records(n)
    rec["time"] = _arrival_times(rng, n, spec.iops)
    rec["npages"] = 1
    rec["is_read"] = is_read
    lba = np.empty(n, dtype=np.uint64)
    lba[is_read] = r_pages
    lba[~is_read] = w_pages
    rec["lba"] = lba
    return Trace(rec, name=spec.name)
