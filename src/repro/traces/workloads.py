"""Calibrated stand-ins for the paper's four evaluation traces.

The paper evaluates on two SPC financial traces (Fin1, Fin2) and two MSR
Cambridge volumes (Hm0, Web0).  Those raw traces are not distributable
with this repository, so we generate synthetic equivalents whose
footprint statistics match Table I exactly (unique read/write pages,
overlap, request counts, read ratio) and whose temporal locality is set
per-trace:

* **Fin1** — OLTP, write dominant (read ratio 0.19), moderate locality.
* **Fin2** — OLTP, read dominant (0.80), strong read locality
  (13 accesses per unique read page).
* **Hm0** — hardware-monitoring server, write dominant (0.33), strong
  write locality (14 accesses per unique write page).
* **Web0** — web server, read dominant (0.59) with a *much* higher write
  temporal locality than read locality (17.5 vs 2.4 accesses/page); the
  paper calls this out as the reason KDD can beat WT's hit ratio on
  small caches (Section IV-A3).

Real SPC/MSR files can be substituted via :mod:`repro.traces.spc` and
:mod:`repro.traces.msr` without touching any other code.
"""

from __future__ import annotations

from ..errors import ConfigError
from .synthetic import FootprintSpec, footprint_workload
from .trace import Trace

#: Table I targets, in units of 1000 pages / 1000 requests.
TABLE1_SPECS: dict[str, FootprintSpec] = {
    "Fin1": FootprintSpec(
        name="Fin1",
        shared_pages=304_000,
        read_only_pages=27_000,
        write_only_pages=662_000,
        read_requests=1_339_000,
        write_requests=5_628_000,
        read_alpha=0.9,
        write_alpha=1.0,
        iops=4000.0,
    ),
    "Fin2": FootprintSpec(
        name="Fin2",
        shared_pages=78_000,
        read_only_pages=193_000,
        write_only_pages=134_000,
        read_requests=3_562_000,
        write_requests=917_000,
        read_alpha=1.1,
        write_alpha=0.9,
        iops=3500.0,
    ),
    "Hm0": FootprintSpec(
        name="Hm0",
        shared_pages=307_000,
        read_only_pages=181_000,
        write_only_pages=121_000,
        read_requests=2_880_000,
        write_requests=5_992_000,
        read_alpha=0.9,
        write_alpha=1.1,
        iops=5000.0,
    ),
    "Web0": FootprintSpec(
        name="Web0",
        shared_pages=153_000,
        read_only_pages=1_731_000,
        write_only_pages=29_000,
        read_requests=4_575_000,
        write_requests=3_186_000,
        read_alpha=0.6,
        write_alpha=1.2,
        iops=4500.0,
    ),
}

#: Traces the paper groups as write dominant / read dominant (Sec. IV-A3).
WRITE_DOMINANT = ("Fin1", "Hm0")
READ_DOMINANT = ("Fin2", "Web0")
ALL_WORKLOADS = WRITE_DOMINANT + READ_DOMINANT


def workload_spec(name: str, scale: float = 1.0) -> FootprintSpec:
    """The (optionally scaled) calibration spec for a named workload."""
    try:
        spec = TABLE1_SPECS[name]
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r}; choose from {sorted(TABLE1_SPECS)}"
        ) from None
    return spec if scale == 1.0 else spec.scaled(scale)


def make_workload(name: str, scale: float = 1.0, seed: int | None = None) -> Trace:
    """Generate a calibrated trace for ``name`` at the given scale.

    ``scale`` shrinks both footprint and request counts uniformly, which
    preserves accesses-per-page (temporal locality) so cache-behaviour
    shapes carry over; cache sizes must be scaled by the same factor.
    The default seed is derived from the workload name so each trace is
    reproducible but distinct.
    """
    spec = workload_spec(name, scale)
    if seed is None:
        seed = abs(hash(name)) % (2**31)
        seed = {"Fin1": 101, "Fin2": 102, "Hm0": 103, "Web0": 104}.get(name, seed)
    return footprint_workload(spec, seed=seed)
