"""Locality analysis for traces: reuse distance, working sets, hit bounds.

These tools quantify the two localities the paper's argument rests on:

* *temporal locality* — reuse distances bound what any LRU-class cache
  can achieve (an access with LRU stack distance d hits iff the cache
  holds more than d pages), which is how we sanity-check the calibrated
  workloads against the paper's hit-ratio ranges;
* *write locality* — the share of writes that are re-writes of recently
  written pages is exactly the population KDD can turn into deltas.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .trace import Trace


def lru_stack_distances(pages: np.ndarray) -> np.ndarray:
    """LRU stack distance per access (-1 for cold misses).

    Implemented with a Fenwick tree over last-access positions:
    O(n log n) overall, fine for multi-million-access traces.
    """
    n = len(pages)
    out = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return out
    tree = np.zeros(n + 1, dtype=np.int64)

    def add(i: int, v: int) -> None:
        i += 1
        while i <= n:
            tree[i] += v
            i += i & (-i)

    def prefix(i: int) -> int:
        i += 1
        s = 0
        while i > 0:
            s += tree[i]
            i -= i & (-i)
        return s

    last_pos: dict[int, int] = {}
    for i, page in enumerate(pages.tolist()):
        prev = last_pos.get(page)
        if prev is not None:
            # distinct pages touched strictly after prev = distance
            out[i] = prefix(i - 1) - prefix(prev)
            add(prev, -1)
        last_pos[page] = i
        add(i, 1)
    return out


@dataclass(frozen=True)
class ReuseProfile:
    """Summary of a trace's reuse behaviour."""

    accesses: int
    cold_misses: int
    distances: np.ndarray  # reuses only (cold misses excluded)

    @property
    def reuse_fraction(self) -> float:
        return 1.0 - self.cold_misses / self.accesses if self.accesses else 0.0

    def hit_ratio_for_cache(self, cache_pages: int) -> float:
        """Best-case LRU hit ratio for a fully-associative cache."""
        if self.accesses == 0:
            return 0.0
        hits = int((self.distances < cache_pages).sum())
        return hits / self.accesses

    def mincache_for_hit_ratio(self, target: float) -> int:
        """Smallest LRU cache achieving ``target`` hit ratio (pages)."""
        if not 0.0 <= target <= 1.0:
            raise ConfigError("target hit ratio must be in [0, 1]")
        if self.accesses == 0 or len(self.distances) == 0:
            return 0
        needed_hits = int(np.ceil(target * self.accesses))
        if needed_hits > len(self.distances):
            raise ConfigError(
                f"target {target} exceeds the trace's max hit ratio "
                f"{len(self.distances) / self.accesses:.3f}"
            )
        if needed_hits == 0:
            return 0
        return int(np.sort(self.distances)[needed_hits - 1]) + 1


def reuse_profile(trace: Trace, writes_only: bool = False) -> ReuseProfile:
    """Reuse-distance profile of a trace at page granularity."""
    pages, is_read = trace.page_accesses()
    if writes_only:
        pages = pages[~is_read]
    dist = lru_stack_distances(pages)
    reuses = dist[dist >= 0]
    return ReuseProfile(
        accesses=len(pages),
        cold_misses=int((dist < 0).sum()),
        distances=reuses,
    )


def working_set_sizes(trace: Trace, window: float) -> np.ndarray:
    """Distinct pages touched per fixed time window (WSS over time)."""
    if window <= 0:
        raise ConfigError("window must be positive")
    pages, _ = trace.page_accesses()
    npages = trace.records["npages"].astype(np.int64)
    times = np.repeat(trace.records["time"], npages)
    if len(times) == 0:
        return np.zeros(0, dtype=np.int64)
    # floor_divide, not a truncating cast: times are non-decreasing so
    # the offsets are non-negative and the two agree, but truncation
    # toward zero would silently mis-bin if that precondition ever
    # weakened (RPR302).
    bins = np.floor_divide(times - times[0], window).astype(np.int64)
    out = np.zeros(int(bins[-1]) + 1, dtype=np.int64)
    for b in range(len(out)):
        mask = bins == b
        out[b] = len(np.unique(pages[mask]))
    return out


def write_hit_potential(trace: Trace, cache_pages: int) -> float:
    """Fraction of writes that hit an LRU cache of ``cache_pages``.

    This is the population KDD converts into single-member-write
    deltas — the direct predictor of its advantage on a workload.
    """
    pages, is_read = trace.page_accesses()
    lru: OrderedDict[int, None] = OrderedDict()
    write_hits = 0
    writes = 0
    for page, rd in zip(pages.tolist(), is_read.tolist()):
        if not rd:
            writes += 1
            if page in lru:
                write_hits += 1
        if page in lru:
            lru.move_to_end(page)
        else:
            lru[page] = None
            if len(lru) > cache_pages:
                lru.popitem(last=False)
    return write_hits / writes if writes else 0.0
