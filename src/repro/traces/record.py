"""I/O request record layout.

Traces are stored as numpy structured arrays for compactness and fast
vectorised statistics; individual records are exposed through the light
:class:`IORequest` view used by the simulators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from ..errors import ConfigError

#: Structured dtype of one block-level I/O request.
#:
#: ``time``   – arrival time in seconds from trace start
#: ``lba``    – first page address (page-granular logical block address)
#: ``npages`` – request length in pages (>= 1)
#: ``is_read`` – True for reads, False for writes
IO_DTYPE: np.dtype[np.void] = np.dtype(
    [
        ("time", np.float64),
        ("lba", np.uint64),
        ("npages", np.uint32),
        ("is_read", np.bool_),
    ]
)


@dataclass(frozen=True, slots=True)
class IORequest:
    """One block-level request at page granularity."""

    time: float
    lba: int
    npages: int
    is_read: bool

    def __post_init__(self) -> None:
        if self.npages < 1:
            raise ConfigError(f"request length must be >= 1 page, got {self.npages}")
        if self.lba < 0:
            raise ConfigError(f"negative LBA: {self.lba}")

    @property
    def is_write(self) -> bool:
        return not self.is_read

    def pages(self) -> range:
        """Page addresses touched by this request."""
        return range(self.lba, self.lba + self.npages)


def empty_records(n: int) -> npt.NDArray[np.void]:
    """Allocate an uninitialised record array of ``n`` requests."""
    return np.empty(n, dtype=IO_DTYPE)
