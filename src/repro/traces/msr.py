"""Parser for MSR Cambridge (Microsoft Cambridge Server) block traces.

The MSR Cambridge traces (``hm_0.csv``, ``web_0.csv``, ...) are CSV
files with one request per line::

    Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime

``Timestamp`` is in Windows filetime units (100 ns ticks), ``Offset``
and ``Size`` are in bytes, ``Type`` is ``Read`` or ``Write``.
"""

from __future__ import annotations

import io
from pathlib import Path

from ..errors import TraceFormatError
from ..units import DEFAULT_PAGE_SIZE
from .record import empty_records
from .trace import Trace

FILETIME_TICK = 1e-7  # 100 ns


def parse_msr(
    source: str | Path | io.TextIOBase,
    name: str = "msr",
    page_size: int = DEFAULT_PAGE_SIZE,
    disk_number: int | None = None,
) -> Trace:
    """Parse an MSR Cambridge CSV trace.

    If ``disk_number`` is given, only requests for that volume are kept
    (the paper uses the first volume of each server, e.g. ``hm_0``).
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="ascii", errors="replace") as fh:
            lines = fh.readlines()
    else:
        lines = source.readlines()

    records = empty_records(len(lines))
    count = 0
    t0_ticks: int | None = None
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(",")
        if len(parts) < 6:
            raise TraceFormatError(f"line {lineno}: expected >=6 fields, got {len(parts)}")
        try:
            ticks = int(parts[0])
            disk = int(parts[2])
            op = parts[3].strip().lower()
            offset = int(parts[4])
            size = int(parts[5])
        except ValueError as exc:
            raise TraceFormatError(f"line {lineno}: {exc}") from exc
        if disk_number is not None and disk != disk_number:
            continue
        if op not in ("read", "write"):
            raise TraceFormatError(f"line {lineno}: bad request type {parts[3]!r}")
        if size <= 0:
            continue
        if t0_ticks is None:
            t0_ticks = ticks
        # subtract in integer ticks first: raw filetimes exceed float64's
        # integer precision and would quantise relative times to ~2 us
        time = (ticks - t0_ticks) * FILETIME_TICK
        first_page = offset // page_size
        last_page = (offset + size - 1) // page_size
        rec = records[count]
        rec["time"] = time
        rec["lba"] = first_page
        rec["npages"] = last_page - first_page + 1
        rec["is_read"] = op == "read"
        count += 1
    return Trace(records[:count].copy(), name=name, page_size=page_size)
