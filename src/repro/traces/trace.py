"""Trace container.

A :class:`Trace` wraps a time-sorted numpy record array of block-level
requests (see :mod:`repro.traces.record`) together with a name and the
page size the LBAs are expressed in.  It offers vectorised statistics
(used to regenerate Table I) and iteration for the simulators.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from ..contracts import columnar
from ..errors import ConfigError, TraceFormatError
from ..units import DEFAULT_PAGE_SIZE
from .record import IO_DTYPE, IORequest


@dataclass(frozen=True)
class TraceStats:
    """Aggregate characteristics of a trace (the columns of Table I)."""

    name: str
    unique_pages: int
    unique_read_pages: int
    unique_write_pages: int
    read_requests: int
    write_requests: int

    @property
    def requests(self) -> int:
        return self.read_requests + self.write_requests

    @property
    def read_ratio(self) -> float:
        total = self.requests
        return self.read_requests / total if total else 0.0

    def row(self) -> dict[str, float]:
        """Table I row (page counts in thousands, as the paper prints them)."""
        return {
            "workload": self.name,
            "unique_total_k": round(self.unique_pages / 1000, 1),
            "unique_read_k": round(self.unique_read_pages / 1000, 1),
            "unique_write_k": round(self.unique_write_pages / 1000, 1),
            "read_req_k": round(self.read_requests / 1000, 1),
            "write_req_k": round(self.write_requests / 1000, 1),
            "read_ratio": round(self.read_ratio, 2),
        }


class Trace:
    """A time-ordered sequence of block-level I/O requests."""

    def __init__(
        self,
        records: np.ndarray,
        name: str = "trace",
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> None:
        if records.dtype != IO_DTYPE:
            raise TraceFormatError(
                f"records must have dtype IO_DTYPE, got {records.dtype}"
            )
        if len(records) and np.any(np.diff(records["time"]) < 0):
            records = records[np.argsort(records["time"], kind="stable")]
        if len(records) and np.any(records["npages"] < 1):
            raise TraceFormatError("trace contains zero-length requests")
        self._records = records
        self.name = name
        self.page_size = page_size

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[IORequest]:
        for rec in self._records:
            yield IORequest(
                time=float(rec["time"]),
                lba=int(rec["lba"]),
                npages=int(rec["npages"]),
                is_read=bool(rec["is_read"]),
            )

    def __getitem__(self, idx: int) -> IORequest:
        rec = self._records[idx]
        return IORequest(
            time=float(rec["time"]),
            lba=int(rec["lba"]),
            npages=int(rec["npages"]),
            is_read=bool(rec["is_read"]),
        )

    @property
    def records(self) -> np.ndarray:
        """The underlying structured array (read-only view)."""
        view = self._records.view()
        view.flags.writeable = False
        return view

    # -- derived quantities ---------------------------------------------------

    @property
    def duration(self) -> float:
        """Span between first and last arrival, in seconds."""
        if not len(self._records):
            return 0.0
        return float(self._records["time"][-1] - self._records["time"][0])

    @property
    def max_page(self) -> int:
        """Highest page address touched (exclusive upper bound of footprint)."""
        if not len(self._records):
            return 0
        ends = self._records["lba"] + self._records["npages"]
        return int(ends.max())

    @columnar(dtypes={"return": "(uint64, bool)"})
    def page_accesses(self) -> tuple[np.ndarray, np.ndarray]:
        """Expand requests to per-page accesses.

        Returns ``(pages, is_read)`` arrays with one entry per 4 KiB page
        touched, preserving request order.  This is the stream the cache
        simulator consumes and what Table I counts.
        """
        npages = self._records["npages"].astype(np.int64)
        total = int(npages.sum())
        if total == 0:
            return (np.empty(0, np.uint64), np.empty(0, np.bool_))
        reps = np.repeat(np.arange(len(self._records)), npages)
        # offset of each expanded page within its request
        starts = np.concatenate(([0], np.cumsum(npages)[:-1]))
        offsets = np.arange(total) - starts[reps]
        pages = self._records["lba"][reps] + offsets.astype(np.uint64)
        return pages, self._records["is_read"][reps]

    def stats(self) -> TraceStats:
        """Compute Table I characteristics at page granularity."""
        pages, is_read = self.page_accesses()
        read_pages = pages[is_read]
        write_pages = pages[~is_read]
        return TraceStats(
            name=self.name,
            unique_pages=int(np.unique(pages).size),
            unique_read_pages=int(np.unique(read_pages).size),
            unique_write_pages=int(np.unique(write_pages).size),
            read_requests=int(is_read.sum()),
            write_requests=int((~is_read).sum()),
        )

    # -- transformations ------------------------------------------------------

    def head(self, n: int) -> "Trace":
        """First ``n`` requests as a new trace (for quick experiments)."""
        return Trace(self._records[:n].copy(), name=self.name, page_size=self.page_size)

    def scaled_time(self, factor: float) -> "Trace":
        """Uniformly compress (<1) or stretch (>1) arrival times."""
        if factor <= 0:
            raise ConfigError("time scale factor must be positive")
        rec = self._records.copy()
        rec["time"] *= factor
        return Trace(rec, name=self.name, page_size=self.page_size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace({self.name!r}, n={len(self)}, max_page={self.max_page})"
