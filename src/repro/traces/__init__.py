"""Trace infrastructure: formats, parsers, and synthetic workload generators."""

from .analysis import (
    ReuseProfile,
    lru_stack_distances,
    reuse_profile,
    working_set_sizes,
    write_hit_potential,
)
from .msr import parse_msr
from .record import IO_DTYPE, IORequest, empty_records
from .spc import concat_spc, parse_spc, write_spc
from .synthetic import (
    FootprintSpec,
    footprint_workload,
    sequential_workload,
    uniform_workload,
    zipf_ranks,
    zipf_workload,
)
from .trace import Trace, TraceStats
from .uniform import convert, load_trace, save_trace
from .workloads import (
    ALL_WORKLOADS,
    READ_DOMINANT,
    TABLE1_SPECS,
    WRITE_DOMINANT,
    make_workload,
    workload_spec,
)

__all__ = [
    "IO_DTYPE",
    "IORequest",
    "empty_records",
    "Trace",
    "TraceStats",
    "parse_spc",
    "write_spc",
    "concat_spc",
    "parse_msr",
    "FootprintSpec",
    "footprint_workload",
    "sequential_workload",
    "uniform_workload",
    "zipf_ranks",
    "zipf_workload",
    "convert",
    "load_trace",
    "save_trace",
    "ReuseProfile",
    "lru_stack_distances",
    "reuse_profile",
    "working_set_sizes",
    "write_hit_potential",
    "ALL_WORKLOADS",
    "READ_DOMINANT",
    "WRITE_DOMINANT",
    "TABLE1_SPECS",
    "make_workload",
    "workload_spec",
]
