"""Parser/writer for SPC-1 style trace files (UMass trace repository).

The Storage Performance Council financial traces (``Financial1.spc``,
``Financial2.spc``) are ASCII files with one request per line::

    ASU,LBA,Size,Opcode,Timestamp

where ``ASU`` is an application-specific unit (sub-volume) id, ``LBA``
is a 512-byte-sector address *within* that ASU, ``Size`` is in bytes,
``Opcode`` is ``r``/``R`` or ``w``/``W``, and ``Timestamp`` is seconds
from trace start.  We linearise ASUs into one address space by giving
each ASU a fixed page-aligned region.
"""

from __future__ import annotations

import io
from collections.abc import Iterable
from pathlib import Path

import numpy as np

from ..errors import TraceFormatError
from ..units import DEFAULT_PAGE_SIZE
from .record import empty_records
from .trace import Trace

SECTOR_SIZE = 512

#: Pages reserved per ASU when linearising the address space.  The UMass
#: financial traces address well under 64 GiB per ASU.
ASU_REGION_PAGES = (64 * 1024 * 1024 * 1024) // DEFAULT_PAGE_SIZE


def parse_spc(
    source: str | Path | io.TextIOBase,
    name: str = "spc",
    page_size: int = DEFAULT_PAGE_SIZE,
    asu_region_pages: int = ASU_REGION_PAGES,
) -> Trace:
    """Parse an SPC format trace into a page-granular :class:`Trace`."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="ascii", errors="replace") as fh:
            lines = fh.readlines()
    else:
        lines = source.readlines()

    n = len(lines)
    records = empty_records(n)
    count = 0
    sectors_per_page = page_size // SECTOR_SIZE
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(",")
        if len(parts) < 5:
            raise TraceFormatError(f"line {lineno}: expected 5 fields, got {len(parts)}")
        try:
            asu = int(parts[0])
            sector = int(parts[1])
            size = int(parts[2])
            opcode = parts[3].strip().lower()
            time = float(parts[4])
        except ValueError as exc:
            raise TraceFormatError(f"line {lineno}: {exc}") from exc
        if opcode not in ("r", "w"):
            raise TraceFormatError(f"line {lineno}: bad opcode {parts[3]!r}")
        if size <= 0:
            # Some SPC traces contain zero-length markers; skip them.
            continue
        first_page = sector // sectors_per_page
        last_page = (sector * SECTOR_SIZE + size - 1) // page_size
        rec = records[count]
        rec["time"] = time
        rec["lba"] = asu * asu_region_pages + first_page
        rec["npages"] = last_page - first_page + 1
        rec["is_read"] = opcode == "r"
        count += 1
    return Trace(records[:count].copy(), name=name, page_size=page_size)


def write_spc(trace: Trace, dest: str | Path | io.TextIOBase, asu: int = 0) -> None:
    """Write a trace back out in SPC format (single ASU)."""
    own = isinstance(dest, (str, Path))
    fh = open(dest, "w", encoding="ascii") if own else dest
    try:
        sectors_per_page = trace.page_size // SECTOR_SIZE
        for req in trace:
            fh.write(
                f"{asu},{req.lba * sectors_per_page},"
                f"{req.npages * trace.page_size},"
                f"{'r' if req.is_read else 'w'},{req.time:.6f}\n"
            )
    finally:
        if own:
            fh.close()


def concat_spc(traces: Iterable[Trace], name: str = "spc-merged") -> Trace:
    """Merge several traces into one, re-sorted by time."""
    arrays = [t.records for t in traces]
    if not arrays:
        raise TraceFormatError("no traces to merge")
    merged = np.concatenate(arrays)
    merged = merged[np.argsort(merged["time"], kind="stable")]
    return Trace(merged.copy(), name=name)
