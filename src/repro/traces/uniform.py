"""The simulator's uniform trace format (Section IV-A1).

"The simulator first converts raw traces into a uniform format and then
processes trace requests one by one" — this module is that format: a
compact binary container (numpy ``.npz``) holding the canonical record
array plus metadata, so converted SPC/MSR/synthetic traces load in
milliseconds instead of being re-parsed per experiment.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import TraceFormatError
from ..units import DEFAULT_PAGE_SIZE
from .record import IO_DTYPE
from .trace import Trace

#: Format version written into every file; bumped on layout changes.
FORMAT_VERSION = 1


def save_trace(trace: Trace, path: str | Path) -> Path:
    """Write a trace in the uniform binary format (``.trace.npz``)."""
    path = Path(path)
    meta = {
        "version": FORMAT_VERSION,
        "name": trace.name,
        "page_size": trace.page_size,
    }
    np.savez_compressed(
        path,
        records=trace.records,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
    )
    # np.savez appends .npz if missing
    return path if path.suffix == ".npz" else path.with_name(path.name + ".npz")


def load_trace(path: str | Path) -> Trace:
    """Load a trace previously written by :func:`save_trace`."""
    path = Path(path)
    try:
        with np.load(path) as data:
            records = data["records"]
            meta = json.loads(bytes(data["meta"]).decode())
    except (OSError, KeyError, ValueError) as exc:
        raise TraceFormatError(f"not a uniform trace file: {path} ({exc})") from exc
    if meta.get("version") != FORMAT_VERSION:
        raise TraceFormatError(
            f"unsupported trace format version {meta.get('version')} "
            f"(expected {FORMAT_VERSION})"
        )
    if records.dtype != IO_DTYPE:
        raise TraceFormatError(f"unexpected record dtype {records.dtype}")
    return Trace(
        records.copy(),
        name=meta.get("name", path.stem),
        page_size=int(meta.get("page_size", DEFAULT_PAGE_SIZE)),
    )


def convert(source: str | Path, dest: str | Path | None = None) -> Path:
    """Convert an SPC/MSR file to the uniform format (auto-detected)."""
    from .msr import parse_msr
    from .spc import parse_spc

    source = Path(source)
    if source.suffix == ".spc":
        trace = parse_spc(source, name=source.stem)
    elif source.suffix == ".csv":
        trace = parse_msr(source, name=source.stem)
    else:
        raise TraceFormatError(
            f"cannot auto-detect format of {source} (expected .spc or .csv)"
        )
    if dest is None:
        dest = source.with_suffix(".trace.npz")
    return save_trace(trace, dest)
