"""repro — reproduction of "Improving RAID Performance Using an Endurable
SSD Cache" (Li, Feng, Hua, Wang; ICPP 2016).

The package implements KDD (Keeping Data and Deltas in SSD) together
with every substrate the paper's evaluation depends on: trace formats
and calibrated synthetic workloads, a flash SSD device model (FTL, GC,
wear), an HDD model, parity RAID (levels 0/1/5/6) with the delayed
parity-update interfaces, the baseline cache policies (write-through,
write-around, write-back, LeavO), a discrete-event timing simulator,
and an experiment harness that regenerates each table and figure of the
paper's evaluation section.

Quickstart::

    from repro import make_workload, simulate_policy

    trace = make_workload("Fin1", scale=0.02)
    result = simulate_policy("kdd", trace, cache_pages=20_000,
                             mean_compression=0.25, seed=7)
    print(result.hit_ratio, result.ssd_write_pages)
"""

from .errors import (
    CacheError,
    CapacityError,
    ConfigError,
    DegradedError,
    FlashError,
    RaidError,
    RecoveryError,
    ReproError,
    SimulationError,
    TraceFormatError,
    WornOutError,
)
from .traces import Trace, TraceStats, make_workload, zipf_workload
from .units import DEFAULT_PAGE_SIZE, GiB, KiB, MiB, TiB


def simulate_policy(*args, **kwargs):
    """Run a trace through a cache policy; see :func:`repro.harness.simulate_policy`.

    Imported lazily to keep ``import repro`` light.
    """
    from .harness.runner import simulate_policy as _simulate_policy

    return _simulate_policy(*args, **kwargs)


__version__ = "1.0.0"

__all__ = [
    "DEFAULT_PAGE_SIZE",
    "GiB",
    "KiB",
    "MiB",
    "TiB",
    "CacheError",
    "CapacityError",
    "ConfigError",
    "DegradedError",
    "FlashError",
    "RaidError",
    "RecoveryError",
    "ReproError",
    "SimulationError",
    "TraceFormatError",
    "WornOutError",
    "Trace",
    "TraceStats",
    "make_workload",
    "zipf_workload",
    "simulate_policy",
    "__version__",
]
