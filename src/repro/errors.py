"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
masking programming errors (``TypeError`` etc. propagate unchanged).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range.

    Raised at *configuration time* (building policies, traces, sweeps);
    faults detected while a simulation is running raise
    :class:`SimulationError` instead.
    """


class SimulationError(ReproError):
    """A running simulation produced an impossible value or state."""


class TraceFormatError(ReproError):
    """A trace file could not be parsed in the expected format."""


class CapacityError(ReproError):
    """An address or allocation exceeds the capacity of a device."""


class FlashError(ReproError):
    """Illegal flash operation (e.g. program without erase)."""


class WornOutError(FlashError):
    """A flash block exceeded its program/erase endurance budget."""


class RaidError(ReproError):
    """Illegal RAID operation or unrecoverable array state."""


class DegradedError(RaidError):
    """The array has more failed disks than its redundancy tolerates."""


class CacheError(ReproError):
    """Cache state machine violation (invalid page state transition)."""


class RecoveryError(ReproError):
    """Crash/failure recovery could not restore a consistent state."""
