"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
masking programming errors (``TypeError`` etc. propagate unchanged).

Exception contracts
-------------------

Public entry points of the simulation layer declare which taxonomy
classes they can raise with the :func:`raises` decorator::

    @raises(SimulationError, DegradedError)
    def replay_trace(system, trace): ...

The declarations are machine-checked: ``kdd-repro analyze`` computes
each entry point's may-raise set over the project call graph and fails
when a reachable taxonomy raise is missing from the declaration
(finding RPR107) or when a raising public entry point has no contract
at all (RPR108).  :class:`ConfigError` is *ambient* — every boundary
may reject an invalid configuration — so contracts only cover runtime
failure classes.  At run time the decorator is a no-op apart from
recording the contract on ``__may_raise__``.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TypeVar


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range.

    Raised at *configuration time* (building policies, traces, sweeps);
    faults detected while a simulation is running raise
    :class:`SimulationError` instead.
    """


class SimulationError(ReproError):
    """A running simulation produced an impossible value or state."""


class TraceFormatError(ReproError):
    """A trace file could not be parsed in the expected format."""


class CapacityError(ReproError):
    """An address or allocation exceeds the capacity of a device."""


class FlashError(ReproError):
    """Illegal flash operation (e.g. program without erase)."""


class WornOutError(FlashError):
    """A flash block exceeded its program/erase endurance budget."""


class FaultError(ReproError):
    """An injected device fault surfaced to the host (see repro.faults).

    These model the *partial* and *transient* failures Section III-E of
    the paper does not exercise: latent sector errors and device
    timeouts.  They are raised (or returned as typed outcomes) by the
    device layer; the RAID layer turns them into degraded-mode reads.
    """


class MediaError(FaultError):
    """A latent sector error: the page is unreadable on its member device.

    The data still exists everywhere else in the stripe — a parity RAID
    reconstructs it from the surviving chunks, unless the stripe's
    parity is stale (then the read degrades to :class:`DegradedError`).
    """


class DeviceTimeoutError(FaultError):
    """A device command stalled past its deadline (transient fault).

    Transient by definition: a retry may succeed.  Raised only once a
    :class:`repro.faults.RetryPolicy` has exhausted its bounded retries.
    """


class RaidError(ReproError):
    """Illegal RAID operation or unrecoverable array state."""


class DegradedError(RaidError):
    """The array has more failed disks than its redundancy tolerates."""


class CacheError(ReproError):
    """Cache state machine violation (invalid page state transition)."""


class RecoveryError(ReproError):
    """Crash/failure recovery could not restore a consistent state."""


class SimulatedPowerFailure(ReproError):
    """An armed crash point fired (see :mod:`repro.faults.crash`).

    Deliberately *not* a :class:`RecoveryError`: the power failure
    itself is the injected event, not a recovery defect.  The harness
    catches it, leaves the cache exactly in its crash-surviving state,
    and then exercises ``recover_from_power_failure`` for real.
    """


_F = TypeVar("_F", bound=Callable[..., object])


def raises(*exceptions: type[ReproError]) -> Callable[[_F], _F]:
    """Declare the taxonomy classes a public entry point may raise.

    The declaration is stored on the function as ``__may_raise__`` (a
    tuple of exception classes) and verified statically by
    ``kdd-repro analyze``; see the module docstring.  Declaring a base
    class covers its subclasses, mirroring ``except`` semantics.
    """
    for exc in exceptions:
        if not (isinstance(exc, type) and issubclass(exc, ReproError)):
            raise TypeError(
                f"@raises() accepts repro.errors classes, got {exc!r}; "
                "builtin exceptions mark programming errors and are not "
                "part of the library's contract"
            )

    def mark(fn: _F) -> _F:
        fn.__may_raise__ = exceptions  # type: ignore[attr-defined]
        return fn

    return mark
