"""Response-time statistics for the timing simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError


@dataclass
class LatencyRecorder:
    """Accumulates per-request response times."""

    samples: list[float] = field(default_factory=list)

    def record(self, response_time: float) -> None:
        # A negative response time is a simulator fault (completion before
        # arrival), not a configuration mistake.
        if response_time < 0:
            raise SimulationError(f"negative response time {response_time}")
        self.samples.append(response_time)

    def __len__(self) -> int:
        return len(self.samples)

    def summary(self) -> "LatencySummary":
        if not self.samples:
            return LatencySummary(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0,
                                  maximum=0.0)
        arr = np.asarray(self.samples)
        return LatencySummary(
            count=len(arr),
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            p99=float(np.percentile(arr, 99)),
            maximum=float(arr.max()),
        )


@dataclass(frozen=True)
class LatencySummary:
    """Aggregate response-time figures (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @property
    def mean_ms(self) -> float:
        return self.mean * 1e3

    def row(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean_ms": round(self.mean * 1e3, 3),
            "p50_ms": round(self.p50 * 1e3, 3),
            "p95_ms": round(self.p95 * 1e3, 3),
            "p99_ms": round(self.p99 * 1e3, 3),
            "max_ms": round(self.maximum * 1e3, 3),
        }
