"""Response-time statistics for the timing simulator."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from .streaming import P2Quantile

#: Quantiles reported by :class:`LatencySummary`, shared by both modes.
_SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


class LatencyRecorder:
    """Accumulates per-request response times.

    The default (exact) mode keeps samples in an amortized-growth float64
    buffer (capacity doubles when full), so :meth:`record` is O(1)
    amortized and :meth:`summary` reduces a zero-copy view instead of
    re-materializing the whole history into a fresh ndarray on every
    call.

    ``streaming=True`` switches to bounded state: count, running mean,
    maximum, and one :class:`~repro.stats.streaming.P2Quantile` per
    reported percentile.  :meth:`state_bytes` is then constant for the
    life of the recorder, which is what lets million-request serving
    runs assert a fixed metric byte budget.  Count, mean, and maximum
    are exact in both modes; streaming percentiles are P² estimates.
    """

    __slots__ = ("_buf", "_n", "_sum", "_max", "_quantiles")

    def __init__(self, streaming: bool = False) -> None:
        self._n = 0
        self._sum = 0.0
        self._max = 0.0
        if streaming:
            self._buf = None
            self._quantiles = tuple(P2Quantile(p) for p in _SUMMARY_QUANTILES)
        else:
            self._buf = np.empty(64, dtype=np.float64)
            self._quantiles = None

    @property
    def streaming(self) -> bool:
        return self._buf is None

    def record(self, response_time: float) -> None:
        # A negative response time is a simulator fault (completion before
        # arrival), not a configuration mistake.
        if response_time < 0:
            raise SimulationError(f"negative response time {response_time}")
        if self._buf is None:
            self._n += 1
            self._sum += response_time
            if response_time > self._max:
                self._max = response_time
            for est in self._quantiles:
                est.add(response_time)
            return
        if self._n == self._buf.shape[0]:
            grown = np.empty(2 * self._buf.shape[0], dtype=np.float64)
            grown[: self._n] = self._buf
            self._buf = grown
        self._buf[self._n] = response_time
        self._n += 1

    def __len__(self) -> int:
        return self._n

    def state_bytes(self) -> int:
        if self._buf is None:
            return sum(est.state_bytes() for est in self._quantiles) + 3 * 8
        return int(self._buf.nbytes) + 3 * 8

    def summary(self) -> "LatencySummary":
        if not self._n:
            return LatencySummary(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0,
                                  maximum=0.0)
        if self._buf is None:
            p50, p95, p99 = (est.value() for est in self._quantiles)
            return LatencySummary(
                count=self._n,
                mean=self._sum / self._n,
                p50=p50,
                p95=p95,
                p99=p99,
                maximum=self._max,
            )
        arr = self._buf[: self._n]
        return LatencySummary(
            count=self._n,
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            p99=float(np.percentile(arr, 99)),
            maximum=float(arr.max()),
        )


@dataclass(frozen=True)
class LatencySummary:
    """Aggregate response-time figures (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @property
    def mean_ms(self) -> float:
        return self.mean * 1e3

    def row(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean_ms": round(self.mean * 1e3, 3),
            "p50_ms": round(self.p50 * 1e3, 3),
            "p95_ms": round(self.p95 * 1e3, 3),
            "p99_ms": round(self.p99 * 1e3, 3),
            "max_ms": round(self.maximum * 1e3, 3),
        }
