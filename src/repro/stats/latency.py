"""Response-time statistics for the timing simulator."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError


class LatencyRecorder:
    """Accumulates per-request response times.

    Samples live in an amortized-growth float64 buffer (capacity doubles
    when full), so :meth:`record` is O(1) amortized and :meth:`summary`
    reduces a zero-copy view instead of re-materializing the whole
    history into a fresh ndarray on every call.
    """

    __slots__ = ("_buf", "_n")

    def __init__(self) -> None:
        self._buf = np.empty(64, dtype=np.float64)
        self._n = 0

    def record(self, response_time: float) -> None:
        # A negative response time is a simulator fault (completion before
        # arrival), not a configuration mistake.
        if response_time < 0:
            raise SimulationError(f"negative response time {response_time}")
        if self._n == self._buf.shape[0]:
            grown = np.empty(2 * self._buf.shape[0], dtype=np.float64)
            grown[: self._n] = self._buf
            self._buf = grown
        self._buf[self._n] = response_time
        self._n += 1

    def __len__(self) -> int:
        return self._n

    def summary(self) -> "LatencySummary":
        if not self._n:
            return LatencySummary(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0,
                                  maximum=0.0)
        arr = self._buf[: self._n]
        return LatencySummary(
            count=self._n,
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            p99=float(np.percentile(arr, 99)),
            maximum=float(arr.max()),
        )


@dataclass(frozen=True)
class LatencySummary:
    """Aggregate response-time figures (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @property
    def mean_ms(self) -> float:
        return self.mean * 1e3

    def row(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean_ms": round(self.mean * 1e3, 3),
            "p50_ms": round(self.p50 * 1e3, 3),
            "p95_ms": round(self.p95 * 1e3, 3),
            "p99_ms": round(self.p99 * 1e3, 3),
            "max_ms": round(self.maximum * 1e3, 3),
        }
