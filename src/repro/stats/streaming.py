"""Bounded-memory online metrics for multi-tenant serving.

Everything in this module keeps O(1) state in the number of observations:
quantiles use the P² (piecewise-parabolic) algorithm of Jain & Chlamtac
(CACM 1985) with five markers per target, and throughput uses a rolling
per-window counter.  Each estimator reports its resident state via
``state_bytes()`` so callers (the serve driver, the bench harness) can
assert a fixed byte budget over million-request runs.
"""

from __future__ import annotations

import numpy as np

from ..contracts import columnar
from ..errors import ConfigError, SimulationError

__all__ = ["P2Quantile", "StreamingQuantiles", "WindowedThroughput"]

#: Python-object overhead charged per estimator on top of its ndarray
#: payload; a fixed constant so budgets stay deterministic across runs.
_OBJECT_OVERHEAD = 64


def _percentile_sorted(values: list[float], p: float) -> float:
    """``np.percentile``-style linear interpolation over a sorted list."""
    n = len(values)
    if n == 1:
        return values[0]
    rank = p * (n - 1)
    lo = int(rank)
    hi = min(lo + 1, n - 1)
    frac = rank - lo
    return values[lo] * (1.0 - frac) + values[hi] * frac


class P2Quantile:
    """Streaming quantile estimate with five markers of fixed state.

    Until five samples arrive the estimate is exact (sorted-list
    interpolation); afterwards the markers track the ``p``-quantile with
    parabolic height adjustment.  All state lives in two length-5 arrays,
    so ``state_bytes()`` is constant for the life of the estimator.
    """

    __slots__ = ("_p", "_heights", "_pos", "_count")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ConfigError(f"P2Quantile.p must be in (0, 1), got {p}")
        self._p = p
        self._heights = np.empty(5, dtype=np.float64)
        self._pos = np.array([1, 2, 3, 4, 5], dtype=np.int64)
        self._count = 0

    @property
    def p(self) -> float:
        return self._p

    @property
    def count(self) -> int:
        return self._count

    def state_bytes(self) -> int:
        return int(self._heights.nbytes + self._pos.nbytes) + _OBJECT_OVERHEAD

    def add(self, x: float) -> None:
        h = self._heights
        if self._count < 5:
            h[self._count] = x
            self._count += 1
            if self._count == 5:
                h.sort()
            return
        self._count += 1
        # Locate the marker cell containing x, stretching the extremes.
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            if x > h[4]:
                h[4] = x
            k = 3
        else:
            k = int(np.searchsorted(h, x, side="right")) - 1
            k = min(k, 3)
        pos = self._pos
        pos[k + 1:] += 1
        p = self._p
        want = (
            1.0,
            1.0 + (self._count - 1) * p / 2.0,
            1.0 + (self._count - 1) * p,
            1.0 + (self._count - 1) * (1.0 + p) / 2.0,
            float(self._count),
        )
        for i in (1, 2, 3):
            d = want[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1
            ):
                step = 1 if d >= 1.0 else -1
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    # Parabolic estimate left the bracket; fall back to
                    # linear interpolation toward the neighbour.
                    h[i] = h[i] + step * (h[i + step] - h[i]) / (
                        pos[i + step] - pos[i]
                    )
                pos[i] += step

    def _parabolic(self, i: int, step: int) -> float:
        h = self._heights
        pos = self._pos
        n_prev = int(pos[i - 1])
        n_cur = int(pos[i])
        n_next = int(pos[i + 1])
        left = (n_cur - n_prev + step) * (h[i + 1] - h[i]) / (n_next - n_cur)
        right = (n_next - n_cur - step) * (h[i] - h[i - 1]) / (n_cur - n_prev)
        return float(h[i] + step * (left + right) / (n_next - n_prev))

    def value(self) -> float:
        if self._count == 0:
            return 0.0
        if self._count < 5:
            return _percentile_sorted(
                sorted(self._heights[: self._count].tolist()), self._p
            )
        return float(self._heights[2])


class StreamingQuantiles:
    """A fixed bank of :class:`P2Quantile` estimators over one stream."""

    __slots__ = ("_estimators",)

    def __init__(self, targets: tuple[float, ...] = (0.5, 0.95, 0.99)) -> None:
        if not targets:
            raise ConfigError("StreamingQuantiles.targets must not be empty")
        self._estimators = tuple((p, P2Quantile(p)) for p in targets)

    @property
    def count(self) -> int:
        return self._estimators[0][1].count

    def add(self, x: float) -> None:
        for _, est in self._estimators:
            est.add(x)

    @columnar(dtypes={"values": "float64"}, shapes={"values": "(n,)"})
    def add_many(self, values: np.ndarray) -> None:
        for x in values.tolist():
            for _, est in self._estimators:
                est.add(x)

    def state_bytes(self) -> int:
        return (
            sum(est.state_bytes() for _, est in self._estimators)
            + _OBJECT_OVERHEAD
        )

    def summary(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for p, est in self._estimators:
            label = f"p{p * 100:g}".replace(".", "_")
            out[label] = est.value()
        return out


class WindowedThroughput:
    """Per-window request counting with O(1) state.

    Observations must be fed in non-decreasing time order (the composer
    emits a time-ordered stream, so this holds by construction).  Only
    the current window's counter is kept; completed windows fold into
    running aggregates (count, peak), never a per-window list.
    """

    __slots__ = ("_window_s", "_window", "_count", "_completed", "_total",
                 "_peak")

    def __init__(self, window_s: float = 60.0) -> None:
        if window_s <= 0:
            raise ConfigError(
                f"WindowedThroughput.window_s must be positive, got {window_s}"
            )
        self._window_s = window_s
        self._window = -1
        self._count = 0
        self._completed = 0
        self._total = 0
        self._peak = 0

    @property
    def total(self) -> int:
        return self._total

    def state_bytes(self) -> int:
        return 6 * 8 + _OBJECT_OVERHEAD

    @columnar(dtypes={"times": "float64"})
    def observe_batch(self, times: np.ndarray) -> None:
        if times.size == 0:
            return
        idx = np.floor_divide(times, self._window_s).astype(np.int64)
        uniq, counts = np.unique(idx, return_counts=True)
        for window, count in zip(uniq.tolist(), counts.tolist()):
            self._roll_to(window)
            self._count += count
            self._total += count

    def _roll_to(self, window: int) -> None:
        if self._window < 0:
            self._window = window
            return
        if window < self._window:
            raise SimulationError(
                f"throughput observation moved backwards: window {window} "
                f"after {self._window}"
            )
        if window > self._window:
            self._peak = max(self._peak, self._count)
            # Empty windows between the last observation and this one
            # still count toward the mean denominator.
            self._completed += window - self._window
            self._count = 0
            self._window = window

    def summary(self) -> dict[str, float]:
        windows = self._completed + (1 if self._window >= 0 else 0)
        peak = max(self._peak, self._count)
        mean = self._total / windows / self._window_s if windows else 0.0
        return {
            "windows": windows,
            "mean_per_s": mean,
            "peak_per_s": peak / self._window_s,
        }
