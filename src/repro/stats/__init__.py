"""Metrics: latency recorders, summaries, streaming estimators, exposure."""

from .exposure import VulnerabilityExposure
from .latency import LatencyRecorder, LatencySummary
from .streaming import P2Quantile, StreamingQuantiles, WindowedThroughput

__all__ = [
    "LatencyRecorder",
    "LatencySummary",
    "P2Quantile",
    "StreamingQuantiles",
    "VulnerabilityExposure",
    "WindowedThroughput",
]
