"""Metrics: latency recorders and summaries."""

from .latency import LatencyRecorder, LatencySummary

__all__ = ["LatencyRecorder", "LatencySummary"]
