"""Metrics: latency recorders, summaries, reliability exposure."""

from .exposure import VulnerabilityExposure
from .latency import LatencyRecorder, LatencySummary

__all__ = ["LatencyRecorder", "LatencySummary", "VulnerabilityExposure"]
