"""Vulnerability-window exposure: how long stale parity leaves data bare.

KDD trades small-write cost for *delayed* parity: a stripe whose parity
is stale cannot reconstruct a lost member page until the cleaner (or the
scrubber) repairs it.  The reliability analysis therefore needs one
number family, shared by every producer — the fault sweep, the scrubber
report and the reliability cells all emit this dataclass, in the same
units and the same JSON shape, so their outputs compose.

Units: the observation span is measured in *accesses* (the trace-driven
simulators have no wall clock); :meth:`VulnerabilityExposure.scaled`
converts to hours given an IOPS figure when a rate-based model
(:mod:`repro.reliability`) consumes the measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable


@dataclass(frozen=True)
class VulnerabilityExposure:
    """Stale-parity exposure measured over one observed span."""

    #: accesses observed
    span: int
    #: accesses during which >= 1 stripe had stale parity
    stale_span: int
    #: sum over accesses of the stale-stripe count (stripe-accesses)
    stripe_span: int
    #: peak simultaneous stale-stripe count
    max_stale: int
    #: completed vulnerability windows (stale -> all-clean transitions)
    windows: int
    #: total length of the completed windows, in accesses
    window_total: int
    #: length of the window still open when observation ended (0 if none)
    open_window: int

    @property
    def exposure_fraction(self) -> float:
        """Fraction of the span with at least one stale stripe."""
        return self.stale_span / self.span if self.span else 0.0

    @property
    def mean_stale_stripes(self) -> float:
        """Average number of simultaneously stale stripes."""
        return self.stripe_span / self.span if self.span else 0.0

    @property
    def mean_window(self) -> float:
        """Mean vulnerability-window length in accesses.

        Falls back to the open window when no window ever closed (e.g.
        scrubbing off and a lazy cleaner: the array is never all-clean).
        """
        if self.windows:
            return self.window_total / self.windows
        return float(self.open_window)

    def row(self) -> dict[str, Any]:
        """The shared JSON shape (``exposure`` block of every report)."""
        return {
            "span_accesses": self.span,
            "stale_accesses": self.stale_span,
            "stripe_accesses": self.stripe_span,
            "exposure_fraction": round(self.exposure_fraction, 6),
            "mean_stale_stripes": round(self.mean_stale_stripes, 4),
            "max_stale_stripes": self.max_stale,
            "windows": self.windows,
            "mean_window_accesses": round(self.mean_window, 2),
            "open_window_accesses": self.open_window,
        }

    @classmethod
    def from_samples(cls, samples: Iterable[int]) -> "VulnerabilityExposure":
        """Build from one stale-stripe count per access, in order."""
        span = stale = stripes = peak = 0
        windows = window_total = run = 0
        for count in samples:
            span += 1
            stripes += count
            if count > peak:
                peak = count
            if count > 0:
                stale += 1
                run += 1
            elif run:
                windows += 1
                window_total += run
                run = 0
        return cls(
            span=span,
            stale_span=stale,
            stripe_span=stripes,
            max_stale=peak,
            windows=windows,
            window_total=window_total,
            open_window=run,
        )
