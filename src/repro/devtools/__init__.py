"""Developer tooling for the repro codebase.

Nothing in this package is imported by the simulation library at run
time; it exists to keep the library honest.  The main citizen is
:mod:`repro.devtools.lint` (``kdd-lint``), a domain-specific static
analyzer that enforces the determinism, error-taxonomy, and
unit-discipline invariants the reproduction's byte-for-byte guarantees
rest on.
"""

from __future__ import annotations
