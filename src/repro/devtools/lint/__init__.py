"""kdd-lint: AST-based determinism/taxonomy/unit linter for src/repro.

Public API::

    from repro.devtools.lint import lint_paths, lint_source, all_rules

    findings = lint_paths([Path("src/repro")])

See README.md ("Static analysis") for the command-line interface and
DESIGN.md for the invariants each rule encodes.
"""

from __future__ import annotations

from .baseline import apply_baseline, load_baseline, write_baseline
from .cli import main
from .engine import (
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    parse_suppressions,
    repro_relpath,
)
from .findings import META_CODE, Finding, fingerprint
from .rules import REGISTRY, Rule, all_rules, register

__all__ = [
    "Finding",
    "META_CODE",
    "REGISTRY",
    "Rule",
    "all_rules",
    "apply_baseline",
    "fingerprint",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "main",
    "parse_suppressions",
    "register",
    "repro_relpath",
    "write_baseline",
]
