"""Rule registry and the built-in RPR rules.

Each rule is an :class:`ast.NodeVisitor` subclass registered under a
stable ``RPRxxx`` code.  Rules receive one parsed module at a time via
:meth:`Rule.run` and report ``(line, col, message)`` tuples; scoping,
suppression, and baselines are the engine's job.

The rules encode the invariants behind the reproduction's
byte-for-byte determinism guarantee (see DESIGN.md):

==========  ===========================================================
RPR001      unseeded or global randomness in library code
RPR002      wall-clock reads inside simulation modules
RPR003      builtin exceptions raised instead of the repro.errors taxonomy
RPR004      iteration over sets without ``sorted()`` (hash-order hazard)
RPR005      float ``==`` / ``!=`` comparisons in stats/ and sim/
RPR006      mutable default arguments
RPR007      arithmetic mixing ``*_bytes`` and ``*_pages`` quantities
RPR008      naked ``except Exception`` swallowing the error taxonomy
RPR009      simulated-clock arithmetic outside ``repro/engine/``
==========  ===========================================================
"""

from __future__ import annotations

import ast
import re

from ...errors import ConfigError

#: Module directories (relative to the ``repro`` package root) that
#: hold *simulation* code, where wall-clock time is banned outright.
SIM_DIRS = ("sim", "cache", "raid", "core", "flash", "delta", "nvram", "faults",
            "engine", "serve")

#: Directories where exact float comparison is flagged (RPR005).
FLOAT_EQ_DIRS = ("stats", "sim", "engine")

#: The one directory allowed to advance simulated time (RPR009).
#: The harness/devtools side needs no allowlist constant: wall-clock
#: scoping is expressed positively through SIM_DIRS membership.
ENGINE_DIRS = ("engine",)


class Rule(ast.NodeVisitor):
    """Base class: one rule instance is created per linted file."""

    code: str = ""
    name: str = ""
    summary: str = ""

    def __init__(self, relpath: str) -> None:
        self.relpath = relpath
        self.findings: list[tuple[int, int, str]] = []

    @classmethod
    def applies_to(cls, relpath: str) -> bool:
        """Whether this rule runs on the module at ``relpath``."""
        return True

    def run(self, tree: ast.Module) -> list[tuple[int, int, str]]:
        self.visit(tree)
        return self.findings

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            (getattr(node, "lineno", 1), getattr(node, "col_offset", 0), message)
        )


REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    if cls.code in REGISTRY:
        raise ConfigError(f"duplicate rule code {cls.code}")
    REGISTRY[cls.code] = cls
    return cls


def all_rules() -> list[type[Rule]]:
    """Registered rules in code order (the engine's execution order)."""
    return [REGISTRY[code] for code in sorted(REGISTRY)]


def _in_dirs(relpath: str, dirs: tuple[str, ...]) -> bool:
    return relpath.split("/", 1)[0] in dirs


class _ImportTracker(Rule):
    """Rule helper that tracks module aliases and from-imports."""

    def __init__(self, relpath: str) -> None:
        super().__init__(relpath)
        # alias -> dotted module name, e.g. {"np": "numpy", "time": "time"}
        self.modules: dict[str, str] = {}
        # local name -> "module.attr", e.g. {"perf_counter": "time.perf_counter"}
        self.names: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.modules[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.names[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        self.generic_visit(node)

    def resolve_call(self, node: ast.Call) -> str | None:
        """Dotted name of a call target, resolved through imports.

        ``np.random.rand(...)`` -> ``"numpy.random.rand"`` when ``np``
        aliases numpy; ``perf_counter()`` -> ``"time.perf_counter"``
        after ``from time import perf_counter``.  Returns ``None`` for
        targets that are not import-rooted (locals, methods on
        objects).
        """
        parts: list[str] = []
        cur: ast.expr = node.func
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        parts.reverse()
        if cur.id in self.modules:
            return ".".join([self.modules[cur.id], *parts])
        if cur.id in self.names:
            return ".".join([self.names[cur.id], *parts])
        return None


#: numpy.random attributes that construct *seedable* generators (fine
#: to call; RPR001 separately checks default_rng's arguments).
_NP_SEEDABLE = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator",
     "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64"}
)


@register
class UnseededRandomness(_ImportTracker):
    code = "RPR001"
    name = "unseeded-randomness"
    summary = (
        "Global or unseeded randomness (random.*, legacy np.random.* "
        "globals, default_rng() without a seed) breaks cross-run and "
        "cross-worker reproducibility; thread an explicit seed or "
        "np.random.Generator instead."
    )

    def visit_Call(self, node: ast.Call) -> None:
        target = self.resolve_call(node)
        if target is not None:
            self._check(node, target)
        self.generic_visit(node)

    def _check(self, node: ast.Call, target: str) -> None:
        if target.startswith("random."):
            attr = target.split(".", 1)[1]
            if attr in ("Random", "SystemRandom") and (node.args or node.keywords):
                return  # random.Random(seed) is explicitly seeded
            self.report(
                node,
                f"call to {target}() uses the process-global random state; "
                "use a seeded np.random.Generator",
            )
            return
        if target.startswith("numpy.random."):
            attr = target.split(".", 2)[2]
            if "." in attr:
                return  # method on Generator etc., already seeded
            if attr not in _NP_SEEDABLE:
                self.report(
                    node,
                    f"legacy global np.random.{attr}() depends on hidden "
                    "state; use np.random.default_rng(seed)",
                )
            elif attr == "default_rng" and not node.args and not node.keywords:
                self.report(
                    node,
                    "default_rng() without a seed draws OS entropy; pass an "
                    "explicit seed",
                )


#: Call targets that read the wall clock.
_WALL_CLOCK = frozenset(
    {
        "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns", "time.process_time",
        "time.process_time_ns", "time.clock_gettime", "time.localtime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)


@register
class WallClock(_ImportTracker):
    code = "RPR002"
    name = "wall-clock"
    summary = (
        "Simulation modules must be pure functions of their inputs: "
        "reading the wall clock (time.time, perf_counter, datetime.now) "
        "makes results run-dependent.  Simulated time comes from the "
        "trace; only the harness may time real execution."
    )

    @classmethod
    def applies_to(cls, relpath: str) -> bool:
        return _in_dirs(relpath, SIM_DIRS)

    def visit_Call(self, node: ast.Call) -> None:
        target = self.resolve_call(node)
        if target in _WALL_CLOCK:
            self.report(
                node,
                f"wall-clock call {target}() in simulation code; simulated "
                "time must come from the trace/engine, not the host clock",
            )
        self.generic_visit(node)


#: Builtin exceptions that signal a *library* failure and must be
#: replaced by the repro.errors taxonomy.  TypeError, AssertionError,
#: NotImplementedError mark programming errors and deliberately
#: propagate unchanged (see repro.errors docstring); KeyError/IndexError/
#: StopIteration implement container and iterator protocols.
_FORBIDDEN_RAISES = frozenset(
    {"ValueError", "RuntimeError", "Exception", "BaseException",
     "OSError", "IOError", "EnvironmentError", "ArithmeticError",
     "LookupError", "BufferError"}
)


@register
class BuiltinRaise(Rule):
    code = "RPR003"
    name = "builtin-raise"
    summary = (
        "Library code raises from the repro.errors taxonomy so callers "
        "can catch library failures without masking programming errors; "
        "bare ValueError/RuntimeError/... escape that contract."
    )

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name in _FORBIDDEN_RAISES:
            self.report(
                node,
                f"raise {name} from library code; use a repro.errors class "
                "(ConfigError, SimulationError, ...) instead",
            )
        self.generic_visit(node)


def _is_set_expr(node: ast.expr, set_vars: dict[str, bool]) -> bool:
    """Statically-known set expression (literal, constructor, tracked var)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(node, ast.Name):
        return set_vars.get(node.id, False)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra (a | b, a - b, ...) over known sets
        return _is_set_expr(node.left, set_vars) and _is_set_expr(node.right, set_vars)
    return False


@register
class SetIteration(Rule):
    code = "RPR004"
    name = "set-iteration"
    summary = (
        "Iterating a set feeds hash order into simulation state, which "
        "varies across PYTHONHASHSEED values and sweep workers; wrap "
        "the iterable in sorted() to pin a total order."
    )

    def __init__(self, relpath: str) -> None:
        super().__init__(relpath)
        self._scopes: list[dict[str, bool]] = [{}]

    # -- scope tracking -------------------------------------------------
    def _walk_scope(self, node: ast.AST) -> None:
        self._scopes.append({})
        self.generic_visit(node)
        self._scopes.pop()

    visit_FunctionDef = _walk_scope
    visit_AsyncFunctionDef = _walk_scope
    visit_Lambda = _walk_scope

    def _set_vars(self) -> dict[str, bool]:
        return self._scopes[-1]

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = _is_set_expr(node.value, self._set_vars())
        for tgt in node.targets:
            if isinstance(tgt, ast.Name):
                self._set_vars()[tgt.id] = is_set
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            self._set_vars()[node.target.id] = _is_set_expr(
                node.value, self._set_vars()
            )
        self.generic_visit(node)

    # -- iteration contexts ---------------------------------------------
    def _check_iter(self, iterable: ast.expr) -> None:
        if _is_set_expr(iterable, self._set_vars()):
            self.report(
                iterable,
                "iteration over a set is hash-ordered and nondeterministic "
                "across workers; use sorted(...) to fix the order",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node: ast.AST) -> None:
        for gen in node.generators:  # type: ignore[attr-defined]
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_GeneratorExp = _visit_comp
    visit_DictComp = _visit_comp

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # building another set keeps the order hazard contained; only
        # flag once the result is *iterated*, which the contexts above
        # catch.
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # list(s) / tuple(s) materialise hash order into a sequence
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple", "enumerate")
            and len(node.args) == 1
        ):
            self._check_iter(node.args[0])
        self.generic_visit(node)


def _is_floatish(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    ):
        return True
    return False


@register
class FloatEquality(Rule):
    code = "RPR005"
    name = "float-equality"
    summary = (
        "Exact == / != against float values is brittle under "
        "re-association (parallel reduction order); compare with "
        "math.isclose or a tolerance."
    )

    @classmethod
    def applies_to(cls, relpath: str) -> bool:
        return _in_dirs(relpath, FLOAT_EQ_DIRS)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)) and (
                _is_floatish(left) or _is_floatish(right)
            ):
                self.report(
                    node,
                    "exact float == / != comparison; use math.isclose or "
                    "an explicit tolerance",
                )
                break
        self.generic_visit(node)


_MUTABLE_CTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
     "OrderedDict"}
)


@register
class MutableDefault(Rule):
    code = "RPR006"
    name = "mutable-default"
    summary = (
        "Mutable default arguments are shared across calls, leaking "
        "state between simulation runs; default to None (or use "
        "dataclasses.field(default_factory=...))."
    )

    def _check_args(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        for default in [*node.args.defaults, *node.args.kw_defaults]:
            if default is None:
                continue
            mutable = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CTORS
            )
            if mutable:
                self.report(
                    default,
                    f"mutable default argument in {node.name}(); default to "
                    "None and construct inside the function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_args(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_args(node)
        self.generic_visit(node)


_BYTES_TOKENS = frozenset({"bytes", "nbytes"})
_PAGES_TOKENS = frozenset({"pages", "npages"})
_TOKEN_SPLIT = re.compile(r"[_\W]+")


def _unit_of(node: ast.expr) -> str | None:
    """'bytes' / 'pages' classification of an operand by naming convention.

    Rate-valued names (``ops_per_page``, ``bytes_per_ms``) carry a
    *ratio*, not either unit, so they classify as unit-less — comparing
    two rates or scaling by one is legitimate arithmetic.
    """
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return None
    tokens = set(_TOKEN_SPLIT.split(name.lower()))
    if "per" in tokens:  # rates are dimensionless for unit mixing
        return None
    byteish = bool(tokens & _BYTES_TOKENS)
    pageish = bool(tokens & _PAGES_TOKENS)
    if byteish == pageish:  # untyped, or pathologically both
        return None
    return "bytes" if byteish else "pages"


@register
class UnitMixing(Rule):
    code = "RPR007"
    name = "unit-mixing"
    summary = (
        "Adding, subtracting, or comparing a *_bytes quantity against a "
        "*_pages quantity is a unit error; convert through repro.units "
        "(pages_for_bytes, DEFAULT_PAGE_SIZE) first.  Multiplication "
        "and division are exempt (they perform the conversion)."
    )

    def _check_pair(self, node: ast.AST, left: ast.expr, right: ast.expr) -> None:
        lu, ru = _unit_of(left), _unit_of(right)
        if lu is not None and ru is not None and lu != ru:
            self.report(
                node,
                f"mixes a {lu}-valued name with a {ru}-valued name; convert "
                "via repro.units before combining",
            )

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub, ast.Mod)):
            self._check_pair(node, node.left, node.right)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE)):
                self._check_pair(node, left, right)
        self.generic_visit(node)


#: Over-broad exception classes a handler must not silently absorb.
_BROAD_CATCHES = frozenset({"Exception", "BaseException"})


def _catches_broadly(handler: ast.ExceptHandler) -> bool:
    """Whether the handler matches Exception/BaseException or everything."""
    def broad(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in _BROAD_CATCHES
        if isinstance(expr, ast.Attribute):
            return expr.attr in _BROAD_CATCHES
        return False

    if handler.type is None:
        return True  # bare except:
    if isinstance(handler.type, ast.Tuple):
        return any(broad(el) for el in handler.type.elts)
    return broad(handler.type)


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body (re-)raises on every analysis we attempt.

    A ``raise`` anywhere in the handler's own statements counts —
    including ``raise SomeError(...) from exc`` conversions into the
    taxonomy — but raises inside functions *defined* in the handler do
    not execute when the handler runs, so nested scopes are skipped.
    """
    stack: list[ast.AST] = list(handler.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


@register
class BroadExcept(Rule):
    code = "RPR008"
    name = "broad-except"
    summary = (
        "`except Exception` (or bare except) in library code swallows "
        "programming errors together with taxonomy failures, hiding "
        "determinism bugs behind fallback paths; catch a repro.errors "
        "class, a specific builtin, or re-raise."
    )

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if _catches_broadly(node) and not _reraises(node):
            what = "bare except:" if node.type is None else \
                "except over Exception/BaseException"
            self.report(
                node,
                f"{what} swallows the error silently; catch a repro.errors "
                "class (ReproError subclass) or re-raise",
            )
        self.generic_visit(node)


def _mentions_clock_state(node: ast.expr) -> str | None:
    """Name of the simulated-clock state ``node`` touches, if any."""
    if isinstance(node, ast.Attribute) and node.attr == "busy_until":
        return ".busy_until"
    if isinstance(node, ast.Name) and node.id == "earliest":
        return "earliest"
    return None


@register
class ClockArithmetic(Rule):
    code = "RPR009"
    name = "clock-arithmetic"
    summary = (
        "Simulated time advances only inside repro.engine: mutating a "
        "device's busy_until clock or computing start times with "
        "max(earliest, ...) elsewhere re-creates the ad-hoc scheduling "
        "the engine replaced and silently forks the timing model.  Serve "
        "operations through an engine resource instead."
    )

    @classmethod
    def applies_to(cls, relpath: str) -> bool:
        return not _in_dirs(relpath, ENGINE_DIRS)

    def _check_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Attribute) and target.attr == "busy_until":
            self.report(
                target,
                "direct mutation of a device busy_until clock outside "
                "repro/engine/; device timing belongs to the engine's "
                "resources",
            )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for el in target.elts:
                self._check_target(el)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "max":
            for arg in node.args:
                what = _mentions_clock_state(arg)
                if what is not None:
                    self.report(
                        node,
                        f"max({what}, ...) start-time arithmetic outside "
                        "repro/engine/; queue-discipline decisions belong "
                        "to the engine's resources",
                    )
                    break
        self.generic_visit(node)
