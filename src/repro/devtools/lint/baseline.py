"""Baseline files: grandfather existing findings without suppressing new ones.

A baseline is a JSON document of finding fingerprints (see
:func:`repro.devtools.lint.findings.fingerprint`).  Findings whose
fingerprint appears in the baseline are filtered out; everything else
— including a *new* occurrence of a grandfathered pattern — still
fails the run.  Stale fingerprints (fixed findings) are reported so
baselines shrink monotonically instead of rotting.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from ...errors import ConfigError
from .findings import Finding, fingerprint

_VERSION = 1


def _fingerprints(findings: list[Finding]) -> list[tuple[Finding, str]]:
    """Pair each finding with its occurrence-disambiguated fingerprint."""
    seen: Counter[tuple[str, str, str]] = Counter()
    out: list[tuple[Finding, str]] = []
    for finding in sorted(findings, key=Finding.sort_key):
        key = (finding.code, finding.relpath, finding.source.strip())
        out.append((finding, fingerprint(finding, seen[key])))
        seen[key] += 1
    return out


def write_baseline(path: Path, findings: list[Finding]) -> int:
    """Write a baseline covering ``findings``; returns the entry count."""
    prints = sorted(fp for _, fp in _fingerprints(findings))
    doc = {"version": _VERSION, "fingerprints": prints}
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return len(prints)


def load_baseline(path: Path) -> set[str]:
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("version") != _VERSION:
        raise ConfigError(
            f"baseline {path}: expected a v{_VERSION} kdd-lint baseline"
        )
    prints = doc.get("fingerprints", [])
    if not isinstance(prints, list) or not all(isinstance(p, str) for p in prints):
        raise ConfigError(f"baseline {path}: 'fingerprints' must be strings")
    return set(prints)


def apply_baseline(
    findings: list[Finding], baseline: set[str]
) -> tuple[list[Finding], int]:
    """Filter grandfathered findings.

    Returns ``(kept_findings, stale_count)`` where ``stale_count`` is
    the number of baseline entries that matched nothing (candidates for
    removal from the baseline file).
    """
    kept: list[Finding] = []
    matched: set[str] = set()
    for finding, fp in _fingerprints(findings):
        if fp in baseline:
            matched.add(fp)
        else:
            kept.append(finding)
    return sorted(kept, key=Finding.sort_key), len(baseline - matched)
