"""kdd-lint engine: file walking, suppressions, and finding assembly.

The engine is itself held to the determinism bar it enforces: files
are visited in sorted order, rules run in code order, and findings are
sorted by a stable key, so two runs over the same tree produce
byte-identical output regardless of filesystem enumeration order.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path, PurePosixPath

from ...errors import ConfigError
from .findings import META_CODE, Finding
from .rules import REGISTRY, Rule, all_rules

#: Inline suppression comment: a hash, the tool name, a colon, then
#: ``disable=`` followed by one code, a comma list, or ``all`` (see the
#: examples in :func:`parse_suppressions`'s docstring).  One syntax is
#: shared by every checker — kdd-lint reads ``kdd-lint:`` comments and
#: the whole-program analyzer reads ``kdd-analyze:`` ones — so per-tool
#: patterns are compiled on demand from the same template.
_SUPPRESS_RES: dict[str, re.Pattern[str]] = {}

_ALL = "all"


def _suppress_re(tool: str) -> re.Pattern[str]:
    pattern = _SUPPRESS_RES.get(tool)
    if pattern is None:
        pattern = re.compile(
            rf"#\s*{re.escape(tool)}:\s*disable=([A-Za-z0-9,\s]+)"
        )
        _SUPPRESS_RES[tool] = pattern
    return pattern


def parse_suppressions(source: str, tool: str = "kdd-lint") -> dict[int, list[str]]:
    """Map line number -> suppressed codes, parsed from comment tokens.

    Recognised forms (always on the line of the finding)::

        x = time.time()        # kdd-lint: disable=RPR002
        y = {a} | {b}          # kdd-lint: disable=RPR004,RPR007
        z = random.random()    # kdd-lint: disable=all
        idx = arr.astype(d)    # kdd-analyze: disable=RPR302

    ``tool`` selects which checker's comments to read; the analyzer
    passes ``"kdd-analyze"`` and gets the exact same grammar and
    unused-suppression semantics as kdd-lint.  Comments are found with
    :mod:`tokenize` rather than substring matching, so a disable
    marker inside a string literal is not treated as a suppression.
    Unparseable source yields no suppressions (the engine reports the
    syntax error separately).
    """
    out: dict[int, list[str]] = {}
    reader = io.StringIO(source).readline
    try:
        tokens = list(tokenize.generate_tokens(reader))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    pattern = _suppress_re(tool)
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = pattern.search(tok.string)
        if match is None:
            continue
        codes = [c.strip() for c in match.group(1).split(",")]
        line = tok.start[0]
        out.setdefault(line, []).extend(
            c.lower() if c.lower() == _ALL else c.upper() for c in codes if c
        )
    return out


def repro_relpath(path: Path) -> str:
    """Path relative to the ``repro`` package root, as a posix string.

    ``src/repro/sim/system.py`` -> ``sim/system.py``.  Files outside a
    ``repro`` directory fall back to their basename, which leaves them
    unscoped (path-scoped rules treat them as top-level modules).
    """
    parts = path.resolve().parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            rel = parts[i + 1 :]
            if rel:
                return str(PurePosixPath(*rel))
    return path.name


def rules_for(relpath: str, select: set[str] | None = None) -> list[type[Rule]]:
    chosen = all_rules()
    if select is not None:
        chosen = [r for r in chosen if r.code in select]
    return [r for r in chosen if r.applies_to(relpath)]


def lint_source(
    source: str,
    path: str = "<string>",
    relpath: str | None = None,
    select: set[str] | None = None,
) -> list[Finding]:
    """Lint one module's source text; returns sorted, unsuppressed findings.

    ``relpath`` positions the module for path-scoped rules (RPR002,
    RPR005); tests use this to lint fixture snippets "as if" they lived
    under ``sim/`` etc.  Includes RPR000 meta-findings for suppression
    comments that suppressed nothing.
    """
    if relpath is None:
        relpath = path if "/" not in path else repro_relpath(Path(path))
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        line = exc.lineno or 1
        col = (exc.offset or 1) - 1
        return [
            Finding(path, relpath, line, col, META_CODE,
                    f"syntax error: {exc.msg}")
        ]

    lines = source.splitlines()

    def src_line(lineno: int) -> str:
        return lines[lineno - 1] if 0 < lineno <= len(lines) else ""

    raw: list[Finding] = []
    for rule_cls in rules_for(relpath, select):
        for line, col, message in rule_cls(relpath).run(tree):
            raw.append(
                Finding(path, relpath, line, col, rule_cls.code, message,
                        source=src_line(line))
            )

    suppressions = parse_suppressions(source)
    used: set[tuple[int, str]] = set()
    kept: list[Finding] = []
    for finding in raw:
        codes = suppressions.get(finding.line, [])
        if finding.code in codes:
            used.add((finding.line, finding.code))
        elif _ALL in codes:
            used.add((finding.line, _ALL))
        else:
            kept.append(finding)

    for line in sorted(suppressions):
        for code in suppressions[line]:
            if (line, code) in used:
                continue
            if code != _ALL and code != META_CODE and code not in REGISTRY:
                message = f"suppression of unknown rule {code}"
            else:
                message = f"unused suppression of {code}: no {code} finding on this line"
            if META_CODE in suppressions[line]:
                continue  # explicitly waived, e.g. shared fixture lines
            kept.append(
                Finding(path, relpath, line, 0, META_CODE, message,
                        source=src_line(line))
            )

    return sorted(kept, key=Finding.sort_key)


def lint_file(path: Path, select: set[str] | None = None) -> list[Finding]:
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigError(f"cannot read {path}: {exc}") from exc
    return lint_source(source, path=str(path), relpath=repro_relpath(path),
                       select=select)


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: set[Path] = set()
    out: list[Path] = []
    for path in paths:
        if path.is_dir():
            candidates = sorted(p for p in path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        elif not path.exists():
            raise ConfigError(f"no such file or directory: {path}")
        else:
            candidates = []
        for cand in candidates:
            resolved = cand.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(cand)
    return sorted(out, key=lambda p: str(p))


def lint_paths(paths: list[Path], select: set[str] | None = None) -> list[Finding]:
    """Lint every ``.py`` file under ``paths``; deterministic order."""
    findings: list[Finding] = []
    for file in iter_python_files(paths):
        findings.extend(lint_file(file, select=select))
    return sorted(findings, key=Finding.sort_key)
