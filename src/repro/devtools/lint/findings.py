"""Finding record shared by every kdd-lint rule and output format."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

#: Code reserved for the linter's own meta-diagnostics (unused
#: suppressions).  Real rules use RPR001..; RPR000 can be suppressed
#: like any other code.
META_CODE = "RPR000"


@dataclass(frozen=True)
class Finding:
    """One diagnostic at a specific source location.

    ``path`` is the path as given on the command line (for display);
    ``relpath`` is the module path relative to the ``repro`` package
    root (for rule scoping and baseline fingerprints, so baselines
    survive checking out the tree at a different prefix).
    """

    path: str
    relpath: str
    line: int
    col: int
    code: str
    message: str
    source: str = ""

    def sort_key(self) -> tuple[str, int, int, str, str]:
        return (self.relpath, self.line, self.col, self.code, self.message)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "code": self.code,
            "col": self.col,
            "line": self.line,
            "message": self.message,
            "path": self.relpath,
        }


def fingerprint(finding: Finding, occurrence: int) -> str:
    """Stable identity of a finding for baseline files.

    Keyed on the rule code, module-relative path, and the *stripped
    source line* rather than the line number, so unrelated edits that
    shift code up or down do not invalidate a baseline.  ``occurrence``
    disambiguates identical lines within one file (0-based, in source
    order).
    """
    text = "\x1f".join(
        [finding.code, finding.relpath, finding.source.strip(), str(occurrence)]
    )
    return hashlib.sha1(text.encode()).hexdigest()
