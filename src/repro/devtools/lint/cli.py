"""``kdd-lint`` command line (also reachable as ``kdd-repro lint``).

Exit codes: 0 clean, 1 findings remain after suppressions/baseline,
2 usage or configuration error.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path

from ...errors import ReproError
from .baseline import apply_baseline, load_baseline, write_baseline
from .engine import lint_paths
from .findings import Finding
from .rules import REGISTRY, all_rules

_DEFAULT_TARGET = "src/repro"


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="kdd-lint",
        description="Domain-specific static analysis for the repro library: "
        "determinism, error-taxonomy, and unit-discipline invariants.",
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help=f"files or directories to lint (default: {_DEFAULT_TARGET})",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="output format (default %(default)s); json output is stable "
        "and byte-identical across runs",
    )
    parser.add_argument(
        "--select", metavar="CODES", default=None,
        help="comma-separated rule codes to run (default: all rules)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", type=Path, default=None,
        help="JSON baseline of grandfathered findings to ignore",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline to cover all current findings, then exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _list_rules() -> int:
    for rule in all_rules():
        print(f"{rule.code} {rule.name}")
        print(f"    {rule.summary}")
    return 0


def _parse_select(spec: str) -> set[str]:
    codes = {c.strip().upper() for c in spec.split(",") if c.strip()}
    unknown = sorted(codes - set(REGISTRY))
    if unknown:
        raise ReproError(
            f"unknown rule codes: {', '.join(unknown)}; "
            f"known: {', '.join(sorted(REGISTRY))}"
        )
    return codes


def _render_json(findings: list[Finding]) -> str:
    counts = Counter(f.code for f in findings)
    doc = {
        "version": 1,
        "findings": [f.to_json() for f in findings],
        "counts": dict(sorted(counts.items())),
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if args.list_rules:
        return _list_rules()
    if args.update_baseline and args.baseline is None:
        print("kdd-lint: --update-baseline requires --baseline", file=sys.stderr)
        return 2

    paths = [Path(p) for p in (args.paths or [_DEFAULT_TARGET])]
    try:
        select = _parse_select(args.select) if args.select else None
        findings = lint_paths(paths, select=select)

        if args.update_baseline:
            count = write_baseline(args.baseline, findings)
            print(f"kdd-lint: wrote {count} fingerprint(s) to {args.baseline}",
                  file=sys.stderr)
            return 0

        stale = 0
        if args.baseline is not None:
            findings, stale = apply_baseline(findings, load_baseline(args.baseline))
    except ReproError as exc:
        print(f"kdd-lint: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(_render_json(findings))
    else:
        for finding in findings:
            print(finding.render())
        if findings:
            counts = Counter(f.code for f in findings)
            summary = ", ".join(f"{c}: {n}" for c, n in sorted(counts.items()))
            print(f"\n{len(findings)} finding(s) ({summary})")
        else:
            print("kdd-lint: clean")
    if stale:
        print(
            f"kdd-lint: {stale} stale baseline entr{'y' if stale == 1 else 'ies'} "
            "(fixed findings); regenerate with --update-baseline",
            file=sys.stderr,
        )
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
