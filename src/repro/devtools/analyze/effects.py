"""Effect/write-set analysis (RPR201-RPR207).

Infers, per project function, the set of object attributes it may
mutate — assignments, augmented assignments and ``del`` through
``self``, through locals aliased to ``self`` attributes, and through
resolved call boundaries, closed over the call graph — and enforces
three contract families on top of the write-sets:

* **Mirror coherence** (RPR201/RPR202/RPR203).  The membership
  directory pair of :class:`repro.cache.sets.CacheSets` (``_index``
  and its columnar mirror ``_lba_table``) plus the membership epoch
  may only be written by a method decorated
  :func:`repro.contracts.mutates_membership`; every choke point must
  bump the epoch; and the batch readers the columnar fast path
  snapshots through (``classify`` and friends) must be write-free
  with respect to membership state.
* **Fast-path effect subsumption** (RPR204).  Each policy's columnar
  fast hook (``_write_fast``/``_read_hit_fast``/``_bulk_read_hits``)
  may only write what its scalar counterpart writes plus the declared
  :class:`FastAccounting` delta surface — a fast path can never touch
  state the scalar path doesn't, the property the hypothesis
  equivalence suite only samples.
* **Sweep race detection** (RPR205/RPR206).  Module-level mutable
  state (``global`` writes, mutation of module constants, class
  attributes) and caching decorators reachable from the sweep
  process-pool worker entry points and from engine hooks are flagged
  unless allowlisted, statically pinning process-pool determinism.
* **Recovery read-surface** (RPR207).  The interprocedural *read*
  closure of the power-failure recovery entry point must stay inside
  the declared crash-surviving surface (NVRAM words and flash page
  images); a recovery path that consults live volatile state only
  looks correct until a real power loss.

Soundness note: like the exception-flow analysis, the resolver covers
module functions, ``self.m()`` through the concrete receiver class,
construction-tracked ``self.attr.m()``, plain local aliases
(``x = self.attr``) and derived locals (``x = self.attr[i]``,
``x = self.attr.get(...)``), and ``super().m()`` with a single project
base.  Mutating calls on receivers it cannot resolve fall back to a
method-name heuristic (:data:`MUTATING_METHODS`).  Objects passed as
call arguments are assumed not to be mutated by the callee.  The sets
are useful, not complete — the fixtures in the test suite pin exactly
what each rule proves.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field

from ..lint.findings import Finding
from .project import FuncInfo, ModuleInfo, Project, finding_at

# -- contract configuration --------------------------------------------------

CONTRACTS_MODULE = "repro.contracts"
MUTATES_DECORATOR = f"{CONTRACTS_MODULE}:mutates_membership"

SETS_CLASS = "repro.cache.sets:CacheSets"
#: The membership directory pair: the python-side index and its
#: columnar int64 mirror.  Writing either outside a choke point is
#: exactly the silent-divergence bug the mirror epoch exists to catch.
MEMBERSHIP_ATTRS = frozenset({"_index", "_lba_table"})
#: The membership epoch attribute; protected like the pair itself so
#: the epoch can only move when membership (or the mirror) does.
EPOCH_ATTR = "mutations"
#: CacheSets methods the columnar driver consumes on snapshots
#: (``cache/common.py::_process_columnar``); must not write membership.
BATCH_READERS = ("classify", "resident_in_range", "set_of_batch", "touch_many")

#: Columnar fast hook -> scalar counterpart whose write-set must
#: subsume it (plus the FastAccounting delta surface).
FAST_SCALAR_PAIRS = (
    ("_write_fast", "write"),
    ("_read_hit_fast", "read"),
    ("_bulk_read_hits", "read"),
)
#: The declared FastAccounting delta surface: the only attribute a
#: fast path may write beyond its scalar counterpart (the O(1) RAID
#: counter accumulator installed by ``_process_columnar``).
FAST_DELTA_ATTRS = frozenset({"_fast"})

#: Sweep process-pool worker entry points: everything these reach runs
#: inside a forked/spawned worker and must not share module state.
SWEEP_ENTRY_POINTS = (
    ("repro.harness.sweep", (
        "_execute_cell", "_run_sim_cell", "_run_replay_cell",
        "_run_fio_cell", "_run_stats_cell", "_run_faults_cell",
        "_run_reliability_cell", "_run_serve_cell",
    )),
    ("repro.harness.faultsweep", ("run_faults_cell", "demo_op_trace")),
    ("repro.harness.relsweep", ("run_reliability_cell",)),
    ("repro.harness.servesweep", ("run_serve_cell",)),
)
#: Engine hooks run inside worker cells too (fault pipelines,
#: instrumentation); every method of every subclass is an entry point.
HOOK_BASE = "repro.engine.hooks:EngineHook"
#: Worker-reachable functions allowed to hold module-level state:
#: deliberate per-process memoisation whose cache key captures every
#: input (documented in DESIGN §12).
SWEEP_ALLOWLIST = frozenset({"repro.harness.sweep:_trace_for"})

#: Method names assumed to mutate an *unresolved* receiver (builtin
#: containers, external objects).  Resolved receivers use the callee's
#: computed write-set instead.
MUTATING_METHODS = frozenset({
    "add", "append", "clear", "discard", "drain", "extend", "insert",
    "move_to_end", "pop", "popitem", "push", "put", "record", "remove",
    "reverse", "setdefault", "sort", "trim", "update", "write",
})

#: functools caching decorators (per-process state by construction).
CACHE_DECORATORS = frozenset({"cache", "lru_cache"})

#: The power-failure recovery entry point (RPR207).  Its whole-program
#: *read* closure must stay inside the declared crash-surviving
#: surface below: recovery consulting any other state is exactly the
#: bug the crash matrix exists to catch — a recovery that "works" in
#: tests because it peeks at live in-memory state that would be gone
#: after a real power loss.
RECOVERY_ENTRY = "repro.core.recovery:recover_from_power_failure"
#: Attributes of the crashed object the recovery may consult, and the
#: class each resolves to (``repro.faults.crash._RecoveryStandin``
#: mirrors exactly this shape when recovering from a snapshot).
RECOVERY_ROOTS = {
    "mlog": "repro.cache.mlog:MetadataLog",
    "staging": "repro.nvram.staging:StagingBuffer",
}
#: Per class: the attributes that survive a power failure — NVRAM
#: words (head/tail counters, retention lists, buffered entries) and
#: committed flash page images.  Everything else on these classes is
#: volatile bookkeeping.
RECOVERY_SURFACE = {
    "repro.cache.mlog:MetadataLog": frozenset({
        "head", "tail", "_page_image", "buffer", "_committing",
        "_relocating",
    }),
    "repro.nvram.staging:StagingBuffer": frozenset({
        "_entries", "_flushing",
    }),
    "repro.nvram.metabuffer:MetadataBuffer": frozenset({"_entries"}),
}

_PROTECTED = MEMBERSHIP_ATTRS | {EPOCH_ATTR}
_INIT_METHODS = frozenset({"__init__", "__post_init__"})

#: Chain marker for a subscript step (``x[...]``).
_SUB = "[]"


# -- intraprocedural extraction ----------------------------------------------


def _shallow_walk(node: ast.AST) -> list[ast.AST]:
    """Walk a function body without entering nested defs/lambdas/classes."""
    out: list[ast.AST] = []
    stack = list(ast.iter_child_nodes(node))
    while stack:
        cur = stack.pop()
        out.append(cur)
        for child in ast.iter_child_nodes(cur):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda, ast.ClassDef)):
                continue
            stack.append(child)
    return out


def _chain(expr: ast.expr) -> tuple[ast.AST, list[str]]:
    """Decompose an Attribute/Subscript chain into (root, parts).

    ``self._lba_table[i]`` -> (Name self, ["_lba_table", "[]"]).
    """
    parts: list[str] = []
    node: ast.AST = expr
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            parts.append(_SUB)
            node = node.value
        else:
            return node, parts[::-1]


@dataclass
class FuncEffects:
    """Intraprocedural effect facts for one function."""

    #: attr root -> first write site: any mutation reached through a
    #: ``self`` attribute (direct, aliased, derived, or mutator call).
    self_writes: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: attr root -> first *identity-level* write site: ``self.X = ``,
    #: ``self.X[...] = ``, ``del self.X[...]``, or a mutator call
    #: directly on ``self.X``/a plain alias with an unresolved class.
    container_writes: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: (attr, member, line, col): ``self.A.B = `` / ``self.A.B[...] = ``
    #: style raw writes one object deep (checked against CacheSets).
    foreign_writes: list[tuple[str, str, int, int]] = field(default_factory=list)
    #: same-receiver calls: (method name, via_super).
    self_calls: list[tuple[str, bool]] = field(default_factory=list)
    #: sub-object calls: (attr, receiver class id or "", method, line, col).
    attr_calls: list[tuple[str, str, str, int, int]] = field(default_factory=list)
    #: resolved call targets (function ids) for reachability.
    callees: list[str] = field(default_factory=list)
    #: (description, line, col) module-state mutations (RPR205).
    global_mutations: list[tuple[str, int, int]] = field(default_factory=list)
    #: (decorator display name, line, col) caching decorators (RPR206).
    cache_decorators: list[tuple[str, int, int]] = field(default_factory=list)
    #: carries @mutates_membership.
    mutates_decorated: bool = False


class _FuncVisitor:
    """One pass over a function body collecting :class:`FuncEffects`."""

    def __init__(self, project: Project, func: FuncInfo) -> None:
        self.project = project
        self.func = func
        self.mod: ModuleInfo = project.modules[func.module]
        self.class_id = (
            f"{func.module}:{func.class_name}" if func.class_name else ""
        )
        self.eff = FuncEffects()
        self.nodes = _shallow_walk(func.node)
        self._collect_scopes()
        self._collect_aliases()
        self._collect_decorators()
        for node in self.nodes:
            self._visit(node)

    # -- scope and alias maps ------------------------------------------------

    def _collect_scopes(self) -> None:
        self.globals_decl: set[str] = set()
        self.locals: set[str] = set()
        args = self.func.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            self.locals.add(arg.arg)
        if args.vararg is not None:
            self.locals.add(args.vararg.arg)
        if args.kwarg is not None:
            self.locals.add(args.kwarg.arg)
        for node in self.nodes:
            if isinstance(node, ast.Global):
                self.globals_decl.update(node.names)
            elif isinstance(node, ast.Name) and \
                    isinstance(node.ctx, (ast.Store, ast.Del)):
                self.locals.add(node.id)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    self.locals.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ExceptHandler) and node.name:
                self.locals.add(node.name)
        self.locals -= self.globals_decl

    def _alias_of_value(self, value: ast.expr) -> tuple[str, bool] | None:
        """(root attr, is_direct) when a value is rooted at ``self``."""
        via_call = False
        if isinstance(value, ast.Call):
            value = value.func
            via_call = True
        node, parts = _chain(value)
        if not isinstance(node, ast.Name):
            return None
        if node.id == "self" and self.class_id and parts:
            if via_call and len(parts) == 1 and \
                    self.project.find_method(self.class_id, parts[0]):
                return None  # self.method(...): a call, not an attr root
            return parts[0], not via_call and parts == [parts[0]]
        if node.id in self.aliases:
            root, direct = self.aliases[node.id]
            return root, direct and not via_call and not parts
        return None

    def _collect_aliases(self) -> None:
        """Locals rooted at a ``self`` attribute (plain or derived)."""
        self.aliases: dict[str, tuple[str, bool]] = {}
        #: locals constructed from a project class (``v = Cls(); v.m()``).
        self.local_classes: dict[str, str] = {}
        for node in self.nodes:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                if isinstance(node.value, ast.Call):
                    cls = self.project.resolve_class_expr(
                        self.mod, node.value.func)
                    if cls is not None:
                        self.local_classes.setdefault(name, cls.id)
                alias = self._alias_of_value(node.value)
                if alias is not None:
                    self.aliases.setdefault(name, alias)
            elif isinstance(node, ast.NamedExpr) and \
                    isinstance(node.target, ast.Name):
                alias = self._alias_of_value(node.value)
                if alias is not None:
                    self.aliases.setdefault(node.target.id, alias)
            elif isinstance(node, (ast.For, ast.AsyncFor)) and \
                    isinstance(node.target, ast.Name):
                alias = self._alias_of_value(node.iter)
                if alias is not None:  # loop vars are always derived
                    self.aliases.setdefault(node.target.id, (alias[0], False))

    def _collect_decorators(self) -> None:
        for dec in self.func.node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            if self.project.resolve_func_expr(self.mod, target) == \
                    MUTATES_DECORATOR:
                self.eff.mutates_decorated = True
            name = self._cache_decorator_name(target)
            if name is not None:
                self.eff.cache_decorators.append(
                    (name, dec.lineno, dec.col_offset))

    def _cache_decorator_name(self, target: ast.expr) -> str | None:
        if isinstance(target, ast.Name):
            binding = self.mod.bindings.get(target.id)
            if binding is not None and binding.module == "functools" and \
                    binding.symbol in CACHE_DECORATORS:
                return binding.symbol
        if isinstance(target, ast.Attribute) and \
                isinstance(target.value, ast.Name) and \
                target.attr in CACHE_DECORATORS:
            binding = self.mod.bindings.get(target.value.id)
            if binding is not None and binding.module == "functools" and \
                    binding.symbol == "":
                return target.attr
        return None

    # -- node dispatch -------------------------------------------------------

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._write_target(target)
        elif isinstance(node, ast.AugAssign):
            self._write_target(node.target)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._write_target(node.target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._write_target(target)
        elif isinstance(node, ast.Call):
            self._handle_call(node)

    # -- write targets -------------------------------------------------------

    def _attr_class_of(self, attr: str) -> str:
        """Construction-tracked class of ``self.<attr>`` ("" if unknown)."""
        if not self.class_id:
            return ""
        for cid in self.project.class_mro(self.class_id):
            found = self.project.classes[cid].attr_classes.get(attr)
            if found is not None:
                return found
        return ""

    def _module_state_desc(self, name: str, parts: list[str]) -> str | None:
        resolved = self.project._chase(self.mod.name, name)
        if resolved is not None and resolved in self.project.classes:
            if parts and parts[0] is not _SUB:
                return f"class attribute '{name}.{parts[0]}'"
            return f"class attribute table '{name}'"
        if self.mod.symbols.get(name) == "const":
            return f"module-level '{name}'"
        binding = self.mod.bindings.get(name)
        if binding is not None and binding.symbol and \
                binding.module in self.project.modules:
            site = self.project.resolve_symbol(binding.module, binding.symbol)
            if site is not None and site[1] == "const":
                return f"module-level '{name}' (from {site[0]})"
        return None

    def _write_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._write_target(element)
            return
        node, parts = _chain(target)
        line, col = target.lineno, target.col_offset
        if isinstance(node, ast.Call):
            func = node.func  # type(self).attr = ... / type(x).attr = ...
            if isinstance(func, ast.Name) and func.id == "type" and parts:
                self.eff.global_mutations.append(
                    (f"class attribute 'type(...).{parts[0]}'", line, col))
            return
        if not isinstance(node, ast.Name):
            return
        name = node.id
        if name == "self" and self.class_id and parts:
            root = parts[0]
            self.eff.self_writes.setdefault(root, (line, col))
            if len(parts) == 1 or (len(parts) == 2 and parts[1] == _SUB):
                self.eff.container_writes.setdefault(root, (line, col))
            elif parts[1] != _SUB and (
                    len(parts) == 2 or (len(parts) == 3 and parts[2] == _SUB)):
                self.eff.foreign_writes.append((root, parts[1], line, col))
            return
        if name in self.aliases:
            if not parts:
                return  # rebinding the local itself mutates nothing
            root, direct = self.aliases[name]
            self.eff.self_writes.setdefault(root, (line, col))
            if direct and len(parts) == 1 and parts[0] == _SUB:
                self.eff.container_writes.setdefault(root, (line, col))
            elif direct and parts[0] != _SUB and (
                    len(parts) == 1 or (len(parts) == 2 and parts[1] == _SUB)):
                self.eff.foreign_writes.append((root, parts[0], line, col))
            return
        if not parts:
            if name in self.globals_decl:
                self.eff.global_mutations.append(
                    (f"module global '{name}'", line, col))
            return
        if name in self.locals:
            return
        desc = self._module_state_desc(name, parts)
        if desc is not None:
            self.eff.global_mutations.append((desc, line, col))

    # -- calls ---------------------------------------------------------------

    def _handle_call(self, call: ast.Call) -> None:
        self.eff.callees.extend(self._static_callees(call))
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        method = func.attr
        line, col = call.lineno, call.col_offset
        node, parts = _chain(func.value)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "super" and not parts and self.class_id:
            self.eff.self_calls.append((method, True))
            return
        if not isinstance(node, ast.Name):
            return
        name = node.id
        if name == "self" and self.class_id:
            if not parts:
                self.eff.self_calls.append((method, False))
            elif len(parts) == 1:
                attr_cls = self._attr_class_of(parts[0])
                self.eff.attr_calls.append(
                    (parts[0], attr_cls, method, line, col))
                if not attr_cls and method in MUTATING_METHODS:
                    # Unresolved receiver mutated in place: an
                    # identity-level write on the attribute itself.
                    self.eff.self_writes.setdefault(parts[0], (line, col))
                    self.eff.container_writes.setdefault(
                        parts[0], (line, col))
            elif method in MUTATING_METHODS:
                self.eff.self_writes.setdefault(parts[0], (line, col))
                if parts[1] != _SUB and len(parts) == 2:
                    self.eff.foreign_writes.append(
                        (parts[0], parts[1], line, col))
            return
        if name in self.aliases:
            root, direct = self.aliases[name]
            if not parts and direct:
                attr_cls = self._attr_class_of(root)
                self.eff.attr_calls.append(
                    (root, attr_cls, method, line, col))
                if not attr_cls and method in MUTATING_METHODS:
                    self.eff.self_writes.setdefault(root, (line, col))
                    self.eff.container_writes.setdefault(root, (line, col))
            elif method in MUTATING_METHODS:
                self.eff.self_writes.setdefault(root, (line, col))
                if direct and parts and parts[0] != _SUB and len(parts) == 1:
                    self.eff.foreign_writes.append(
                        (root, parts[0], line, col))
            return
        if name not in self.locals and method in MUTATING_METHODS:
            desc = self._module_state_desc(name, parts or [_SUB])
            if desc is not None:
                self.eff.global_mutations.append((desc, line, col))

    def _static_callees(self, call: ast.Call) -> list[str]:
        """Resolved call targets, for the reachability graph."""
        project = self.project
        resolved = project.resolve_func_expr(self.mod, call.func)
        if resolved is not None:
            if resolved in project.functions:
                return [resolved]
            if resolved in project.classes:
                out = []
                for name in ("__init__", "__post_init__"):
                    method = project.find_method(resolved, name)
                    if method is not None:
                        out.append(method.id)
                return out
            return []
        func = call.func
        if not isinstance(func, ast.Attribute):
            return []
        node, parts = _chain(func.value)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "super" and not parts and self.class_id:
            bases = project.classes[self.class_id].bases
            if len(bases) == 1:
                method = project.find_method(bases[0], func.attr)
                if method is not None:
                    return [method.id]
            return []
        if not isinstance(node, ast.Name):
            return []
        receiver = ""
        if not parts:
            if node.id == "self" and self.class_id:
                receiver = self.class_id
            elif node.id in self.local_classes:
                receiver = self.local_classes[node.id]
        elif node.id == "self" and len(parts) == 1 and self.class_id:
            receiver = self._attr_class_of(parts[0])
        if receiver:
            method = project.find_method(receiver, func.attr)
            if method is not None:
                return [method.id]
        return []


# -- interprocedural analysis ------------------------------------------------


class EffectAnalysis:
    """Write-set closures and contract checks over one :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.effects: dict[str, FuncEffects] = {
            fid: _FuncVisitor(project, project.functions[fid]).eff
            for fid in sorted(project.functions)
        }
        self._closure_memo: dict[tuple[str, str], frozenset[str]] = {}
        self._in_progress: set[tuple[str, str]] = set()
        self.sets_family: frozenset[str] = (
            frozenset(project.subclasses_of(SETS_CLASS))
            if SETS_CLASS in project.classes else frozenset()
        )

    # -- write-set closure ---------------------------------------------------

    def write_closure(self, class_id: str, method: str) -> frozenset[str]:
        """Attribute roots ``method`` may write on a ``class_id`` receiver,
        closed over same-receiver calls (virtual dispatch resolved in the
        concrete class) and construction-tracked sub-object calls."""
        key = (class_id, method)
        cached = self._closure_memo.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress:
            return frozenset()  # cycle: least-fixpoint contribution is empty
        self._in_progress.add(key)
        try:
            out: set[str] = set()
            start = self.project.find_method(class_id, method)
            if start is None:
                result: frozenset[str] = frozenset()
                self._closure_memo[key] = result
                return result
            seen: set[str] = set()
            work = [start.id]
            while work:
                fid = work.pop()
                if fid in seen:
                    continue
                seen.add(fid)
                eff = self.effects.get(fid)
                func = self.project.functions.get(fid)
                if eff is None or func is None:
                    continue
                out.update(eff.self_writes)
                for name, via_super in eff.self_calls:
                    target = self._resolve_self_call(
                        class_id, func, name, via_super)
                    if target is not None:
                        work.append(target.id)
                for attr, attr_cls, meth, _line, _col in eff.attr_calls:
                    if self._attr_call_writes(attr_cls, meth):
                        out.add(attr)
            result = frozenset(out)
        finally:
            self._in_progress.discard(key)
        self._closure_memo[key] = result
        return result

    def _resolve_self_call(
        self, class_id: str, func: FuncInfo, name: str, via_super: bool
    ) -> FuncInfo | None:
        if via_super:
            defining = f"{func.module}:{func.class_name}"
            if defining in self.project.classes:
                bases = self.project.classes[defining].bases
                if len(bases) == 1:
                    return self.project.find_method(bases[0], name)
            return None
        return self.project.find_method(class_id, name)

    def _attr_call_writes(self, attr_cls: str, method: str) -> bool:
        """Whether calling ``method`` on a sub-object mutates it."""
        if attr_cls and attr_cls in self.project.classes:
            if self.project.find_method(attr_cls, method) is not None:
                return bool(self.write_closure(attr_cls, method))
        return method in MUTATING_METHODS

    # -- choke-point facts ---------------------------------------------------

    def choke_points(self) -> list[str]:
        """Function ids declared ``@mutates_membership``, sorted."""
        return sorted(fid for fid, eff in self.effects.items()
                      if eff.mutates_decorated)

    # -- sweep reachability --------------------------------------------------

    def sweep_entries(self) -> list[str]:
        entries: list[str] = []
        for module, names in SWEEP_ENTRY_POINTS:
            for name in names:
                fid = f"{module}:{name}"
                if fid in self.project.functions:
                    entries.append(fid)
        if HOOK_BASE in self.project.classes:
            for cid in sorted(self.project.subclasses_of(HOOK_BASE)):
                info = self.project.classes[cid]
                for name in sorted(info.methods):
                    fid = f"{info.module}:{info.name}.{name}"
                    if fid in self.project.functions:
                        entries.append(fid)
        return sorted(set(entries))

    def sweep_reachable(self) -> dict[str, str]:
        """func id -> first (sorted) worker entry point that reaches it."""
        graph: dict[str, list[str]] = {}
        for fid, eff in self.effects.items():
            func = self.project.functions[fid]
            targets = set(eff.callees)
            class_id = (
                f"{func.module}:{func.class_name}" if func.class_name else "")
            for name, via_super in eff.self_calls:
                target = self._resolve_self_call(
                    class_id, func, name, via_super) if class_id else None
                if target is not None:
                    targets.add(target.id)
            for _attr, attr_cls, meth, _line, _col in eff.attr_calls:
                if attr_cls:
                    method = self.project.find_method(attr_cls, meth)
                    if method is not None:
                        targets.add(method.id)
            graph[fid] = sorted(targets)
        reached: dict[str, str] = {}
        for entry in self.sweep_entries():
            if entry in reached:
                continue
            stack = [entry]
            while stack:
                fid = stack.pop()
                if fid in reached:
                    continue
                reached[fid] = entry
                stack.extend(t for t in reversed(graph.get(fid, ()))
                             if t not in reached)
        return reached

    # -- the contract checks -------------------------------------------------

    def check(self) -> list[Finding]:
        findings: list[Finding] = []
        findings.extend(self._check_mirror_coherence())
        findings.extend(self._check_fast_subsumption())
        findings.extend(self._check_sweep_purity())
        findings.extend(self.check_recovery_surface())
        return sorted(findings, key=Finding.sort_key)

    def _mod_of(self, func: FuncInfo) -> ModuleInfo:
        return self.project.modules[func.module]

    def _check_mirror_coherence(self) -> list[Finding]:
        findings: list[Finding] = []
        # RPR202: every declared choke point must bump the epoch.
        for fid in self.choke_points():
            func = self.project.functions[fid]
            eff = self.effects[fid]
            if EPOCH_ATTR not in eff.self_writes:
                findings.append(finding_at(
                    self._mod_of(func), func.node.lineno,
                    func.node.col_offset, "RPR202",
                    f"@mutates_membership method {func.qualname}() does not "
                    f"bump the membership epoch '{EPOCH_ATTR}'",
                ))
        if not self.sets_family:
            return findings
        # RPR201 (inside): membership state written by an undecorated
        # CacheSets method.
        for cid in sorted(self.sets_family):
            info = self.project.classes[cid]
            for name in sorted(info.methods):
                if name in _INIT_METHODS:
                    continue
                fid = f"{info.module}:{info.name}.{name}"
                eff = self.effects.get(fid)
                func = self.project.functions.get(fid)
                if eff is None or func is None or eff.mutates_decorated:
                    continue
                for attr in sorted(_PROTECTED & eff.container_writes.keys()):
                    line, col = eff.container_writes[attr]
                    findings.append(finding_at(
                        self._mod_of(func), line, col, "RPR201",
                        f"membership state '{attr}' is written by "
                        f"{func.qualname}() outside a @mutates_membership "
                        "choke point; route the mutation through the "
                        "declared membership API",
                    ))
        # RPR201 (outside): raw writes through a CacheSets-typed attribute.
        for fid in sorted(self.effects):
            eff = self.effects[fid]
            func = self.project.functions[fid]
            if not func.class_name:
                continue
            class_id = f"{func.module}:{func.class_name}"
            if class_id in self.sets_family:
                continue  # inside writes are covered above
            for attr, member, line, col in eff.foreign_writes:
                if member not in _PROTECTED:
                    continue
                attr_cls = self._attr_class_in(class_id, attr)
                if attr_cls in self.sets_family:
                    findings.append(finding_at(
                        self._mod_of(func), line, col, "RPR201",
                        f"membership state '{member}' of "
                        f"{attr_cls.rsplit(':', 1)[1]} is written by "
                        f"{func.qualname}() from outside the class; only a "
                        "@mutates_membership choke point may touch the "
                        "directory pair",
                    ))
        # RPR203: batch readers must be write-free w.r.t. membership.
        seen_readers: set[str] = set()
        for cid in sorted(self.sets_family):
            for reader in BATCH_READERS:
                func = self.project.find_method(cid, reader)
                if func is None or func.id in seen_readers:
                    continue
                seen_readers.add(func.id)
                written = sorted(self.write_closure(cid, reader) & _PROTECTED)
                if written:
                    findings.append(finding_at(
                        self._mod_of(func), func.node.lineno,
                        func.node.col_offset, "RPR203",
                        f"batch reader {func.qualname}() must be write-free "
                        "w.r.t. membership state but may write "
                        f"{', '.join(repr(w) for w in written)}",
                    ))
        return findings

    def _attr_class_in(self, class_id: str, attr: str) -> str:
        for cid in self.project.class_mro(class_id):
            found = self.project.classes[cid].attr_classes.get(attr)
            if found is not None:
                return found
        return ""

    def fast_pairs(self) -> list[tuple[str, str, str]]:
        """(class id, fast hook, scalar counterpart) for every class that
        defines a fast hook of its own, sorted."""
        out: list[tuple[str, str, str]] = []
        for cid in sorted(self.project.classes):
            info = self.project.classes[cid]
            for fast, scalar in FAST_SCALAR_PAIRS:
                if fast in info.methods:
                    out.append((cid, fast, scalar))
        return out

    def _check_fast_subsumption(self) -> list[Finding]:
        findings: list[Finding] = []
        for cid, fast, scalar in self.fast_pairs():
            fast_writes = self.write_closure(cid, fast)
            scalar_writes = self.write_closure(cid, scalar)
            extra = sorted(fast_writes - scalar_writes - FAST_DELTA_ATTRS)
            if not extra:
                continue
            func = self.project.find_method(cid, fast)
            if func is None:  # pragma: no cover - fast in methods implies it
                continue
            findings.append(finding_at(
                self._mod_of(func), func.node.lineno, func.node.col_offset,
                "RPR204",
                f"fast path {func.qualname}() may write "
                f"{', '.join(repr(e) for e in extra)} which the scalar "
                f"{scalar}() path never touches; fast-path write-sets must "
                "stay within the scalar write-set plus the FastAccounting "
                f"delta surface ({', '.join(sorted(FAST_DELTA_ATTRS))})",
            ))
        return findings

    # -- recovery read-surface (RPR207) --------------------------------------

    def _recovery_chains(
        self, func: FuncInfo, roots: frozenset[str]
    ) -> list[tuple[list[str], int, int, bool]]:
        """Attribute chains rooted at ``roots`` in ``func``'s body.

        Returns ``(parts, line, col, as_argument)`` per chain; a chain
        with ``as_argument`` is the bare root passed to a callable —
        the one shape that would let reads escape the closure, so the
        check flags it rather than guessing.  Plain aliases
        (``x = root.attr``) extend the root set with their one-level
        chain; values produced *through a call* are data, not state,
        and deeper reads on them are not tracked.
        """
        aliases: dict[str, list[str]] = {}
        out: list[tuple[list[str], int, int, bool]] = []
        nodes = _shallow_walk(func.node)
        for node in nodes:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name) and \
                    isinstance(node.value, ast.Attribute):
                root, parts = _chain(node.value)
                if isinstance(root, ast.Name) and root.id in roots and \
                        _SUB not in parts:
                    aliases[node.targets[0].id] = parts
        for node in nodes:
            if isinstance(node, ast.Attribute):
                root, parts = _chain(node)
                if not isinstance(root, ast.Name):
                    continue
                if root.id in roots:
                    out.append((parts, node.lineno, node.col_offset, False))
                elif root.id in aliases:
                    out.append((aliases[root.id] + parts,
                                node.lineno, node.col_offset, False))
            elif isinstance(node, ast.Call):
                for arg in (*node.args,
                            *(kw.value for kw in node.keywords)):
                    if isinstance(arg, ast.Name) and arg.id in roots:
                        out.append(([], arg.lineno, arg.col_offset, True))
        return out

    def _recovery_walk(
        self, class_id: str, parts: list[str], mod: ModuleInfo,
        line: int, col: int, findings: list[Finding],
        visited: set[tuple[str, str]], origin: str,
    ) -> None:
        """Check one attribute chain against ``class_id``'s surface."""
        if not parts or parts[0] is _SUB or parts[0] == _SUB:
            return
        name = parts[0]
        if self.project.find_method(class_id, name) is not None:
            # A method (or property) of the surface class: recurse into
            # its body — its reads are part of the closure.
            self._recovery_visit(class_id, name, findings, visited)
            return  # its return value is derived data, not state
        allowed = RECOVERY_SURFACE.get(class_id, frozenset())
        if name not in allowed:
            cls = class_id.rsplit(":", 1)[1]
            findings.append(finding_at(
                mod, line, col, "RPR207",
                f"recovery read-closure escapes the crash-surviving "
                f"surface: {origin} reads {cls}.{name}, which does not "
                f"survive a power failure (declared surface: "
                f"{', '.join(sorted(allowed)) or 'none'})",
            ))
            return
        attr_cls = self._attr_class_in(class_id, name)
        rest = parts[1:]
        if attr_cls and rest:
            self._recovery_walk(attr_cls, rest, mod, line, col,
                                findings, visited, origin)
        # Unresolved sub-objects (dicts, lists, tuples of entries) are
        # the declared attribute's *value*: reading through them is the
        # point of the surface.

    def _recovery_visit(
        self, class_id: str, method: str, findings: list[Finding],
        visited: set[tuple[str, str]],
    ) -> None:
        key = (class_id, method)
        if key in visited:
            return
        visited.add(key)
        func = self.project.find_method(class_id, method)
        if func is None:
            return
        mod = self._mod_of(func)
        origin = f"{func.qualname}()"
        for parts, line, col, as_arg in self._recovery_chains(
                func, frozenset({"self"})):
            if as_arg:
                findings.append(finding_at(
                    mod, line, col, "RPR207",
                    f"{origin} passes the receiver to another callable; "
                    "the recovery read-closure cannot follow it — keep "
                    "crash-surviving reads first-person",
                ))
                continue
            self._recovery_walk(class_id, parts, mod, line, col,
                                findings, visited, origin)

    def check_recovery_surface(self) -> list[Finding]:
        """RPR207: the interprocedural read-closure of the power-failure
        recovery entry point stays inside the declared crash-surviving
        surface (:data:`RECOVERY_ROOTS` / :data:`RECOVERY_SURFACE`)."""
        entry = self.project.functions.get(RECOVERY_ENTRY)
        if entry is None:
            return []
        findings: list[Finding] = []
        visited: set[tuple[str, str]] = set()
        mod = self._mod_of(entry)
        origin = f"{entry.qualname}()"
        param_names = [a.arg for a in entry.node.args.args]
        if not param_names:
            return []
        root = param_names[0]
        for parts, line, col, as_arg in self._recovery_chains(
                entry, frozenset({root})):
            if as_arg:
                findings.append(finding_at(
                    mod, line, col, "RPR207",
                    f"{origin} passes the crashed object to another "
                    "callable; the recovery read-closure cannot follow "
                    "it — consult the crash-surviving surface directly",
                ))
                continue
            if not parts:
                continue
            first = parts[0]
            if first not in RECOVERY_ROOTS:
                findings.append(finding_at(
                    mod, line, col, "RPR207",
                    f"recovery read-closure escapes the crash-surviving "
                    f"surface: {origin} reads the crashed object's "
                    f"'{first}', which does not survive a power failure "
                    f"(declared roots: "
                    f"{', '.join(sorted(RECOVERY_ROOTS))})",
                ))
                continue
            self._recovery_walk(RECOVERY_ROOTS[first], parts[1:], mod,
                                line, col, findings, visited, origin)
        # A chain and its prefixes share a site; keep one finding each.
        unique: dict[tuple, Finding] = {}
        for finding in findings:
            key = (finding.relpath, finding.line, finding.col,
                   finding.message)
            unique.setdefault(key, finding)
        return list(unique.values())

    def _check_sweep_purity(self) -> list[Finding]:
        findings: list[Finding] = []
        reached = self.sweep_reachable()
        for fid in sorted(reached):
            if fid in SWEEP_ALLOWLIST:
                continue
            eff = self.effects.get(fid)
            func = self.project.functions.get(fid)
            if eff is None or func is None:
                continue
            entry = reached[fid]
            for desc, line, col in eff.global_mutations:
                findings.append(finding_at(
                    self._mod_of(func), line, col, "RPR205",
                    f"{func.qualname}() mutates {desc} but is reachable "
                    f"from sweep worker entry {entry}; process-pool cells "
                    "must not share module state",
                ))
            for deco, line, col in eff.cache_decorators:
                findings.append(finding_at(
                    self._mod_of(func), line, col, "RPR206",
                    f"@{deco} on {func.qualname}() holds per-process state "
                    f"and is reachable from sweep worker entry {entry}; "
                    "allowlist deliberate memoisation in "
                    "repro.devtools.analyze.effects or drop the cache",
                ))
        return findings


def check_effects(project: Project) -> list[Finding]:
    """RPR201-RPR207: mirror coherence, fast-path effect subsumption,
    sweep-parallelism race detection, and the recovery read-surface."""
    return EffectAnalysis(project).check()


# -- machine-readable export -------------------------------------------------


def effects_report(project: Project) -> str:
    """Stable JSON export of the effect model behind RPR201-RPR206."""
    analysis = EffectAnalysis(project)
    reached = analysis.sweep_reachable()
    fast_paths = []
    for cid, fast, scalar in analysis.fast_pairs():
        fast_writes = analysis.write_closure(cid, fast)
        scalar_writes = analysis.write_closure(cid, scalar)
        fast_paths.append({
            "class": cid,
            "fast": fast,
            "scalar": scalar,
            "fast_writes": sorted(fast_writes),
            "scalar_writes": sorted(scalar_writes),
            "extra": sorted(fast_writes - scalar_writes - FAST_DELTA_ATTRS),
        })
    cached = [
        {
            "function": fid,
            "decorator": deco,
            "allowlisted": fid in SWEEP_ALLOWLIST,
        }
        for fid in sorted(reached)
        for deco, _line, _col in analysis.effects[fid].cache_decorators
    ]
    membership_writers = sorted(
        fid for fid, eff in analysis.effects.items()
        if analysis.project.functions[fid].class_name
        and f"{analysis.project.functions[fid].module}:"
            f"{analysis.project.functions[fid].class_name}"
            in analysis.sets_family
        and _PROTECTED & eff.container_writes.keys()
    )
    doc = {
        "version": 1,
        "membership": {
            "class": SETS_CLASS,
            "attrs": sorted(MEMBERSHIP_ATTRS),
            "epoch": EPOCH_ATTR,
            "choke_points": analysis.choke_points(),
            "writers": membership_writers,
            "batch_readers": list(BATCH_READERS),
        },
        "fast_paths": fast_paths,
        "sweep": {
            "entry_points": analysis.sweep_entries(),
            "reachable_functions": len(reached),
            "allowlist": sorted(SWEEP_ALLOWLIST),
            "cached_functions": cached,
        },
    }
    return json.dumps(doc, indent=2, sort_keys=True)
