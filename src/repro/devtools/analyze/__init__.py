"""Whole-program static analysis for the repro codebase.

Where :mod:`repro.devtools.lint` checks one file at a time, this
package parses all of ``src/repro`` once into a :class:`Project`
(module set + import graph + cross-module symbol table) and runs five
analyses whose invariants only exist *between* modules:

=========  ============================================================
RPR101     module-level import cycle
RPR102     package layering violation (lower layer imports upward)
RPR103     ownership edge rule (``engine.core`` is engine-internal)
RPR104     flow-sensitive unit taint (bytes/pages/ms/seconds mixing)
RPR105     RNG stream flows into more than one owner
RPR106     RNG stream constructed with module-global lifetime
RPR107     reachable taxonomy raise missing from a declared contract
RPR108     raising public sim/engine/faults entry point lacks contract
RPR109     imported name never used
RPR110     dead public symbol (opt-in, ``--dead-code``)
RPR111     serve-layer RNG stream seed is not sha256-derived
RPR201     membership state written outside a choke point
RPR202     ``@mutates_membership`` method never bumps the epoch
RPR203     batch reader may write membership state
RPR204     fast-path write-set exceeds scalar write-set + delta surface
RPR205     sweep-worker-reachable code mutates module-level state
RPR206     ``lru_cache`` on sweep-worker-reachable code (unallowlisted)
RPR207     power-failure recovery reads outside the crash-surviving surface
RPR301     index column leaves int64 (dtype-flow taint / @columnar breach)
RPR302     unsafe cast (float truncation / unit-carrying narrow)
RPR303     in-place write through a membership-mirror view
RPR304     boolean-mask misuse (``and``/``or``, chained fancy assignment)
RPR305     scalar loop over an ndarray in a hot module
=========  ============================================================

The analyzer is held to the determinism bar it enforces: findings and
every export (JSON, DOT, the generated architecture map) are invariant
under file-discovery order.  Shared finding/baseline machinery comes
from :mod:`repro.devtools.lint`, and inline suppressions use the shared
``# kdd-analyze: disable=RPRnnn`` grammar
(:mod:`repro.devtools.analyze.suppress`).
"""

from __future__ import annotations

from .columnar import ColumnarAnalysis, check_columnar, columnar_report
from .deadcode import check_dead_public, check_unused_imports
from .effects import EffectAnalysis, check_effects, effects_report
from .excflow import ExceptionFlow, check_contracts
from .graphio import architecture_md, graph_dot, graph_json
from .layers import DEFAULT_LAYERS, LayerSpec, check_layering
from .project import ImportEdge, ModuleInfo, Project
from .rngflow import check_rng_provenance
from .suppress import ANALYZER_CODES, apply_suppressions
from .unitflow import check_units

__all__ = [
    "ANALYZER_CODES",
    "ColumnarAnalysis",
    "DEFAULT_LAYERS",
    "EffectAnalysis",
    "ExceptionFlow",
    "ImportEdge",
    "LayerSpec",
    "ModuleInfo",
    "Project",
    "apply_suppressions",
    "architecture_md",
    "check_columnar",
    "check_contracts",
    "check_dead_public",
    "check_effects",
    "check_layering",
    "check_rng_provenance",
    "check_units",
    "check_unused_imports",
    "columnar_report",
    "effects_report",
    "graph_dot",
    "graph_json",
]
