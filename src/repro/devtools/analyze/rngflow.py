"""RNG-stream provenance (RPR105, RPR106, RPR111).

Determinism rests on RNG *ownership*: every ``numpy.random.Generator``
is constructed from a derived seed for exactly one device (or one
sweep cell) and never shared.  Two devices drawing from one stream
couple their fault schedules — results then depend on service order,
which is exactly the nondeterminism the engine is built to exclude.

This analysis tracks stream values intraprocedurally:

* A *stream* is born at a ``numpy.random`` constructor call
  (``default_rng``, ``Generator``, ``PCG64``, ...), at a call to a
  project class that constructs one in its ``__init__`` (e.g.
  ``DeviceFaultStream``), or at a call to a project function whose
  return annotation or return statements yield one.
* A *sink* takes ownership: storing the stream into an attribute or a
  subscript (a device/cell registry), or passing it to a resolved
  project callee that retains the corresponding parameter (stores it
  on ``self`` or into a container).
* One stream value reaching **two or more** sinks is RPR105.  Calls
  the analysis cannot resolve are assumed non-retaining — the analysis
  gates CI, so it prefers a false negative to a false positive.
* Constructing a stream at module scope (RPR106) is always wrong: a
  module-global generator outlives every device and sweep cell, so its
  consumption order depends on import and scheduling history.
* In the serving layer (RPR111) stream *birth* has an extra obligation:
  the seed expression must be sha256-derived.  Tenant substreams are
  only independent, order-free, and replayable because every one is
  keyed off the composer seed through a cryptographic hash
  (``substream_seed``); a serve-layer ``default_rng(seed)`` whose seed
  does not flow through ``hashlib.sha256`` — directly, via a project
  function that transitively hashes, or via a local name assigned from
  one — couples streams through accidental seed collisions.
"""

from __future__ import annotations

import ast

from ..lint.findings import Finding
from .project import FuncInfo, ModuleInfo, Project, finding_at

#: numpy.random constructor names that yield a stream object.
RNG_CTORS = frozenset({
    "default_rng", "Generator", "PCG64", "PCG64DXSM", "Philox", "SFC64",
    "MT19937", "RandomState",
})

#: Top-level packages whose RNG streams must be seeded from a
#: sha256-derived substream (RPR111).
HASHED_SEED_PACKAGES = frozenset({"serve"})


def _is_numpy_rng_call(mod: ModuleInfo, call: ast.Call) -> bool:
    """True for ``np.random.default_rng(...)``-shaped constructions."""
    func = call.func
    if isinstance(func, ast.Name):
        binding = mod.bindings.get(func.id)
        return (
            func.id in RNG_CTORS
            and binding is not None
            and binding.module.startswith("numpy")
        )
    if not (isinstance(func, ast.Attribute) and func.attr in RNG_CTORS):
        return False
    base = func.value
    if isinstance(base, ast.Attribute) and base.attr == "random" \
            and isinstance(base.value, ast.Name):
        binding = mod.bindings.get(base.value.id)
        return binding is not None and binding.module == "numpy"
    if isinstance(base, ast.Name):
        binding = mod.bindings.get(base.id)
        return binding is not None and binding.module.startswith("numpy")
    return False


def _is_sha256_call(mod: ModuleInfo, call: ast.Call) -> bool:
    """True for ``hashlib.sha256(...)``-shaped constructions."""
    func = call.func
    if isinstance(func, ast.Name):
        binding = mod.bindings.get(func.id)
        return (
            func.id == "sha256"
            and binding is not None
            and binding.module == "hashlib"
        )
    if isinstance(func, ast.Attribute) and func.attr == "sha256" \
            and isinstance(func.value, ast.Name):
        binding = mod.bindings.get(func.value.id)
        return binding is not None and binding.module == "hashlib"
    return False


class _Summaries:
    """Project-level facts the per-function walk consumes."""

    def __init__(self, project: Project) -> None:
        self.project = project
        #: class ids whose instances own a Generator (stream-like).
        self.stream_classes: set[str] = set()
        #: function ids that return a stream value.
        self.stream_returns: set[str] = set()
        #: function id -> parameter names it retains (stores durably).
        self.retained_params: dict[str, set[str]] = {}
        #: function ids whose body (transitively) calls hashlib.sha256.
        self.hashing_funcs: set[str] = set()
        self._build()

    def _build(self) -> None:
        # Pass 1: classes that construct an RNG inside a method body.
        for cls in self.project.classes.values():
            mod = self.project.modules[cls.module]
            init = cls.methods.get("__init__") or cls.methods.get(
                "__post_init__")
            if init is None:
                continue
            for node in ast.walk(init):
                if isinstance(node, ast.Call) and \
                        _is_numpy_rng_call(mod, node):
                    self.stream_classes.add(cls.id)
                    break
        # Subclasses of stream-like classes are stream-like too.
        for cls_id in sorted(self.stream_classes):
            self.stream_classes |= self.project.subclasses_of(cls_id)

        # Pass 2: functions whose annotation or returns yield a stream.
        for func in self.project.functions.values():
            mod = self.project.modules[func.module]
            ann = func.node.returns
            if ann is not None:
                resolved = self.project.resolve_class_expr(mod, ann)
                if resolved is not None and \
                        resolved.id in self.stream_classes:
                    self.stream_returns.add(func.id)
                    continue
                if isinstance(ann, ast.Attribute) and ann.attr == "Generator":
                    self.stream_returns.add(func.id)
                    continue
            for node in ast.walk(func.node):
                if isinstance(node, ast.Return) and node.value is not None \
                        and isinstance(node.value, ast.Call):
                    if _is_numpy_rng_call(mod, node.value):
                        self.stream_returns.add(func.id)
                        break
                    callee = self.project.resolve_func_expr(
                        mod, node.value.func)
                    if callee in self.stream_classes:
                        self.stream_returns.add(func.id)
                        break

        # Pass 3: retained parameters (stored to self.*, an attribute,
        # or a subscript anywhere in the body).
        for func in self.project.functions.values():
            params = {a.arg for a in func.node.args.args}
            params |= {a.arg for a in func.node.args.kwonlyargs}
            params.discard("self")
            retained: set[str] = set()
            for node in ast.walk(func.node):
                if not isinstance(node, ast.Assign):
                    continue
                if isinstance(node.value, ast.Name) and \
                        node.value.id in params:
                    for tgt in node.targets:
                        if isinstance(tgt, (ast.Attribute, ast.Subscript)):
                            retained.add(node.value.id)
            if retained:
                self.retained_params[func.id] = retained

        # Pass 4: sha256-deriving functions, to a fixed point (a
        # function that calls a hashing function hashes too).
        changed = True
        while changed:
            changed = False
            for func in self.project.functions.values():
                if func.id in self.hashing_funcs:
                    continue
                mod = self.project.modules[func.module]
                for node in ast.walk(func.node):
                    if not isinstance(node, ast.Call):
                        continue
                    if _is_sha256_call(mod, node) or self.resolve_call(
                            mod, func, node) in self.hashing_funcs:
                        self.hashing_funcs.add(func.id)
                        changed = True
                        break

    def resolve_call(
        self, mod: ModuleInfo, func: FuncInfo, call: ast.Call
    ) -> str | None:
        """Resolve a call to a function id, including ``self.m()``."""
        target = self.project.resolve_func_expr(mod, call.func)
        if target is not None:
            return target
        f = call.func
        if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name) \
                and f.value.id == "self" and func.class_name:
            method = self.project.find_method(
                f"{func.module}:{func.class_name}", f.attr)
            return method.id if method is not None else None
        return None

    def retains(self, func_id: str, arg_index: int, keyword: str | None,
                has_self: bool) -> bool:
        retained = self.retained_params.get(func_id)
        if not retained:
            return False
        func = self.project.functions[func_id]
        params = [a.arg for a in func.node.args.args]
        if has_self and params and params[0] == "self":
            params = params[1:]
        if keyword is not None:
            return keyword in retained
        if 0 <= arg_index < len(params):
            return params[arg_index] in retained
        return False


class RngFlow:
    """Per-function stream tracking over the whole project."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.summaries = _Summaries(project)
        self.findings: list[Finding] = []

    # -- stream production ---------------------------------------------------

    def _is_stream_call(self, mod: ModuleInfo, call: ast.Call) -> bool:
        if _is_numpy_rng_call(mod, call):
            return True
        callee = self.project.resolve_func_expr(mod, call.func)
        if callee is None:
            return False
        if callee in self.summaries.stream_classes:
            return True
        return callee in self.summaries.stream_returns

    # -- module scope (RPR106) -----------------------------------------------

    def _check_module_scope(self, mod: ModuleInfo) -> None:
        for stmt in mod.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and \
                        self._is_stream_call(mod, node):
                    self.findings.append(finding_at(
                        mod, node.lineno, node.col_offset, "RPR106",
                        "RNG stream constructed at module scope: a global "
                        "generator outlives every device and sweep cell; "
                        "construct it per-device/per-cell from a derived "
                        "seed instead",
                    ))

    # -- function scope (RPR105) ---------------------------------------------

    def _check_function(self, func: FuncInfo) -> None:
        mod = self.project.modules[func.module]
        streams: dict[str, tuple[int, int]] = {}  # var -> birth (line, col)
        names: dict[tuple[int, int], str] = {}  # birth -> first var name
        sinks: dict[tuple[int, int], list[tuple[int, str]]] = {}

        def sink(var: str, node: ast.AST, what: str) -> None:
            birth = streams[var]
            sinks.setdefault(birth, []).append(
                (getattr(node, "lineno", 1), what))

        for node in ast.walk(func.node):
            if isinstance(node, ast.Assign):
                value = node.value
                if isinstance(value, ast.Call) and \
                        self._is_stream_call(mod, value):
                    birth = (value.lineno, value.col_offset)
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name):
                            streams[tgt.id] = birth
                            names.setdefault(birth, tgt.id)
                        elif isinstance(tgt, (ast.Attribute, ast.Subscript)):
                            pass  # direct store: one construction, one owner
                elif isinstance(value, ast.Name) and value.id in streams:
                    # aliasing: the alias is the same stream object
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name):
                            streams[tgt.id] = streams[value.id]
                        elif isinstance(tgt, (ast.Attribute, ast.Subscript)):
                            sink(value.id, node, "stored")
            elif isinstance(node, ast.Call):
                callee = self.project.resolve_func_expr(mod, node.func)
                has_self = False
                if callee is not None and callee in self.project.classes:
                    init = self.project.find_method(callee, "__init__")
                    callee = init.id if init is not None else None
                    has_self = True
                if callee is None:
                    continue
                for idx, arg in enumerate(node.args):
                    if isinstance(arg, ast.Name) and arg.id in streams and \
                            self.summaries.retains(callee, idx, None,
                                                   has_self):
                        sink(arg.id, node, f"passed to {callee}")
                for kw in node.keywords:
                    if isinstance(kw.value, ast.Name) and \
                            kw.value.id in streams and \
                            self.summaries.retains(callee, -1, kw.arg,
                                                   has_self):
                        sink(kw.value.id, node, f"passed to {callee}")

        for birth in sorted(sinks):
            events = sorted(sinks[birth])
            if len(events) < 2:
                continue
            line, col = birth
            var = names.get(birth, "<stream>")
            where = ", ".join(f"line {ln} ({what})" for ln, what in events)
            self.findings.append(finding_at(
                mod, line, col, "RPR105",
                f"RNG stream '{var}' in {func.qualname}() flows into "
                f"{len(events)} owners ({where}); every device/cell must "
                "own a distinct seeded stream — construct one per owner",
            ))

    # -- serve-layer seed provenance (RPR111) --------------------------------

    def _expr_hashed(
        self, mod: ModuleInfo, func: FuncInfo, expr: ast.expr,
        tainted: set[str],
    ) -> bool:
        """True when a sha256 derivation reaches ``expr``."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                if _is_sha256_call(mod, node):
                    return True
                callee = self.summaries.resolve_call(mod, func, node)
                if callee is not None and \
                        callee in self.summaries.hashing_funcs:
                    return True
            elif isinstance(node, ast.Name) and node.id in tainted:
                return True
        return False

    def _check_seed_provenance(self, func: FuncInfo) -> None:
        mod = self.project.modules[func.module]
        if mod.top_package not in HASHED_SEED_PACKAGES:
            return
        # Intraprocedural name taint: locals assigned from a hashed
        # expression carry the derivation, to a fixed point (assignment
        # chains need not appear in source order under ast.walk).
        tainted: set[str] = set()
        assigns = [n for n in ast.walk(func.node)
                   if isinstance(n, ast.Assign)]
        changed = True
        while changed:
            changed = False
            for node in assigns:
                if not self._expr_hashed(mod, func, node.value, tainted):
                    continue
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name) and tgt.id not in tainted:
                        tainted.add(tgt.id)
                        changed = True
        for node in ast.walk(func.node):
            if not (isinstance(node, ast.Call)
                    and _is_numpy_rng_call(mod, node)):
                continue
            seed: ast.expr | None = node.args[0] if node.args else None
            if seed is None:
                for kw in node.keywords:
                    if kw.arg == "seed":
                        seed = kw.value
            if seed is not None and \
                    self._expr_hashed(mod, func, seed, tainted):
                continue
            self.findings.append(finding_at(
                mod, node.lineno, node.col_offset, "RPR111",
                f"serve-layer RNG stream in {func.qualname}() is not "
                "seeded from a sha256-derived substream; derive the seed "
                "through substream_seed() (or another hashlib.sha256 "
                "derivation) so tenant streams stay independent and "
                "replayable",
            ))

    def run(self) -> list[Finding]:
        for mod in self.project.modules.values():
            self._check_module_scope(mod)
        for func in self.project.functions.values():
            self._check_function(func)
            self._check_seed_provenance(func)
        return sorted(self.findings, key=Finding.sort_key)


def check_rng_provenance(project: Project) -> list[Finding]:
    """RPR105/RPR106/RPR111: stream sharing, module-global streams,
    and serve-layer sha256 seed provenance."""
    return RngFlow(project).run()
