"""Flow-sensitive unit taint (RPR104).

The lexical rule (kdd-lint RPR007) only sees unit mixing when *both*
operands are helpfully named at the point of use.  This analysis runs
an intraprocedural forward dataflow instead: a unit (``bytes``,
``pages``, ``ms``, ``seconds``) attaches to a value at a naming site or
a known-converter call and then propagates through assignments,
augmented assignments, returns, and resolved project-call boundaries —
so a ``bytes`` value laundered through a blandly named local is still
caught, and a rate like ``ops_per_page`` is correctly unit-less.

The lattice per variable is tiny: ``None`` (unknown / dimensionless)
or one unit string.  Branches merge by agreement — a variable keeps a
unit over an ``if``/``else`` only when both arms agree; loops process
their body once against a copy and merge the same way.  This is
deliberately conservative: the analysis prefers silence to a false
positive, because it gates CI.
"""

from __future__ import annotations

import ast
import re

from ..lint.findings import Finding
from .project import FuncInfo, ModuleInfo, Project, finding_at

_TOKEN_SPLIT = re.compile(r"[_\W]+")
_TOKENS = {
    "bytes": frozenset({"bytes", "nbytes"}),
    "pages": frozenset({"pages", "npages"}),
    "ms": frozenset({"ms"}),
    "seconds": frozenset({"seconds"}),
}

#: Return units of the repro.units conversion helpers; their names mix
#: both unit tokens (``pages_for_bytes``) so lexical inference would
#: refuse to classify them.
KNOWN_RETURNS = {
    "repro.units:pages_for_bytes": "pages",
}

#: ms and seconds both measure time but at different scale; bytes and
#: pages both measure capacity.  Any cross-unit combination is a
#: conflict — same-dimension pairs just get a more pointed hint.
_CONVERT_HINT = {
    frozenset({"bytes", "pages"}): "repro.units.pages_for_bytes / "
                                   "DEFAULT_PAGE_SIZE",
    frozenset({"ms", "seconds"}): "repro.units.MILLISECOND",
}


def unit_of_name(name: str) -> str | None:
    """Unit implied by a name, or None for unknown/ambiguous/rate names."""
    tokens = set(_TOKEN_SPLIT.split(name.lower()))
    if "per" in tokens:  # rates are dimensionless
        return None
    hits = [unit for unit, toks in _TOKENS.items() if tokens & toks]
    if len(hits) != 1:
        return None
    # Bare "ms"/"seconds" as a whole name is fine; bare single-token
    # heuristics stay narrow to avoid tainting loop counters etc.
    return hits[0]


class _FunctionUnits:
    """One forward pass over a function (or module) body."""

    def __init__(self, analysis: "UnitFlow", mod: ModuleInfo,
                 owner: str) -> None:
        self.analysis = analysis
        self.mod = mod
        self.owner = owner  # qualname for messages, "" at module scope
        self.env: dict[str, str | None] = {}

    # -- expression units ----------------------------------------------------

    def unit_of(self, expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Name):
            if expr.id in self.env:
                return self.env[expr.id]
            return unit_of_name(expr.id)
        if isinstance(expr, ast.Attribute):
            return unit_of_name(expr.attr)
        if isinstance(expr, ast.BinOp):
            return self._binop_unit(expr)
        if isinstance(expr, ast.UnaryOp):
            return self.unit_of(expr.operand)
        if isinstance(expr, ast.Call):
            return self._call_unit(expr)
        if isinstance(expr, ast.IfExp):
            a, b = self.unit_of(expr.body), self.unit_of(expr.orelse)
            return a if a == b else None
        if isinstance(expr, (ast.Constant, ast.List, ast.Tuple, ast.Dict,
                             ast.Set, ast.ListComp, ast.SetComp,
                             ast.DictComp, ast.GeneratorExp)):
            return None
        return None

    def _binop_unit(self, expr: ast.BinOp) -> str | None:
        left, right = self.unit_of(expr.left), self.unit_of(expr.right)
        if isinstance(expr.op, (ast.Add, ast.Sub, ast.Mod)):
            self._check_conflict(expr, left, right)
            return left if left is not None else right
        if isinstance(expr.op, (ast.Mult, ast.Div, ast.FloorDiv, ast.Pow)):
            # multiplication/division performs conversions; the result's
            # dimension is not either operand's, so drop the taint.
            return None
        return None

    def _call_unit(self, expr: ast.Call) -> str | None:
        callee = self.analysis.project.resolve_func_expr(self.mod, expr.func)
        if callee is None:
            # min/max/abs/round preserve their arguments' unit.
            if isinstance(expr.func, ast.Name) and \
                    expr.func.id in ("min", "max", "abs", "round", "sum"):
                units = {self.unit_of(arg) for arg in expr.args}
                units.discard(None)
                return units.pop() if len(units) == 1 else None
            return None
        if callee in KNOWN_RETURNS:
            return KNOWN_RETURNS[callee]
        self._check_call_args(expr, callee)
        return None

    # -- conflict reporting --------------------------------------------------

    def _where(self) -> str:
        return f" in {self.owner}()" if self.owner else " at module scope"

    def _check_conflict(self, node: ast.AST, left: str | None,
                        right: str | None) -> None:
        if left is None or right is None or left == right:
            return
        hint = _CONVERT_HINT.get(frozenset({left, right}),
                                 "a repro.units conversion")
        self.analysis.report(
            self.mod, node,
            f"unit conflict{self._where()}: combines a {left}-valued "
            f"expression with a {right}-valued one; convert via {hint} first",
        )

    def _check_call_args(self, call: ast.Call, callee: str) -> None:
        func = self.analysis.project.functions.get(callee)
        if func is None:
            cls = self.analysis.project.classes.get(callee)
            if cls is None:
                return
            func = self.analysis.project.find_method(callee, "__init__")
            if func is None:
                return
        params = [a.arg for a in func.node.args.args]
        if func.class_name and params and params[0] == "self":
            params = params[1:]
        for param, arg in zip(params, call.args):
            want = unit_of_name(param)
            got = self.unit_of(arg)
            if want is not None and got is not None and want != got:
                hint = _CONVERT_HINT.get(frozenset({want, got}),
                                         "a repro.units conversion")
                self.analysis.report(
                    self.mod, arg,
                    f"unit conflict{self._where()}: passes a {got}-valued "
                    f"argument to parameter '{param}' ({want}) of "
                    f"{func.qualname}(); convert via {hint} first",
                )
        for kw in call.keywords:
            if kw.arg is None:
                continue
            want = unit_of_name(kw.arg)
            got = self.unit_of(kw.value)
            if want is not None and got is not None and want != got:
                hint = _CONVERT_HINT.get(frozenset({want, got}),
                                         "a repro.units conversion")
                self.analysis.report(
                    self.mod, kw.value,
                    f"unit conflict{self._where()}: passes a {got}-valued "
                    f"argument to parameter '{kw.arg}' ({want}) of "
                    f"{func.qualname}(); convert via {hint} first",
                )

    # -- statements ----------------------------------------------------------

    def run(self, body: list[ast.stmt], return_unit: str | None) -> None:
        self._return_unit = return_unit
        self._block(body)

    def _block(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _merge(self, before: dict[str, str | None],
               *branches: dict[str, str | None]) -> None:
        merged: dict[str, str | None] = {}
        keys = set(before)
        for env in branches:
            keys |= set(env)
        for key in sorted(keys):
            values = {env.get(key) for env in branches} if branches \
                else {before.get(key)}
            merged[key] = values.pop() if len(values) == 1 else None
        self.env = merged

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            unit = self.unit_of(stmt.value)
            for tgt in stmt.targets:
                self._assign(tgt, unit, stmt)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(stmt.target, self.unit_of(stmt.value), stmt)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.op, (ast.Add, ast.Sub, ast.Mod)):
                self._check_conflict(
                    stmt, self.unit_of(stmt.target), self.unit_of(stmt.value))
            elif isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = None
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            got = self.unit_of(stmt.value)
            want = self._return_unit
            if want is not None and got is not None and want != got:
                hint = _CONVERT_HINT.get(frozenset({want, got}),
                                         "a repro.units conversion")
                self.analysis.report(
                    self.mod, stmt,
                    f"unit conflict{self._where()}: returns a {got}-valued "
                    f"expression from a {want}-valued function; convert via "
                    f"{hint} first",
                )
        elif isinstance(stmt, ast.If):
            self.unit_of(stmt.test)
            before = dict(self.env)
            self._block(stmt.body)
            then_env = self.env
            self.env = dict(before)
            self._block(stmt.orelse)
            self._merge(before, then_env, self.env)
            return
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            before = dict(self.env)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = unit_of_name(stmt.target.id)
            self._block(stmt.body)
            self._block(stmt.orelse)
            self._merge(before, before, self.env)
            return
        elif isinstance(stmt, ast.While):
            self.unit_of(stmt.test)
            before = dict(self.env)
            self._block(stmt.body)
            self._block(stmt.orelse)
            self._merge(before, before, self.env)
            return
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._block(stmt.body)
            return
        elif isinstance(stmt, ast.Try):
            before = dict(self.env)
            self._block(stmt.body)
            envs = [self.env]
            for handler in stmt.handlers:
                self.env = dict(before)
                self._block(handler.body)
                envs.append(self.env)
            self._merge(before, *envs)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
            return
        elif isinstance(stmt, ast.Expr):
            self.unit_of(stmt.value)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            return  # nested scopes are analysed separately
        else:
            # visit embedded expressions (e.g. assert) for call checks
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.unit_of(child)

    def _assign(self, target: ast.expr, unit: str | None,
                stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            declared = unit_of_name(target.id)
            if declared is not None and unit is not None and declared != unit:
                hint = _CONVERT_HINT.get(frozenset({declared, unit}),
                                         "a repro.units conversion")
                self.analysis.report(
                    self.mod, stmt,
                    f"unit conflict{self._where()}: assigns a {unit}-valued "
                    f"expression to '{target.id}' ({declared}); convert via "
                    f"{hint} first",
                )
            self.env[target.id] = declared if declared is not None else unit
        elif isinstance(target, ast.Attribute):
            declared = unit_of_name(target.attr)
            if declared is not None and unit is not None and declared != unit:
                hint = _CONVERT_HINT.get(frozenset({declared, unit}),
                                         "a repro.units conversion")
                self.analysis.report(
                    self.mod, stmt,
                    f"unit conflict{self._where()}: assigns a {unit}-valued "
                    f"expression to attribute '{target.attr}' ({declared}); "
                    f"convert via {hint} first",
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, None, stmt)


class UnitFlow:
    """Project-wide driver for the per-function unit dataflow."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.findings: list[Finding] = []

    def report(self, mod: ModuleInfo, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        self.findings.append(finding_at(mod, line, col, "RPR104", message))

    def _seed_params(self, walker: _FunctionUnits, func: FuncInfo) -> None:
        args = func.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            walker.env[arg.arg] = unit_of_name(arg.arg)

    def run(self) -> list[Finding]:
        for mod in self.project.modules.values():
            scope = _FunctionUnits(self, mod, owner="")
            scope.run(
                [s for s in mod.tree.body
                 if not isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef,
                                       ast.ClassDef))],
                return_unit=None,
            )
        for func in self.project.functions.values():
            mod = self.project.modules[func.module]
            walker = _FunctionUnits(self, mod, owner=func.qualname)
            self._seed_params(walker, func)
            walker.run(list(func.node.body),
                       return_unit=unit_of_name(func.name))
        return sorted(self.findings, key=Finding.sort_key)


def check_units(project: Project) -> list[Finding]:
    """RPR104: flow-sensitive bytes/pages/ms/seconds taint conflicts."""
    return UnitFlow(project).run()
