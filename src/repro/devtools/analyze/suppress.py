"""Inline suppressions for the whole-program analyzer.

The analyzer shares kdd-lint's suppression grammar and engine
(:func:`repro.devtools.lint.engine.parse_suppressions`) under its own
comment tag::

    lbas = pages.astype(np.int64)  # kdd-analyze: disable=RPR302

Semantics mirror kdd-lint exactly: a suppression only applies on the
finding's own line, ``all`` waives every code, and a suppression that
suppressed nothing is itself reported as an RPR000 meta-finding — so
columnar (and any other analyzer-family) exceptions live next to the
code they excuse and rot is visible, instead of accumulating in a
baseline file.

Unused-suppression reporting is scoped to the analyses that actually
ran: a family-filtered run (``--effects``, ``--columnar``) ignores
suppressions for codes outside the active set rather than calling
them unused.
"""

from __future__ import annotations

from ..lint.engine import parse_suppressions
from ..lint.findings import META_CODE, Finding
from .project import Project, finding_at

#: The comment tag the analyzer reads.
ANALYZE_TOOL = "kdd-analyze"

#: Code families, for scoping unused-suppression reporting to the
#: analyses a run actually executed.
FLOW_CODES = frozenset({f"RPR1{i:02d}" for i in range(1, 12)})
EFFECTS_CODES = frozenset({f"RPR2{i:02d}" for i in range(1, 8)})
COLUMNAR_CODES = frozenset({f"RPR3{i:02d}" for i in range(1, 6)})

#: Every code an analyzer run can emit.
ANALYZER_CODES = FLOW_CODES | EFFECTS_CODES | COLUMNAR_CODES

_ALL = "all"


def apply_suppressions(
    project: Project,
    findings: list[Finding],
    active_codes: frozenset[str] = ANALYZER_CODES,
) -> list[Finding]:
    """Drop inline-suppressed findings; report unused suppressions.

    ``active_codes`` is the set of codes the run could have emitted;
    suppressions for other analyzer codes are left alone (neither
    applied nor reported unused), so a ``--columnar``-only run does
    not flag a legitimate RPR104 suppression as stale.
    """
    by_relpath: dict[str, dict[int, list[str]]] = {}
    for mod in project.modules.values():
        sup = parse_suppressions(mod.source, tool=ANALYZE_TOOL)
        if sup:
            by_relpath[mod.relpath] = sup

    used: set[tuple[str, int, str]] = set()
    kept: list[Finding] = []
    for finding in findings:
        codes = by_relpath.get(finding.relpath, {}).get(finding.line, [])
        if finding.code in codes:
            used.add((finding.relpath, finding.line, finding.code))
        elif _ALL in codes:
            used.add((finding.relpath, finding.line, _ALL))
        else:
            kept.append(finding)

    for mod in project.modules.values():
        suppressions = by_relpath.get(mod.relpath)
        if not suppressions:
            continue
        for line in sorted(suppressions):
            codes = suppressions[line]
            if META_CODE in codes:
                continue  # explicitly waived, mirroring kdd-lint
            for code in codes:
                if (mod.relpath, line, code) in used:
                    continue
                if code != _ALL and code not in ANALYZER_CODES:
                    message = f"suppression of unknown analyzer rule {code}"
                elif code != _ALL and code not in active_codes:
                    continue  # family not part of this run
                else:
                    message = (
                        f"unused suppression of {code}: no {code} finding "
                        f"on this line"
                    )
                kept.append(finding_at(mod, line, 0, META_CODE, message))

    return sorted(kept, key=Finding.sort_key)
