"""Project model: modules, import graph, and cross-module symbol table.

Everything downstream (layering, unit taint, RNG provenance, exception
flow, dead-code) consumes one :class:`Project` built from a single
parse of the tree.  Construction is deterministic: files are loaded in
sorted order and every exposed collection iterates in sorted order, so
analysis output is invariant under file-discovery order (a property
pinned by a hypothesis test).

Module naming
-------------

Modules are named by their dotted path under the ``repro`` package
root: ``src/repro/sim/system.py`` is ``repro.sim.system`` and the root
``__init__.py`` is ``repro``.  Fixture trees only need a ``repro/``
directory somewhere on the path for the same rule to apply.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from ...errors import ConfigError
from ..lint.engine import iter_python_files, repro_relpath
from ..lint.findings import Finding

#: Import-edge kinds.  ``top`` executes at module import time (the only
#: kind that can create a real import cycle); ``deferred`` executes
#: inside a function body; ``typing`` only exists for the type checker
#: (guarded by ``if TYPE_CHECKING:``).
EDGE_TOP = "top"
EDGE_DEFERRED = "deferred"
EDGE_TYPING = "typing"


@dataclass(frozen=True)
class ImportEdge:
    """One import of a project module by another."""

    src: str  # importing module, e.g. "repro.faults.timed"
    dst: str  # imported module, e.g. "repro.engine.hooks"
    line: int
    col: int
    kind: str  # EDGE_TOP | EDGE_DEFERRED | EDGE_TYPING
    symbol: str = ""  # "" for whole-module imports

    def sort_key(self) -> tuple[str, str, int, int, str]:
        return (self.src, self.dst, self.line, self.col, self.symbol)


@dataclass(frozen=True)
class Binding:
    """What one imported name in a module refers to.

    ``module`` is the dotted source module (project or external);
    ``symbol`` is the attribute taken from it (``""`` when the binding
    is the module object itself).
    """

    module: str
    symbol: str = ""
    line: int = 0
    kind: str = EDGE_TOP


@dataclass
class ClassInfo:
    """Cross-module view of one top-level class."""

    name: str
    module: str
    node: ast.ClassDef
    #: Base-class ids ("module:Class") resolved to project classes.
    bases: list[str] = field(default_factory=list)
    #: Method name -> FunctionDef/AsyncFunctionDef node.
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = \
        field(default_factory=dict)
    #: Instance attribute -> project class id, for ``self.x = Cls(...)``
    #: assignments seen in any method (construction-tracked types).
    attr_classes: dict[str, str] = field(default_factory=dict)

    @property
    def id(self) -> str:
        return f"{self.module}:{self.name}"


@dataclass
class FuncInfo:
    """One function or method, addressable across the project."""

    module: str
    qualname: str  # "replay_trace", "SimEngine.submit", "f.<locals>.g"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str = ""  # owning top-level class, "" for plain functions

    @property
    def id(self) -> str:
        return f"{self.module}:{self.qualname}"

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_public(self) -> bool:
        if any(part.startswith("_") and not part.startswith("__")
               for part in self.qualname.split(".")):
            return False
        return "<locals>" not in self.qualname


@dataclass
class ModuleInfo:
    """One parsed module plus everything extracted from it."""

    name: str  # dotted, e.g. "repro.sim.system"
    relpath: str  # repro-relative path, e.g. "sim/system.py"
    path: str  # path as given (for display)
    tree: ast.Module
    source: str
    is_package: bool
    #: Imported-name bindings (project and external), in source order.
    bindings: dict[str, Binding] = field(default_factory=dict)
    #: Top-level defs: name -> "func" | "class" | "const".
    symbols: dict[str, str] = field(default_factory=dict)
    exports: tuple[str, ...] | None = None  # __all__ if present

    @property
    def package(self) -> str:
        """The package this module's relative imports resolve against."""
        if self.is_package:
            return self.name
        return self.name.rsplit(".", 1)[0] if "." in self.name else self.name

    @property
    def top_package(self) -> str:
        """First path component under ``repro`` ("" for the root)."""
        parts = self.name.split(".")
        return parts[1] if len(parts) > 1 else ""


def finding_at(
    mod: ModuleInfo, line: int, col: int, code: str, message: str
) -> Finding:
    """Build a Finding anchored at a source line of ``mod``.

    The source line rides along so baseline fingerprints stay valid
    when unrelated edits shift the file.
    """
    lines = mod.source.splitlines()
    source = lines[line - 1] if 1 <= line <= len(lines) else ""
    return Finding(
        path=mod.path,
        relpath=mod.relpath,
        line=line,
        col=col,
        code=code,
        message=message,
        source=source,
    )


def _module_name(relpath: str) -> str:
    """``sim/system.py`` -> ``repro.sim.system``; ``__init__.py`` -> ``repro``."""
    dotted = relpath[:-3].replace("/", ".")
    if dotted == "__init__":
        return "repro"
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    return f"repro.{dotted}"


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


class _ImportCollector(ast.NodeVisitor):
    """Collect imports with their execution kind (top/deferred/typing)."""

    def __init__(self) -> None:
        self.found: list[tuple[ast.Import | ast.ImportFrom, str]] = []
        self._depth = 0
        self._typing = 0

    def _kind(self) -> str:
        if self._typing:
            return EDGE_TYPING
        return EDGE_DEFERRED if self._depth else EDGE_TOP

    def visit_Import(self, node: ast.Import) -> None:
        self.found.append((node, self._kind()))

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.found.append((node, self._kind()))

    def _enter_function(self, node: ast.AST) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    visit_FunctionDef = _enter_function
    visit_AsyncFunctionDef = _enter_function
    visit_Lambda = _enter_function

    def visit_If(self, node: ast.If) -> None:
        if _is_type_checking_test(node.test):
            self._typing += 1
            for stmt in node.body:
                self.visit(stmt)
            self._typing -= 1
            for stmt in node.orelse:
                self.visit(stmt)
        else:
            self.generic_visit(node)


def _extract_all(tree: ast.Module) -> tuple[str, ...] | None:
    for stmt in tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        for tgt in targets:
            if isinstance(tgt, ast.Name) and tgt.id == "__all__":
                if isinstance(value, (ast.List, ast.Tuple)):
                    names = [el.value for el in value.elts
                             if isinstance(el, ast.Constant)
                             and isinstance(el.value, str)]
                    return tuple(names)
    return None


class Project:
    """All modules of one source tree, parsed once.

    ``modules`` maps dotted names to :class:`ModuleInfo`; ``edges`` is
    the project import graph (imports of non-project modules are kept
    separately in each module's ``bindings`` for the unused-import
    analysis).
    """

    def __init__(self, modules: dict[str, ModuleInfo]) -> None:
        self.modules = dict(sorted(modules.items()))
        self.edges: list[ImportEdge] = []
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FuncInfo] = {}
        self._index_symbols()
        self._resolve_imports()
        self._index_defs()

    # -- construction --------------------------------------------------------

    @classmethod
    def load(cls, paths: list[Path]) -> "Project":
        """Parse every ``.py`` file under ``paths`` into a project.

        Input order does not matter: modules are keyed and processed by
        dotted name.  Unparseable files raise :class:`ConfigError` —
        the analyzer needs the whole program, a broken file means the
        whole run is unreliable.
        """
        modules: dict[str, ModuleInfo] = {}
        for file in iter_python_files(paths):
            relpath = repro_relpath(file)
            name = _module_name(relpath)
            try:
                source = file.read_text(encoding="utf-8")
            except OSError as exc:
                raise ConfigError(f"cannot read {file}: {exc}") from exc
            try:
                tree = ast.parse(source)
            except SyntaxError as exc:
                raise ConfigError(
                    f"{file}:{exc.lineno}: syntax error: {exc.msg}"
                ) from exc
            if name in modules:
                raise ConfigError(
                    f"module {name} found twice: {modules[name].path} and {file}"
                )
            modules[name] = ModuleInfo(
                name=name,
                relpath=relpath,
                path=str(file),
                tree=tree,
                source=source,
                is_package=file.name == "__init__.py",
            )
        return cls(modules)

    # -- symbol table --------------------------------------------------------

    def _index_symbols(self) -> None:
        for mod in self.modules.values():
            mod.exports = _extract_all(mod.tree)
            for stmt in mod.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    mod.symbols[stmt.name] = "func"
                elif isinstance(stmt, ast.ClassDef):
                    mod.symbols[stmt.name] = "class"
                elif isinstance(stmt, ast.Assign):
                    for tgt in stmt.targets:
                        if isinstance(tgt, ast.Name):
                            mod.symbols.setdefault(tgt.id, "const")
                elif isinstance(stmt, ast.AnnAssign):
                    if isinstance(stmt.target, ast.Name):
                        mod.symbols.setdefault(stmt.target.id, "const")

    # -- import resolution ---------------------------------------------------

    def _resolve_base(self, mod: ModuleInfo, node: ast.ImportFrom) -> str:
        """Absolute dotted module an ImportFrom pulls from."""
        if node.level == 0:
            return node.module or ""
        parts = mod.package.split(".")
        if node.level > 1:
            parts = parts[: len(parts) - (node.level - 1)]
        base = ".".join(parts)
        return f"{base}.{node.module}" if node.module else base

    def _resolve_imports(self) -> None:
        edges: list[ImportEdge] = []
        for mod in self.modules.values():
            collector = _ImportCollector()
            collector.visit(mod.tree)
            for node, kind in collector.found:
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        bound = alias.asname or alias.name.split(".")[0]
                        if kind == EDGE_TOP:
                            mod.bindings.setdefault(
                                bound,
                                Binding(alias.name, "", node.lineno, kind),
                            )
                        if alias.name in self.modules:
                            edges.append(ImportEdge(
                                mod.name, alias.name, node.lineno,
                                node.col_offset, kind))
                    continue
                base = self._resolve_base(mod, node)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    submodule = f"{base}.{alias.name}"
                    if submodule in self.modules:
                        # ``from pkg import submodule``
                        if kind == EDGE_TOP:
                            mod.bindings.setdefault(
                                bound, Binding(submodule, "", node.lineno, kind))
                        edges.append(ImportEdge(
                            mod.name, submodule, node.lineno,
                            node.col_offset, kind))
                        continue
                    if kind == EDGE_TOP or bound not in mod.bindings:
                        mod.bindings[bound] = Binding(
                            base, alias.name, node.lineno, kind)
                    if base in self.modules:
                        edges.append(ImportEdge(
                            mod.name, base, node.lineno, node.col_offset,
                            kind, symbol=alias.name))
        self.edges = sorted(edges, key=ImportEdge.sort_key)

    # -- definitions ---------------------------------------------------------

    def _index_defs(self) -> None:
        for mod in self.modules.values():
            for stmt in mod.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._index_function(mod, stmt, prefix="", class_name="")
                elif isinstance(stmt, ast.ClassDef):
                    self._index_class(mod, stmt)
        for info in self.classes.values():
            self._track_attr_classes(info)

    def _index_function(
        self,
        mod: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        prefix: str,
        class_name: str,
    ) -> None:
        qualname = f"{prefix}{node.name}"
        info = FuncInfo(module=mod.name, qualname=qualname, node=node,
                        class_name=class_name)
        self.functions[info.id] = info
        nested_prefix = f"{qualname}.<locals>."
        for stmt in node.body:
            self._index_nested(mod, stmt, nested_prefix, class_name)

    def _index_nested(self, mod: ModuleInfo, stmt: ast.stmt, prefix: str,
                      class_name: str) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._index_function(mod, stmt, prefix, class_name)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._index_nested(mod, child, prefix, class_name)

    def _index_class(self, mod: ModuleInfo, node: ast.ClassDef) -> None:
        info = ClassInfo(name=node.name, module=mod.name, node=node)
        for base in node.bases:
            resolved = self.resolve_class_expr(mod, base)
            if resolved is not None:
                info.bases.append(resolved.id)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[stmt.name] = stmt
                self._index_function(mod, stmt, prefix=f"{node.name}.",
                                     class_name=node.name)
        self.classes[info.id] = info

    def _track_attr_classes(self, info: ClassInfo) -> None:
        """Record ``self.x = Cls(...)`` constructions as attribute types."""
        mod = self.modules[info.module]
        for method in info.methods.values():
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign):
                    continue
                value = node.value
                if not (isinstance(value, ast.Call)):
                    continue
                cls = self.resolve_class_expr(mod, value.func)
                if cls is None:
                    continue
                for tgt in node.targets:
                    if (
                        isinstance(tgt, ast.Attribute)
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id == "self"
                    ):
                        info.attr_classes.setdefault(tgt.attr, cls.id)

    # -- cross-module resolution --------------------------------------------

    def resolve_symbol(
        self, module: str, name: str, _seen: frozenset[tuple[str, str]] = frozenset()
    ) -> tuple[str, str] | None:
        """Follow import re-exports to ``name``'s defining module.

        Returns ``(module, kind)`` where ``kind`` is the symbol kind in
        the defining module, or ``None`` when the name leaves the
        project (external import) or does not exist.
        """
        if (module, name) in _seen or module not in self.modules:
            return None
        mod = self.modules[module]
        if name in mod.symbols:
            return module, mod.symbols[name]
        binding = mod.bindings.get(name)
        if binding is None:
            return None
        seen = _seen | {(module, name)}
        if binding.symbol == "":
            return None  # bound to a module object, not a symbol
        if binding.module in self.modules:
            return self.resolve_symbol(binding.module, binding.symbol, seen)
        return None

    def resolve_class_expr(
        self, mod: ModuleInfo, expr: ast.expr
    ) -> ClassInfo | None:
        """Resolve a Name/Attribute expression to a project class."""
        if isinstance(expr, ast.Name):
            resolved = self._chase(mod.name, expr.id)
            if resolved is not None and resolved in self.classes:
                return self.classes[resolved]
            return None
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            binding = mod.bindings.get(expr.value.id)
            if binding is not None and binding.symbol == "" \
                    and binding.module in self.modules:
                resolved = self._chase(binding.module, expr.attr)
                if resolved is not None and resolved in self.classes:
                    return self.classes[resolved]
        return None

    def _chase(self, module: str, name: str,
               _seen: frozenset[tuple[str, str]] = frozenset()) -> str | None:
        """Resolve (module, name) to a definition id ("module:name")."""
        if (module, name) in _seen or module not in self.modules:
            return None
        mod = self.modules[module]
        if name in mod.symbols and mod.symbols[name] in ("class", "func"):
            return f"{module}:{name}"
        binding = mod.bindings.get(name)
        if binding is None or binding.symbol == "":
            return None
        return self._chase(binding.module, binding.symbol,
                           _seen | {(module, name)})

    def resolve_func_expr(self, mod: ModuleInfo, expr: ast.expr) -> str | None:
        """Resolve a call-target expression to a function/class id."""
        if isinstance(expr, ast.Name):
            return self._chase(mod.name, expr.id)
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            binding = mod.bindings.get(expr.value.id)
            if binding is not None and binding.symbol == "" \
                    and binding.module in self.modules:
                return self._chase(binding.module, expr.attr)
        return None

    def class_mro(self, class_id: str) -> list[str]:
        """Project-visible linearisation: the class then its base chain."""
        out: list[str] = []
        stack = [class_id]
        while stack:
            cur = stack.pop(0)
            if cur in out or cur not in self.classes:
                continue
            out.append(cur)
            stack.extend(self.classes[cur].bases)
        return out

    def find_method(self, class_id: str, name: str) -> FuncInfo | None:
        for cid in self.class_mro(class_id):
            info = self.classes[cid]
            if name in info.methods:
                return self.functions.get(f"{info.module}:{info.name}.{name}")
        return None

    def subclasses_of(self, class_id: str) -> set[str]:
        """``class_id`` plus every project class that derives from it."""
        out = {class_id}
        changed = True
        while changed:
            changed = False
            for info in self.classes.values():
                if info.id in out:
                    continue
                if any(base in out for base in info.bases):
                    out.add(info.id)
                    changed = True
        return out
