"""Layering contract: package DAG, cycle detection, ownership edges.

The codebase is organised as five layers; a module may import its own
layer or any layer *below* it, never above:

=============  ==========================================================
foundation     ``errors``, ``units``, ``contracts``
data           ``traces``, ``delta``, ``stats``
devices        ``disk``, ``flash``, ``nvram``, ``raid``, ``cache``, ``core``
simulation     ``sim``, ``engine``, ``faults``, ``reliability``, ``serve``
application    ``harness``, ``devtools``, the root ``repro`` module
=============  ==========================================================

This encodes the two prose rules from the determinism contract: the
engine is the only clock owner (nothing below the simulation layer can
reach it, and ``engine.core`` — the event loop that *is* the clock —
may only be imported from inside ``repro.engine``, RPR103), and
harness code is never imported by sim code (``harness`` sits in the
top layer, RPR102).

Cycles (RPR101) are checked over *top-level* edges only: a deferred
(function-body) import is the sanctioned way to break an import-time
cycle, and ``TYPE_CHECKING`` imports never execute at all.  Layering
(RPR102/103) is stricter: it also covers deferred imports, because a
lower layer calling upward at run time is still an inverted
dependency — only typing-only edges are exempt.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lint.findings import Finding
from .project import EDGE_TOP, EDGE_TYPING, ImportEdge, Project, finding_at


@dataclass(frozen=True)
class LayerSpec:
    """Ordered layer table: index in ``layers`` is the layer's height."""

    layers: tuple[tuple[str, tuple[str, ...]], ...]

    def index_of(self, top_package: str) -> int | None:
        """Layer height of a top-level package ("" = the repro root)."""
        for idx, (_, packages) in enumerate(self.layers):
            if top_package in packages:
                return idx
        return None

    def name_of(self, idx: int) -> str:
        return self.layers[idx][0]


DEFAULT_LAYERS = LayerSpec(layers=(
    ("foundation", ("errors", "units", "contracts")),
    ("data", ("traces", "delta", "stats")),
    ("devices", ("disk", "flash", "nvram", "raid", "cache", "core")),
    ("simulation", ("sim", "engine", "faults", "reliability", "serve")),
    ("application", ("harness", "devtools", "")),
))

#: Modules only this package prefix may import (ownership edges).
#: ``engine.core`` owns the simulated clock; everything else must go
#: through the ``repro.engine`` facade so there is exactly one owner.
OWNERSHIP = (("repro.engine.core", "repro.engine"),)


def _cycles(project: Project) -> list[list[str]]:
    """Strongly connected components of size > 1 over top-level edges.

    Tarjan's algorithm, iterative, visiting nodes and neighbours in
    sorted order so the output is deterministic.
    """
    graph: dict[str, list[str]] = {name: [] for name in project.modules}
    for edge in project.edges:
        if edge.kind == EDGE_TOP and edge.dst in graph:
            if edge.dst not in graph[edge.src]:
                graph[edge.src].append(edge.dst)
    for neighbours in graph.values():
        neighbours.sort()

    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for root in sorted(graph):
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_idx = work.pop()
            if child_idx == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            neighbours = graph[node]
            for i in range(child_idx, len(neighbours)):
                nxt = neighbours[i]
                if nxt not in index:
                    work.append((node, i + 1))
                    work.append((nxt, 0))
                    recurse = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if recurse:
                continue
            if low[node] == index[node]:
                scc: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                if len(scc) > 1:
                    sccs.append(sorted(scc))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sorted(sccs)


def _cycle_edge(project: Project, scc: list[str]) -> ImportEdge:
    """A representative edge of the cycle, anchored at its first module."""
    members = set(scc)
    anchor = scc[0]
    for edge in project.edges:
        if edge.kind == EDGE_TOP and edge.src == anchor and edge.dst in members:
            return edge
    # Unreachable for a real SCC, but keep a total function.
    return ImportEdge(anchor, anchor, 1, 0, EDGE_TOP)


def check_layering(
    project: Project, spec: LayerSpec = DEFAULT_LAYERS
) -> list[Finding]:
    """RPR101 cycles, RPR102 layer inversions, RPR103 ownership edges."""
    findings: list[Finding] = []

    for scc in _cycles(project):
        edge = _cycle_edge(project, scc)
        mod = project.modules[edge.src]
        findings.append(finding_at(
            mod, edge.line, edge.col, "RPR101",
            "import cycle at module load time: " + " -> ".join(scc + [scc[0]])
            + "; break it with a deferred import or by moving the shared "
              "code down a layer",
        ))

    seen: set[tuple[str, str, int, int]] = set()
    for edge in project.edges:
        if edge.kind == EDGE_TYPING:
            continue
        site = (edge.src, edge.dst, edge.line, edge.col)
        if site in seen:
            continue  # one statement importing several symbols: one finding
        seen.add(site)
        src_mod = project.modules[edge.src]
        dst_mod = project.modules[edge.dst]
        src_layer = spec.index_of(src_mod.top_package)
        dst_layer = spec.index_of(dst_mod.top_package)
        if src_layer is None or dst_layer is None:
            continue  # package not in the contract: nothing to enforce
        if dst_layer > src_layer:
            findings.append(finding_at(
                src_mod, edge.line, edge.col, "RPR102",
                f"layer violation: {edge.src} ({spec.name_of(src_layer)}) "
                f"imports {edge.dst} ({spec.name_of(dst_layer)}); "
                f"{spec.name_of(src_layer)} may only import itself or lower "
                "layers",
            ))

    for owned, owner_prefix in OWNERSHIP:
        own_seen: set[tuple[str, int, int]] = set()
        for edge in project.edges:
            if edge.kind == EDGE_TYPING or edge.dst != owned:
                continue
            own_site = (edge.src, edge.line, edge.col)
            if own_site in own_seen:
                continue
            own_seen.add(own_site)
            if edge.src == owner_prefix or \
                    edge.src.startswith(owner_prefix + "."):
                continue
            src_mod = project.modules[edge.src]
            findings.append(finding_at(
                src_mod, edge.line, edge.col, "RPR103",
                f"ownership violation: {owned} is internal to "
                f"{owner_prefix} (single clock owner); import the "
                f"{owner_prefix} facade instead",
            ))

    return sorted(findings, key=Finding.sort_key)
