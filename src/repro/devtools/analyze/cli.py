"""``kdd-repro analyze`` command line.

Exit codes mirror kdd-lint: 0 clean, 1 findings remain after the
baseline, 2 usage or configuration error.  Output (human and JSON) is
byte-identical across runs and file-discovery orders.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path

from ...errors import ConfigError, ReproError
from ..lint.baseline import apply_baseline, load_baseline, write_baseline
from ..lint.findings import Finding
from .columnar import check_columnar, columnar_report
from .deadcode import check_dead_public, check_unused_imports
from .effects import check_effects, effects_report
from .excflow import check_contracts
from .graphio import architecture_md, graph_dot, graph_json
from .layers import check_layering
from .project import Project
from .rngflow import check_rng_provenance
from .suppress import COLUMNAR_CODES, EFFECTS_CODES, apply_suppressions
from .unitflow import check_units

_DEFAULT_TARGET = "src/repro"

#: Gating analyses, in code order.  RPR110 (dead public symbols) is
#: report-only and opt-in via --dead-code.
_ANALYSES = (
    check_layering,
    check_units,
    check_rng_provenance,
    check_contracts,
    check_unused_imports,
    check_effects,
    check_columnar,
)


def analyze_project(project: Project, dead_code: bool = False) -> list[Finding]:
    """Run every gating analysis over one parsed :class:`Project`.

    Inline ``# kdd-analyze: disable=RPRnnn`` suppressions are applied
    here (with unused-suppression meta-findings), so every caller —
    CLI, CI gate, tests — sees the same post-suppression view.
    """
    findings: list[Finding] = []
    for analysis in _ANALYSES:
        findings.extend(analysis(project))
    if dead_code:
        findings.extend(check_dead_public(project))
    findings = apply_suppressions(project, findings)
    return sorted(findings, key=Finding.sort_key)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="kdd-repro analyze",
        description="Whole-program static analysis: layering contract, "
        "flow-sensitive unit/RNG taint, exception-flow verification, and "
        "effect/write-set contracts (mirror coherence, fast-path "
        "subsumption, sweep races).",
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help=f"files or directories to analyze (default: {_DEFAULT_TARGET})",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="output format (default %(default)s); json output is stable "
        "and byte-identical across runs",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", type=Path, default=None,
        help="JSON baseline of grandfathered findings to ignore "
        "(kdd-lint baseline format)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline to cover all current findings, then exit 0",
    )
    parser.add_argument(
        "--dead-code", action="store_true",
        help="also report dead public symbols (RPR110, report-only)",
    )
    parser.add_argument(
        "--effects", action="store_true",
        help="run only the effect/write-set contracts (RPR201-RPR207)",
    )
    parser.add_argument(
        "--effects-report", metavar="FILE", type=Path, default=None,
        help="write the inferred effect model (write-set closures, choke "
        "points, sweep reachability) as stable JSON",
    )
    parser.add_argument(
        "--columnar", action="store_true",
        help="run only the columnar dtype/shape contracts (RPR301-RPR305)",
    )
    parser.add_argument(
        "--columnar-report", metavar="FILE", type=Path, default=None,
        help="write the declared columnar contract surface (@columnar "
        "declarations, hot modules, choke points) as stable JSON",
    )
    parser.add_argument(
        "--export-dot", metavar="FILE", type=Path, default=None,
        help="write the package-level import graph as Graphviz DOT",
    )
    parser.add_argument(
        "--export-json", metavar="FILE", type=Path, default=None,
        help="write the module-level import graph as JSON",
    )
    parser.add_argument(
        "--write-docs", metavar="FILE", type=Path, default=None,
        help="write the generated architecture map (docs/architecture.md)",
    )
    return parser


def _render_json(findings: list[Finding]) -> str:
    counts = Counter(f.code for f in findings)
    doc = {
        "version": 1,
        "findings": [f.to_json() for f in findings],
        "counts": dict(sorted(counts.items())),
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if args.update_baseline and args.baseline is None:
        print("kdd-repro analyze: --update-baseline requires --baseline",
              file=sys.stderr)
        return 2

    paths = [Path(p) for p in (args.paths or [_DEFAULT_TARGET])]
    try:
        project = Project.load(paths)
        if args.effects or args.columnar:
            findings = []
            active: frozenset[str] = frozenset()
            if args.effects:
                findings.extend(check_effects(project))
                active |= EFFECTS_CODES
            if args.columnar:
                findings.extend(check_columnar(project))
                active |= COLUMNAR_CODES
            findings = apply_suppressions(project, findings, active)
        else:
            findings = analyze_project(project, dead_code=args.dead_code)

        exports = (
            (args.export_dot, graph_dot),
            (args.export_json, graph_json),
            (args.write_docs, architecture_md),
            (args.effects_report, effects_report),
            (args.columnar_report, columnar_report),
        )
        for target, render in exports:
            if target is not None:
                try:
                    target.parent.mkdir(parents=True, exist_ok=True)
                    target.write_text(render(project), encoding="utf-8")
                except OSError as exc:
                    raise ConfigError(
                        f"cannot write report {target}: {exc}"
                    ) from exc

        if args.update_baseline:
            count = write_baseline(args.baseline, findings)
            print(
                f"kdd-repro analyze: wrote {count} fingerprint(s) to "
                f"{args.baseline}",
                file=sys.stderr,
            )
            return 0

        stale = 0
        if args.baseline is not None:
            findings, stale = apply_baseline(
                findings, load_baseline(args.baseline))
    except ReproError as exc:
        print(f"kdd-repro analyze: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(_render_json(findings))
    else:
        for finding in findings:
            print(finding.render())
        if findings:
            counts = Counter(f.code for f in findings)
            summary = ", ".join(f"{c}: {n}" for c, n in sorted(counts.items()))
            print(f"\n{len(findings)} finding(s) ({summary})")
        else:
            print("kdd-repro analyze: clean")
    if stale:
        print(
            f"kdd-repro analyze: {stale} stale baseline "
            f"entr{'y' if stale == 1 else 'ies'} (fixed findings); "
            "regenerate with --update-baseline",
            file=sys.stderr,
        )
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
