"""Exception-flow verification (RPR107, RPR108).

Computes, for every project function, the set of ``repro.errors``
taxonomy classes it *may raise* — a fixpoint over the project call
graph with structured ``try``/``except`` evaluation — and checks the
public entry points of the simulation layers (``sim``, ``engine``,
``faults``) against their declared :func:`repro.errors.raises`
contracts:

* **RPR107** — a reachable taxonomy raise is missing from the entry
  point's declared contract.  Declaring a base class covers its
  subclasses (``except`` semantics); over-declaration is allowed, so
  contracts can be written generously without going stale.
* **RPR108** — a public entry point that can raise taxonomy errors has
  no contract at all.

:class:`repro.errors.ConfigError` is **ambient**: every boundary may
reject an invalid configuration, so it is excluded from may-raise sets
entirely and never needs declaring.  Dunder methods are exempt from
RPR108 (an ``__init__`` is not an entry point), though a dunder that
*declares* a contract is still held to it.

Soundness note: calls the analysis cannot resolve (duck-typed
callables, external libraries) contribute nothing to may-raise sets.
The resolver covers module functions, imported names, ``self.m()``,
construction-tracked ``self.attr.m()`` and local ``v = Cls(); v.m()``
receivers, ``super().m()`` with a single project base, and class
construction (``__init__``/``__post_init__``).  That is enough to make
the sets *useful* (they catch real escalation-chain gaps, see the
FaultPipelineHook proof in tests) without pretending to be complete.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..lint.findings import Finding
from .project import FuncInfo, ModuleInfo, Project, finding_at

ERRORS_MODULE = "repro.errors"
ROOT_ERROR = f"{ERRORS_MODULE}:ReproError"
AMBIENT = f"{ERRORS_MODULE}:ConfigError"
RAISES_DECORATOR = f"{ERRORS_MODULE}:raises"

#: Top-level packages whose public functions are checked entry points.
ENTRY_PACKAGES = frozenset({"sim", "engine", "faults", "serve"})

_MAX_ITERATIONS = 50


@dataclass
class _FuncCtx:
    """Resolution context for one function body."""

    mod: ModuleInfo
    func: FuncInfo
    class_id: str = ""
    local_classes: dict[str, str] = field(default_factory=dict)


class ExceptionFlow:
    """May-raise sets and contract checks over one :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project
        #: taxonomy class ids ("repro.errors:SimulationError").
        self.taxonomy: set[str] = set()
        self._ambient: set[str] = set()
        #: func id -> taxonomy ids it may raise (ConfigError excluded).
        self.may_raise: dict[str, set[str]] = {}
        #: func id -> declared contract ids, only when @raises is present.
        self.declared: dict[str, set[str]] = {}
        self._build_taxonomy()
        self._collect_contracts()
        self._solve()

    # -- setup ---------------------------------------------------------------

    def _build_taxonomy(self) -> None:
        if ROOT_ERROR in self.project.classes:
            self.taxonomy = self.project.subclasses_of(ROOT_ERROR)
        if AMBIENT in self.project.classes:
            self._ambient = self.project.subclasses_of(AMBIENT)

    def _collect_contracts(self) -> None:
        for func in self.project.functions.values():
            mod = self.project.modules[func.module]
            for dec in func.node.decorator_list:
                if not isinstance(dec, ast.Call):
                    continue
                target = self.project.resolve_func_expr(mod, dec.func)
                if target != RAISES_DECORATOR:
                    continue
                declared: set[str] = set()
                for arg in dec.args:
                    cls = self.project.resolve_class_expr(mod, arg)
                    if cls is not None and cls.id in self.taxonomy:
                        declared.add(cls.id)
                self.declared[func.id] = declared

    # -- call/raise resolution -----------------------------------------------

    def _make_ctx(self, func: FuncInfo) -> _FuncCtx:
        mod = self.project.modules[func.module]
        class_id = f"{func.module}:{func.class_name}" if func.class_name else ""
        ctx = _FuncCtx(mod=mod, func=func, class_id=class_id)
        for node in ast.walk(func.node):
            if isinstance(node, ast.Assign) and \
                    isinstance(node.value, ast.Call):
                cls = self.project.resolve_class_expr(mod, node.value.func)
                if cls is None:
                    continue
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        ctx.local_classes.setdefault(tgt.id, cls.id)
        return ctx

    def _callees(self, ctx: _FuncCtx, call: ast.Call) -> list[str]:
        project = self.project
        resolved = project.resolve_func_expr(ctx.mod, call.func)
        if resolved is not None:
            if resolved in project.functions:
                return [resolved]
            if resolved in project.classes:
                out = []
                for name in ("__init__", "__post_init__"):
                    method = project.find_method(resolved, name)
                    if method is not None:
                        out.append(method.id)
                return out
            return []
        func = call.func
        if not isinstance(func, ast.Attribute):
            return []
        base = func.value
        if isinstance(base, ast.Name):
            receiver = ""
            if base.id == "self" and ctx.class_id:
                receiver = ctx.class_id
            elif base.id in ctx.local_classes:
                receiver = ctx.local_classes[base.id]
            if receiver:
                method = project.find_method(receiver, func.attr)
                if method is not None:
                    return [method.id]
            return []
        if isinstance(base, ast.Attribute) and \
                isinstance(base.value, ast.Name) and \
                base.value.id == "self" and ctx.class_id:
            for cid in project.class_mro(ctx.class_id):
                attr_cls = project.classes[cid].attr_classes.get(base.attr)
                if attr_cls is not None:
                    method = project.find_method(attr_cls, func.attr)
                    return [method.id] if method is not None else []
            return []
        if isinstance(base, ast.Call) and isinstance(base.func, ast.Name) \
                and base.func.id == "super" and ctx.class_id:
            bases = project.classes[ctx.class_id].bases
            if len(bases) == 1:
                method = project.find_method(bases[0], func.attr)
                if method is not None:
                    return [method.id]
        return []

    def _taxonomy_of(self, ctx: _FuncCtx, expr: ast.expr) -> str | None:
        target = expr.func if isinstance(expr, ast.Call) else expr
        cls = self.project.resolve_class_expr(ctx.mod, target)
        if cls is None or cls.id not in self.taxonomy:
            return None
        if cls.id in self._ambient:
            return None  # ConfigError is ambient, never tracked
        return cls.id

    def _caught(self, ctx: _FuncCtx, handler: ast.ExceptHandler) -> set[str]:
        """Taxonomy classes a handler clause catches (closure)."""
        if handler.type is None:
            return set(self.taxonomy)
        exprs = handler.type.elts \
            if isinstance(handler.type, ast.Tuple) else [handler.type]
        caught: set[str] = set()
        for expr in exprs:
            cls = self.project.resolve_class_expr(ctx.mod, expr)
            if cls is not None:
                if cls.id in self.taxonomy:
                    caught |= self.project.subclasses_of(cls.id)
                continue
            name = expr.attr if isinstance(expr, ast.Attribute) else (
                expr.id if isinstance(expr, ast.Name) else "")
            if name in ("Exception", "BaseException"):
                caught |= set(self.taxonomy)
        return caught

    # -- structured body evaluation ------------------------------------------

    def _expr_calls(self, ctx: _FuncCtx, node: ast.AST) -> set[str]:
        """May-raise contribution of calls in an expression subtree."""
        out: set[str] = set()
        stack: list[ast.AST] = [node]
        while stack:
            cur = stack.pop()
            if isinstance(cur, (ast.Lambda, ast.FunctionDef,
                                ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # deferred bodies don't raise here
            if isinstance(cur, ast.Call):
                for callee in self._callees(ctx, cur):
                    out |= self.may_raise.get(callee, set())
            stack.extend(ast.iter_child_nodes(cur))
        return out

    def _block(self, ctx: _FuncCtx, stmts: list[ast.stmt],
               reraise: set[str]) -> set[str]:
        out: set[str] = set()
        for stmt in stmts:
            out |= self._stmt(ctx, stmt, reraise)
        return out

    def _stmt(self, ctx: _FuncCtx, stmt: ast.stmt,
              reraise: set[str]) -> set[str]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return set()
        if isinstance(stmt, ast.Raise):
            out = set()
            if stmt.exc is None:
                out |= reraise
            else:
                out |= self._expr_calls(ctx, stmt.exc)
                cls = self._taxonomy_of(ctx, stmt.exc)
                if cls is not None:
                    out.add(cls)
            if stmt.cause is not None:
                out |= self._expr_calls(ctx, stmt.cause)
            return out
        if isinstance(stmt, ast.Try):
            body = self._block(ctx, stmt.body, reraise)
            escaped = set(body)
            handler_sets: list[set[str]] = []
            for handler in stmt.handlers:
                caught = self._caught(ctx, handler)
                handler_sets.append(
                    self._block(ctx, handler.body, reraise=body & caught))
                escaped -= caught
            out = escaped
            for handled in handler_sets:
                out |= handled
            out |= self._block(ctx, stmt.orelse, reraise)
            out |= self._block(ctx, stmt.finalbody, reraise)
            return out
        if isinstance(stmt, (ast.If, ast.While)):
            out = self._expr_calls(ctx, stmt.test)
            out |= self._block(ctx, stmt.body, reraise)
            out |= self._block(ctx, stmt.orelse, reraise)
            return out
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            out = self._expr_calls(ctx, stmt.iter)
            out |= self._block(ctx, stmt.body, reraise)
            out |= self._block(ctx, stmt.orelse, reraise)
            return out
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            out: set[str] = set()
            for item in stmt.items:
                out |= self._expr_calls(ctx, item.context_expr)
            out |= self._block(ctx, stmt.body, reraise)
            return out
        return self._expr_calls(ctx, stmt)

    # -- fixpoint ------------------------------------------------------------

    def _solve(self) -> None:
        funcs = sorted(self.project.functions)
        self.may_raise = {fid: set() for fid in funcs}
        contexts = {fid: self._make_ctx(self.project.functions[fid])
                    for fid in funcs}
        for _ in range(_MAX_ITERATIONS):
            changed = False
            for fid in funcs:
                ctx = contexts[fid]
                new = self._block(ctx, list(ctx.func.node.body), set())
                if new != self.may_raise[fid]:
                    self.may_raise[fid] = new
                    changed = True
            if not changed:
                return
        # The lattice is finite and monotone, so this is unreachable;
        # bail out with the partial result rather than spinning.

    # -- contract checks -----------------------------------------------------

    def _covered(self, declared: set[str]) -> set[str]:
        out: set[str] = set()
        for cls_id in declared:
            out |= self.project.subclasses_of(cls_id)
        return out

    @staticmethod
    def _class_names(ids: set[str]) -> str:
        return ", ".join(sorted(i.rsplit(":", 1)[1] for i in ids))

    def check(self) -> list[Finding]:
        findings: list[Finding] = []
        for fid in sorted(self.project.functions):
            func = self.project.functions[fid]
            mod = self.project.modules[func.module]
            if mod.top_package not in ENTRY_PACKAGES or not func.is_public:
                continue
            computed = self.may_raise[fid]
            declared = self.declared.get(fid)
            if declared is None:
                if computed and not func.name.startswith("__"):
                    findings.append(finding_at(
                        mod, func.node.lineno, func.node.col_offset, "RPR108",
                        f"public entry point {func.qualname}() may raise "
                        f"{self._class_names(computed)} but declares no "
                        "contract; add @raises(...) from repro.errors",
                    ))
                continue
            missing = computed - self._covered(declared)
            if missing:
                findings.append(finding_at(
                    mod, func.node.lineno, func.node.col_offset, "RPR107",
                    f"contract of {func.qualname}() is missing reachable "
                    f"raise(s): {self._class_names(missing)}; extend "
                    "@raises(...) or handle them inside",
                ))
        return sorted(findings, key=Finding.sort_key)


def check_contracts(project: Project) -> list[Finding]:
    """RPR107/RPR108: may-raise sets vs declared @raises contracts."""
    return ExceptionFlow(project).check()
