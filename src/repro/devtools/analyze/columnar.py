"""Columnar contract analysis (RPR301-RPR305).

The vectorized hot path moved the simulation's correctness-critical
inner loops into numpy columnar kernels, and none of the earlier
analyses see array semantics: a silent int32 downcast of an LBA
column, a write through a view aliasing the :class:`CacheSets` mirror,
or a chained fancy-index assignment that mutates a temporary would all
pass the layering/unit/effects suites clean.  This module runs an
interprocedural dtype/shape dataflow over the single-parse
:class:`~repro.devtools.analyze.project.Project` model instead.

The per-value lattice is a :class:`Col`: a canonical dtype name (or
``None`` for unknown), whether the value is an ndarray, whether it
carries *index taint* (an LBA / page-address / epoch column, which
must stay 64-bit integer end-to-end), whether it aliases the
``CacheSets`` membership mirror, and whether a float value has passed
through an explicit rounding step (the RPR302 safe-cast token).
Branches merge by agreement, exactly like the RPR104 unit lattice —
conservative on purpose, because the pass gates CI.

Declared contracts come from :func:`repro.contracts.columnar`:

* parameter / return dtype specs are verified against the inferred
  flow inside the body and at every resolved call site,
* *named column* entries (keys that are neither parameters nor
  ``"return"``) type the body's locals of that name, and
* shape symbols assert that arguments sharing a symbol are sliced the
  same way at call sites.

Rules
-----

RPR301
    Index columns leave int64/uint64: narrowing ``astype``, a
    ``dtype=`` literal below 64-bit int on an index-named binding,
    implicit float promotion (true division) of an index array, or a
    value that contradicts a ``@columnar`` declaration.
RPR302
    Unsafe casts: float→int ``astype`` without an explicit rounding
    step (``np.floor_divide``/``np.rint``/...), and a unit-carrying
    value (RPR104's bytes/pages/ms/seconds lattice) cast below 64-bit
    width.
RPR303
    In-place mutation through an array derived from the membership
    mirror (``_lba_table``) outside a ``@mutates_membership`` choke
    point — slice/fancy assignment, ``+=``, ``out=``, ``np.put`` and
    friends.  Composes with the RPR201 effects closure, which only
    sees direct attribute writes.
RPR304
    Boolean-mask misuse: ``and``/``or`` on mask arrays (truth-value
    error or short-circuit surprise at runtime), and chained
    fancy-index assignment that writes into a temporary copy.
RPR305
    Scalar loop in a hot module: a python ``for`` over an ndarray or a
    per-element ``.item()`` in one of the designated hot modules,
    unless the function is on the explicit allowlist.

Suppression uses the shared inline syntax ``# kdd-analyze:
disable=RPRnnn`` (see :mod:`repro.devtools.analyze.suppress`), never a
baseline entry: a columnar exception is a reviewed property of a line
of code, not a grandfathered debt.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field, replace

from ..lint.findings import Finding
from .project import FuncInfo, ModuleInfo, Project, finding_at
from .unitflow import unit_of_name

# -- contract configuration --------------------------------------------------

COLUMNAR_DECORATOR = "repro.contracts:columnar"
MUTATES_DECORATOR = "repro.contracts:mutates_membership"

#: ndarray halves of the membership directory; any array *derived*
#: from one of these carries mirror taint (RPR303).
MIRROR_ATTRS = frozenset({"_lba_table"})

#: Attributes holding the structured trace record array.
RECORD_ATTRS = frozenset({"records", "_records"})

#: The IO_DTYPE schema (repro.traces.record); field subscripts of a
#: record array get these dtypes, and the address column is index-
#: tainted at the source.
RECORD_FIELDS = {
    "time": "float64",
    "lba": "uint64",
    "npages": "uint32",
    "is_read": "bool",
}

#: Name tokens that mark a value as an address/index column.  Token
#: split matches the RPR104 convention (underscores and non-word
#: characters), so ``npages`` — a *count* — is one token and stays
#: untainted while ``n_pages`` would not be an address either way.
INDEX_TOKENS = frozenset(
    {"lba", "lbas", "lpn", "lpns", "page", "pages", "epoch", "epochs"}
)

#: Index columns must stay in one of these dtypes end-to-end.
INDEX_DTYPES = frozenset({"int64", "uint64"})

#: Modules whose request-path bodies must stay vectorized (RPR305).
HOT_MODULES = frozenset(
    {
        "repro.cache.common",
        "repro.cache.partition",
        "repro.cache.sets",
        "repro.serve.composer",
        "repro.serve.driver",
        "repro.stats.streaming",
        "repro.traces.trace",
    }
)

#: Reviewed scalar paths inside hot modules.  Trace iteration *is* the
#: scalar protocol the event-driven simulator consumes; the P² update
#: is scalar by construction (five markers, O(1) state).
HOT_ALLOWLIST = frozenset(
    {
        "repro.traces.trace:Trace.__iter__",
    }
)

#: Tooling/bench packages are out of scope: they post-process results
#: and never touch the simulation's columnar state.
EXEMPT_PACKAGES = frozenset({"devtools", "harness"})

_CANONICAL_DTYPES = frozenset(
    {
        "bool",
        "int8",
        "int16",
        "int32",
        "int64",
        "uint8",
        "uint16",
        "uint32",
        "uint64",
        "float16",
        "float32",
        "float64",
    }
)

#: Scalar (non-array) dtype specs accepted in declarations.
_SCALAR_SPECS = frozenset({"int", "float"})
#: Sequence-of-python-scalars specs (``touch_many`` takes a list, not
#: an ndarray; its elements still must not be floats).
_SEQUENCE_SPECS = frozenset({"list[int]", "list[float]"})

_WIDTH = {
    "bool": 1,
    "int8": 1,
    "uint8": 1,
    "int16": 2,
    "uint16": 2,
    "float16": 2,
    "int32": 4,
    "uint32": 4,
    "float32": 4,
    "int64": 8,
    "uint64": 8,
    "float64": 8,
}

_TOKEN_SPLIT = re.compile(r"[_\W]+")

#: numpy namespace functions that return rounded floats (the RPR302
#: safe-cast token) — ``floor_divide`` covers the windowing idiom
#: ``np.floor_divide(times, w).astype(np.int64)``.
_ROUNDING_FUNCS = frozenset(
    {"floor", "ceil", "rint", "trunc", "round", "around", "floor_divide"}
)

#: numpy namespace functions whose result propagates the first data
#: argument's dtype and index taint (all of them copy, so mirror taint
#: drops).
_PROPAGATE_FUNCS = frozenset(
    {
        "sort",
        "unique",
        "repeat",
        "roll",
        "flip",
        "diff",
        "cumsum",
        "clip",
        "concatenate",
        "minimum",
        "maximum",
        "abs",
        "copy",
        "ascontiguousarray",
    }
)

#: numpy namespace functions returning platform-int index arrays.
_INTP_FUNCS = frozenset(
    {"argsort", "searchsorted", "flatnonzero", "bincount", "argmin", "argmax"}
)

#: numpy namespace functions that mutate their first argument.
_WRITE_FUNCS = frozenset({"put", "place", "copyto", "putmask", "fill_diagonal"})

#: ndarray methods returning another view of the same buffer.
_VIEW_METHODS = frozenset(
    {"reshape", "ravel", "view", "squeeze", "transpose", "swapaxes"}
)

#: Generator.<method> -> result dtype (None: propagate nothing).
_RNG_METHODS = {
    "random": "float64",
    "uniform": "float64",
    "normal": "float64",
    "standard_normal": "float64",
    "exponential": "float64",
    "integers": "int64",
    "poisson": "int64",
    "permutation": "int64",
    "geometric": "int64",
}

_RULES = {
    "RPR301": "index column leaves int64 (dtype-flow taint)",
    "RPR302": "unsafe cast (float truncation / unit-carrying narrow)",
    "RPR303": "in-place write through a membership-mirror view",
    "RPR304": "boolean-mask misuse (and/or, chained fancy assignment)",
    "RPR305": "scalar loop over an ndarray in a hot module",
}


def _name_tokens(name: str) -> set[str]:
    return set(_TOKEN_SPLIT.split(name.lower()))


def is_index_name(name: str) -> bool:
    """True when a name reads as an address/index column."""
    return bool(_name_tokens(name) & INDEX_TOKENS)


# -- the per-value lattice ----------------------------------------------------


@dataclass(frozen=True)
class Col:
    """What the dataflow knows about one value."""

    dtype: str | None = None  # canonical dtype name, or None = unknown
    array: bool = False  # definitely an ndarray
    index: bool = False  # carries address/index taint
    mirror: bool = False  # derived from the membership mirror
    rounded: bool = False  # float that passed an explicit rounding step


UNKNOWN = Col()


def _merge_col(a: Col, b: Col) -> Col:
    if a == b:
        return a
    return Col(
        dtype=a.dtype if a.dtype == b.dtype else None,
        array=a.array and b.array,
        index=a.index or b.index,
        mirror=a.mirror or b.mirror,
        rounded=a.rounded and b.rounded,
    )


def _is_float(dtype: str | None) -> bool:
    return dtype is not None and dtype.startswith("float")


def _is_int(dtype: str | None) -> bool:
    return dtype is not None and (
        dtype.startswith("int") or dtype.startswith("uint")
    )


# -- declarations -------------------------------------------------------------


@dataclass(frozen=True)
class Spec:
    """One parsed dtype spec from a ``@columnar`` declaration."""

    options: tuple[str, ...] = ()  # acceptable array dtypes
    scalar: str = ""  # "int" / "float" for python scalars
    sequence: str = ""  # "int" / "float" for python sequences
    elements: tuple["Spec", ...] | None = None  # tuple returns

    def matches(self, col: Col) -> bool:
        """Whether an inferred value is compatible (unknown passes)."""
        if self.elements is not None:
            return True  # tuple specs are checked element-wise
        if self.scalar:
            return not col.array
        if self.sequence:
            return not (col.array and _is_float(col.dtype)
                        and self.sequence == "int")
        if col.dtype is None:
            return True
        return col.dtype in self.options

    def describe(self) -> str:
        if self.elements is not None:
            return "(" + ", ".join(e.describe() for e in self.elements) + ")"
        if self.scalar:
            return self.scalar
        if self.sequence:
            return f"list[{self.sequence}]"
        return "|".join(self.options)

    def to_col(self) -> Col:
        if self.elements is not None or self.scalar or self.sequence:
            return UNKNOWN
        dtype = self.options[0] if len(self.options) == 1 else None
        return Col(dtype=dtype, array=True)


def parse_spec(text: str) -> Spec | None:
    """Parse one dtype spec string; None when malformed."""
    text = text.strip()
    if text.startswith("(") and text.endswith(")"):
        parts = [p.strip() for p in text[1:-1].split(",") if p.strip()]
        if not parts:
            return None
        elements = []
        for part in parts:
            sub = parse_spec(part)
            if sub is None or sub.elements is not None:
                return None
            elements.append(sub)
        return Spec(elements=tuple(elements))
    if text in _SCALAR_SPECS:
        return Spec(scalar=text)
    if text in _SEQUENCE_SPECS:
        return Spec(sequence=text[5:-1])
    options = tuple(p.strip() for p in text.split("|"))
    if not options or any(opt not in _CANONICAL_DTYPES for opt in options):
        return None
    return Spec(options=options)


@dataclass
class Decl:
    """One ``@columnar`` declaration, read straight from the AST."""

    func_id: str
    node: ast.expr  # the decorator expression (for anchoring findings)
    params: dict[str, Spec] = field(default_factory=dict)
    ret: Spec | None = None
    columns: dict[str, Spec] = field(default_factory=dict)
    shapes: dict[str, str] = field(default_factory=dict)


def _literal_str_dict(node: ast.expr | None) -> dict[str, str] | None:
    """Extract ``{"name": "spec"}`` from a literal dict expression."""
    if node is None:
        return {}
    if not isinstance(node, ast.Dict):
        return None
    out: dict[str, str] = {}
    for key, value in zip(node.keys, node.values):
        if not (
            isinstance(key, ast.Constant)
            and isinstance(key.value, str)
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            return None
        out[key.value] = value.value
    return out


# -- the per-function walker --------------------------------------------------


class _FunctionCols:
    """One forward dtype/shape pass over a function body."""

    def __init__(
        self,
        analysis: "ColumnarAnalysis",
        mod: ModuleInfo,
        func: FuncInfo,
        decl: Decl | None,
        is_choke: bool,
        hot: bool,
    ) -> None:
        self.analysis = analysis
        self.mod = mod
        self.func = func
        self.decl = decl
        self.is_choke = is_choke
        self.hot = hot
        self.env: dict[str, Col] = {}

    # -- reporting -----------------------------------------------------------

    def _where(self) -> str:
        return f" in {self.func.qualname}()"

    def report(self, node: ast.AST, code: str, message: str) -> None:
        self.analysis.report(self.mod, node, code, message)

    # -- expression typing ---------------------------------------------------

    def col_of(self, expr: ast.expr) -> Col:
        if isinstance(expr, ast.Name):
            if expr.id in self.env:
                return self.env[expr.id]
            return Col(index=is_index_name(expr.id))
        if isinstance(expr, ast.Attribute):
            return self._attr_col(expr)
        if isinstance(expr, ast.Subscript):
            return self._subscript_col(expr)
        if isinstance(expr, ast.BinOp):
            return self._binop_col(expr)
        if isinstance(expr, ast.UnaryOp):
            if isinstance(expr.op, ast.Not):
                return UNKNOWN
            base = self.col_of(expr.operand)
            # -a / ~a allocate a fresh buffer; mirror taint drops.
            return replace(base, mirror=False)
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                col = self.col_of(value)
                if col.array and col.dtype == "bool":
                    op = "and" if isinstance(expr.op, ast.And) else "or"
                    self.report(
                        value,
                        "RPR304",
                        f"boolean-mask misuse{self._where()}: python "
                        f"'{op}' on a mask array raises or short-circuits "
                        f"element-wise intent; use '&'/'|' (or np.logical_*)",
                    )
            return UNKNOWN
        if isinstance(expr, ast.Compare):
            arr = self.col_of(expr.left).array or any(
                self.col_of(cmp).array for cmp in expr.comparators
            )
            return Col(dtype="bool", array=arr)
        if isinstance(expr, ast.Call):
            return self._call_col(expr)
        if isinstance(expr, ast.IfExp):
            self.col_of(expr.test)
            return _merge_col(self.col_of(expr.body), self.col_of(expr.orelse))
        if isinstance(expr, ast.Starred):
            return self.col_of(expr.value)
        return UNKNOWN

    def _attr_col(self, expr: ast.Attribute) -> Col:
        if expr.attr in MIRROR_ATTRS:
            return Col(dtype="int64", array=True, index=True, mirror=True)
        if expr.attr in RECORD_ATTRS:
            return Col(dtype="record", array=True)
        if expr.attr == "T":
            return self.col_of(expr.value)
        if isinstance(expr.value, ast.Name) and expr.value.id == "self":
            attr_col = self.analysis.attr_col(
                self.mod, self.func.class_name, expr.attr
            )
            if attr_col is not None:
                return replace(
                    attr_col, index=attr_col.index or is_index_name(expr.attr)
                )
        return Col(index=is_index_name(expr.attr))

    def _subscript_col(self, expr: ast.Subscript) -> Col:
        base = self.col_of(expr.value)
        if base.dtype == "record":
            if (
                isinstance(expr.slice, ast.Constant)
                and isinstance(expr.slice.value, str)
            ):
                fld = expr.slice.value
                dtype = RECORD_FIELDS.get(fld)
                if dtype is not None:
                    return Col(
                        dtype=dtype, array=True, index=is_index_name(fld)
                    )
            return Col(array=True)
        slice_col = self.col_of(expr.slice)
        if self._keeps_rows(expr.slice, slice_col):
            return base
        # Scalar element access: the result stops being "the column"
        # (for a multi-dim array it may still be a row, but nothing
        # downstream treats a single row as a batch).
        return replace(base, array=False)

    def _keeps_rows(self, node: ast.expr, col: Col) -> bool:
        """Whether a subscript index yields an array, not an element."""
        if isinstance(node, (ast.Slice, ast.List)):
            return True
        if isinstance(node, ast.Tuple):
            return any(
                self._keeps_rows(el, self.col_of(el)) for el in node.elts
            )
        return col.array

    def _binop_col(self, expr: ast.BinOp) -> Col:
        left = self.col_of(expr.left)
        right = self.col_of(expr.right)
        arr = left.array or right.array
        idx = left.index or right.index
        if isinstance(expr.op, ast.Div):
            if idx and arr and not self.analysis.silent:
                self.report(
                    expr,
                    "RPR301",
                    f"index column promoted to float{self._where()}: true "
                    f"division of an address/index array loses exactness "
                    f"above 2**53; use '//' (or np.floor_divide)",
                )
            return Col(dtype="float64", array=arr, index=idx)
        if isinstance(expr.op, ast.Pow):
            return Col(array=arr, index=idx)
        if _is_float(left.dtype) or _is_float(right.dtype):
            dtype: str | None = "float64"
        elif left.dtype == right.dtype:
            dtype = left.dtype
        elif left.dtype is None:
            dtype = right.dtype
        elif right.dtype is None:
            dtype = left.dtype
        else:
            dtype = None  # mixed signedness promotes unpredictably
        rounded = isinstance(expr.op, ast.FloorDiv)
        return Col(dtype=dtype, array=arr, index=idx, rounded=rounded)

    # -- calls ---------------------------------------------------------------

    def _np_name(self, expr: ast.expr) -> str | None:
        """``np.foo`` -> ``"foo"`` when ``np`` is the numpy module."""
        if isinstance(expr, ast.Attribute) and isinstance(
            expr.value, ast.Name
        ):
            binding = self.mod.bindings.get(expr.value.id)
            if (
                binding is not None
                and binding.symbol == ""
                and binding.module == "numpy"
            ):
                return expr.attr
        return None

    def _dtype_of(self, expr: ast.expr | None) -> str | None:
        """Canonical dtype named by a ``dtype=`` argument expression."""
        if expr is None:
            return None
        name: str | None = None
        if isinstance(expr, ast.Attribute):
            name = self._np_name(expr)
            if name == "bool_":
                name = "bool"
        elif isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            name = expr.value
        elif isinstance(expr, ast.Name):
            name = {"int": "int64", "float": "float64", "bool": "bool"}.get(
                expr.id
            )
        return name if name in _CANONICAL_DTYPES else None

    def _kwarg(self, call: ast.Call, name: str) -> ast.expr | None:
        for kw in call.keywords:
            if kw.arg == name:
                return kw.value
        return None

    def _call_col(self, call: ast.Call) -> Col:
        # out= writes into an existing buffer; through a mirror view
        # that is membership mutation the effects closure cannot see.
        out = self._kwarg(call, "out")
        if out is not None:
            self._check_mirror_write(call, self.col_of(out), "out= argument")

        np_func = self._np_name(call.func)
        if np_func is not None:
            return self._np_call_col(call, np_func)
        if isinstance(call.func, ast.Attribute):
            return self._method_col(call, call.func)
        # Plain-name calls: builtins, then resolved project functions.
        if isinstance(call.func, ast.Name):
            name = call.func.id
            if name in ("len", "int", "float", "bool", "abs", "round"):
                for arg in call.args:
                    self.col_of(arg)
                return UNKNOWN
            if name in ("list", "sorted", "tuple"):
                inner = self.col_of(call.args[0]) if call.args else UNKNOWN
                return Col(index=inner.index)
        callee = self.analysis.resolve_call(self.mod, self.func, call)
        for arg in call.args:
            self.col_of(arg)
        for kw in call.keywords:
            self.col_of(kw.value)
        if callee is not None:
            return self._project_call_col(call, callee)
        return UNKNOWN

    def _np_call_col(self, call: ast.Call, name: str) -> Col:
        for arg in call.args:
            self.col_of(arg)
        dtype_kw = self._dtype_of(self._kwarg(call, "dtype"))
        arg0 = call.args[0] if call.args else None
        arg0_col = self.col_of(arg0) if arg0 is not None else UNKNOWN

        if name in _WRITE_FUNCS:
            self._check_mirror_write(call, arg0_col, f"np.{name}()")
            return UNKNOWN
        if name in ("zeros", "ones", "empty"):
            if dtype_kw is None and len(call.args) >= 2:
                dtype_kw = self._dtype_of(call.args[1])
            return Col(dtype=dtype_kw or "float64", array=True)
        if name == "full":
            if dtype_kw is None and len(call.args) >= 3:
                dtype_kw = self._dtype_of(call.args[2])
            if dtype_kw is None and len(call.args) >= 2:
                fill = call.args[1]
                if isinstance(fill, ast.Constant):
                    if isinstance(fill.value, bool):
                        dtype_kw = "bool"
                    elif isinstance(fill.value, int):
                        dtype_kw = "int64"
                    elif isinstance(fill.value, float):
                        dtype_kw = "float64"
                elif isinstance(fill, ast.UnaryOp) and isinstance(
                    fill.operand, ast.Constant
                ) and isinstance(fill.operand.value, int):
                    dtype_kw = "int64"
            return Col(dtype=dtype_kw, array=True)
        if name == "arange":
            if dtype_kw is None:
                floats = any(
                    isinstance(a, ast.Constant) and isinstance(a.value, float)
                    for a in call.args
                )
                dtype_kw = "float64" if floats else "int64"
            return Col(dtype=dtype_kw, array=True)
        if name == "linspace":
            return Col(dtype=dtype_kw or "float64", array=True)
        if name in ("frombuffer", "fromiter"):
            if dtype_kw is None and len(call.args) >= 2:
                dtype_kw = self._dtype_of(call.args[1])
            return Col(dtype=dtype_kw, array=True)
        if name == "asarray":
            # asarray of an ndarray returns the same buffer: keep taint.
            return replace(
                arg0_col, dtype=dtype_kw or arg0_col.dtype, array=True
            )
        if name == "array":
            return Col(
                dtype=dtype_kw or arg0_col.dtype,
                array=True,
                index=arg0_col.index,
            )
        if name in ("zeros_like", "ones_like", "empty_like", "full_like"):
            return Col(
                dtype=dtype_kw or arg0_col.dtype,
                array=True,
                index=arg0_col.index,
            )
        if name in _ROUNDING_FUNCS:
            if name == "floor_divide":
                other = (
                    self.col_of(call.args[1]) if len(call.args) > 1
                    else UNKNOWN
                )
                if _is_int(arg0_col.dtype) and _is_int(other.dtype):
                    dtype: str | None = arg0_col.dtype
                else:
                    dtype = "float64" if (
                        _is_float(arg0_col.dtype) or _is_float(other.dtype)
                    ) else None
            else:
                dtype = arg0_col.dtype or "float64"
            return Col(
                dtype=dtype,
                array=arg0_col.array,
                index=arg0_col.index,
                rounded=True,
            )
        if name in _PROPAGATE_FUNCS:
            if name == "concatenate" and isinstance(
                arg0, (ast.List, ast.Tuple)
            ):
                cols = [self.col_of(el) for el in arg0.elts]
                merged = cols[0] if cols else UNKNOWN
                for col in cols[1:]:
                    merged = _merge_col(merged, col)
                arg0_col = merged
            return Col(
                dtype=arg0_col.dtype,
                array=True,
                index=arg0_col.index,
                rounded=arg0_col.rounded,
            )
        if name in _INTP_FUNCS:
            return Col(dtype="int64", array=True)
        if name == "where" and len(call.args) == 3:
            return _merge_col(
                replace(self.col_of(call.args[1]), array=True, mirror=False),
                replace(self.col_of(call.args[2]), array=True, mirror=False),
            )
        if name in ("any", "all"):
            # Full reductions collapse to a scalar; only an axis= call
            # keeps an array result.
            return Col(
                dtype="bool", array=self._kwarg(call, "axis") is not None
            )
        if name in ("isin", "isclose", "logical_and", "logical_or",
                    "logical_not", "logical_xor"):
            return Col(dtype="bool", array=arg0_col.array)
        if name == "diff":
            return Col(dtype=arg0_col.dtype, array=True, index=arg0_col.index)
        return UNKNOWN

    def _method_col(self, call: ast.Call, func: ast.Attribute) -> Col:
        method = func.attr
        recv = self.col_of(func.value)
        for arg in call.args:
            self.col_of(arg)

        if method == "astype":
            target = self._dtype_of(
                call.args[0] if call.args else self._kwarg(call, "dtype")
            )
            self._check_astype(call, func.value, recv, target)
            return Col(
                dtype=target, array=True, index=recv.index
            )
        if method in _VIEW_METHODS:
            return replace(recv, array=True)
        if method == "copy":
            return replace(recv, mirror=False)
        if method == "tolist":
            return Col(index=recv.index)
        if method == "item":
            if self.hot and recv.array and not self.analysis.silent:
                self.report(
                    call,
                    "RPR305",
                    f"per-element .item() in hot module "
                    f"{self.mod.name}{self._where()}: extract whole columns "
                    f"(or allowlist the function in "
                    f"repro.devtools.analyze.columnar.HOT_ALLOWLIST)",
                )
            return Col(dtype=recv.dtype, index=recv.index)
        if method in ("sum", "max", "min", "prod"):
            return Col(dtype=recv.dtype, index=recv.index)
        if method == "mean":
            return Col(dtype="float64")
        if method in ("any", "all"):
            return Col(
                dtype="bool", array=self._kwarg(call, "axis") is not None
            )
        if method == "round":
            return Col(
                dtype=recv.dtype, array=recv.array, index=recv.index,
                rounded=True,
            )
        if method in ("sort", "fill", "put", "partition"):
            self._check_mirror_write(call, recv, f"in-place .{method}()")
            return UNKNOWN
        if method in _RNG_METHODS:
            dtype = (
                self._dtype_of(self._kwarg(call, "dtype"))
                or _RNG_METHODS[method]
            )
            arr = self._kwarg(call, "size") is not None or (
                method in ("random", "standard_normal", "permutation")
                and bool(call.args)
            ) or (method == "integers" and len(call.args) >= 3) or (
                method == "poisson" and len(call.args) >= 2
            )
            return Col(dtype=dtype, array=arr)
        for kw in call.keywords:
            self.col_of(kw.value)
        callee = self.analysis.resolve_call(self.mod, self.func, call)
        if callee is not None:
            return self._project_call_col(call, callee)
        return UNKNOWN

    def _project_call_col(self, call: ast.Call, callee: str) -> Col:
        func = self.analysis.project.functions.get(callee)
        decl = self.analysis.decls.get(callee)
        if func is None:
            return UNKNOWN
        if decl is not None:
            self._check_call_args(call, func, decl)
            if decl.ret is not None:
                return decl.ret.to_col()
        returns = func.node.returns
        if isinstance(returns, ast.Attribute) and returns.attr == "ndarray":
            return Col(array=True)
        return UNKNOWN

    def _call_params(self, func: FuncInfo) -> list[str]:
        args = func.node.args
        params = [a.arg for a in [*args.posonlyargs, *args.args]]
        if func.class_name and params and params[0] in ("self", "cls"):
            params = params[1:]
        return params

    def _check_call_args(
        self, call: ast.Call, func: FuncInfo, decl: Decl
    ) -> None:
        if self.analysis.silent:
            return
        params = self._call_params(func)
        by_param: dict[str, ast.expr] = {}
        for param, arg in zip(params, call.args):
            by_param[param] = arg
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in params:
                by_param[kw.arg] = kw.value
        for param, arg in sorted(by_param.items()):
            spec = decl.params.get(param)
            if spec is None:
                continue
            col = self.col_of(arg)
            if not spec.matches(col):
                got = col.dtype or ("ndarray" if col.array else "scalar")
                self.report(
                    arg,
                    "RPR301",
                    f"columnar contract violation{self._where()}: argument "
                    f"'{param}' of {func.qualname}() is declared "
                    f"{spec.describe()} but a {got} value flows in",
                )
        self._check_call_shapes(call, func, decl, by_param)

    def _check_call_shapes(
        self,
        call: ast.Call,
        func: FuncInfo,
        decl: Decl,
        by_param: dict[str, ast.expr],
    ) -> None:
        groups: dict[str, list[tuple[str, ast.expr]]] = {}
        for param, symbol in sorted(decl.shapes.items()):
            if param in by_param:
                groups.setdefault(symbol, []).append((param, by_param[param]))
        for symbol, members in sorted(groups.items()):
            slices = [
                (param, ast.dump(arg.slice))
                for param, arg in members
                if isinstance(arg, ast.Subscript)
            ]
            if len(slices) < 2:
                continue
            first_param, first = slices[0]
            for param, other in slices[1:]:
                if other != first:
                    self.report(
                        call,
                        "RPR301",
                        f"columnar shape mismatch{self._where()}: arguments "
                        f"'{first_param}' and '{param}' of {func.qualname}() "
                        f"share shape {symbol} but are sliced differently",
                    )
                    break

    # -- rule bodies ---------------------------------------------------------

    def _check_astype(
        self,
        call: ast.Call,
        receiver: ast.expr,
        recv: Col,
        target: str | None,
    ) -> None:
        if target is None or self.analysis.silent:
            return
        if recv.index and target not in INDEX_DTYPES:
            self.report(
                call,
                "RPR301",
                f"index column cast to {target}{self._where()}: LBA/page "
                f"addresses must stay int64/uint64 end-to-end (wraps or "
                f"loses precision on large-address traces)",
            )
            return
        if _is_float(recv.dtype) and _is_int(target) and not recv.rounded:
            self.report(
                call,
                "RPR302",
                f"truncating float->{target} cast{self._where()}: astype "
                f"truncates toward zero; round explicitly first "
                f"(np.floor_divide / np.rint / np.floor)",
            )
            return
        unit = None
        if isinstance(receiver, ast.Name):
            unit = unit_of_name(receiver.id)
        elif isinstance(receiver, ast.Attribute):
            unit = unit_of_name(receiver.attr)
        if (
            unit is not None
            and not recv.index
            and target in _WIDTH
            and _WIDTH[target] < 8
        ):
            self.report(
                call,
                "RPR302",
                f"unit-carrying cast{self._where()}: a {unit}-valued column "
                f"narrowed to {target} can overflow silently; keep 64-bit "
                f"width or suppress with a reviewed bound",
            )

    def _check_mirror_write(
        self, node: ast.AST, target: Col, how: str
    ) -> None:
        if self.analysis.silent:
            return
        if target.mirror and not self.is_choke:
            self.report(
                node,
                "RPR303",
                f"membership-mirror write{self._where()}: {how} mutates an "
                f"array derived from the CacheSets mirror outside a "
                f"@mutates_membership choke point (RPR201 only sees direct "
                f"attribute writes; views bypass the epoch bump)",
            )

    # -- statements ----------------------------------------------------------

    def run(self, body: list[ast.stmt]) -> None:
        self._block(body)

    def _block(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _merge(self, before: dict[str, Col], *branches: dict[str, Col]) -> None:
        merged: dict[str, Col] = {}
        keys: set[str] = set(before)
        for env in branches:
            keys |= set(env)
        for key in sorted(keys):
            cols = [env.get(key, UNKNOWN) for env in branches] or [
                before.get(key, UNKNOWN)
            ]
            result = cols[0]
            for col in cols[1:]:
                result = _merge_col(result, col)
            merged[key] = result
        self.env = merged

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._handle_assign(stmt.targets, stmt.value, stmt)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._handle_assign([stmt.target], stmt.value, stmt)
        elif isinstance(stmt, ast.AugAssign):
            self._aug_assign(stmt)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            self._check_return(stmt)
        elif isinstance(stmt, ast.If):
            self.col_of(stmt.test)
            before = dict(self.env)
            self._block(stmt.body)
            then_env = self.env
            self.env = dict(before)
            self._block(stmt.orelse)
            self._merge(before, then_env, self.env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._for_stmt(stmt)
        elif isinstance(stmt, ast.While):
            self.col_of(stmt.test)
            before = dict(self.env)
            self._block(stmt.body)
            self._block(stmt.orelse)
            self._merge(before, before, self.env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.col_of(item.context_expr)
            self._block(stmt.body)
        elif isinstance(stmt, ast.Try):
            before = dict(self.env)
            self._block(stmt.body)
            envs = [self.env]
            for handler in stmt.handlers:
                self.env = dict(before)
                self._block(handler.body)
                envs.append(self.env)
            self._merge(before, *envs)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self.col_of(stmt.value)
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # nested scopes are analysed separately
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.col_of(child)

    def _for_stmt(self, stmt: ast.For | ast.AsyncFor) -> None:
        iter_col = self.col_of(stmt.iter)
        if (
            self.hot
            and iter_col.array
            and self.func.id not in HOT_ALLOWLIST
            and not self.analysis.silent
        ):
            self.report(
                stmt,
                "RPR305",
                f"scalar loop over an ndarray in hot module "
                f"{self.mod.name}{self._where()}: vectorize, .tolist() "
                f"first, or allowlist the function in "
                f"repro.devtools.analyze.columnar.HOT_ALLOWLIST",
            )
        before = dict(self.env)
        if isinstance(stmt.target, ast.Name):
            elem = Col(
                dtype=None if iter_col.dtype == "record" else iter_col.dtype,
                index=iter_col.index,
            )
            self.env[stmt.target.id] = elem
        self._block(stmt.body)
        self._block(stmt.orelse)
        self._merge(before, before, self.env)

    def _aug_assign(self, stmt: ast.AugAssign) -> None:
        value_col = self.col_of(stmt.value)
        target = stmt.target
        if isinstance(target, ast.Name):
            base = self.env.get(target.id, UNKNOWN)
            self._check_mirror_write(stmt, base, "augmented assignment")
            self.env[target.id] = _merge_col(base, value_col)
        elif isinstance(target, ast.Subscript):
            if not self._is_direct_mirror_attr(target.value):
                self._check_mirror_write(
                    stmt, self.col_of(target.value), "augmented assignment"
                )
            self.col_of(target.slice)

    def _is_direct_mirror_attr(self, expr: ast.expr) -> bool:
        """``self._lba_table`` itself — RPR201's (effects) territory."""
        return isinstance(expr, ast.Attribute) and expr.attr in MIRROR_ATTRS

    def _handle_assign(
        self, targets: list[ast.expr], value: ast.expr, stmt: ast.stmt
    ) -> None:
        col = self.col_of(value)
        elem_cols: list[Col] | None = None
        if isinstance(value, ast.Call):
            callee = self.analysis.resolve_call(self.mod, self.func, value)
            decl = self.analysis.decls.get(callee) if callee else None
            if (
                decl is not None
                and decl.ret is not None
                and decl.ret.elements is not None
            ):
                elem_cols = [spec.to_col() for spec in decl.ret.elements]
        for target in targets:
            self._assign(target, col, value, stmt, elem_cols)

    def _assign(
        self,
        target: ast.expr,
        col: Col,
        value: ast.expr,
        stmt: ast.stmt,
        elem_cols: list[Col] | None = None,
    ) -> None:
        if isinstance(target, ast.Name):
            self._assign_name(target.id, col, stmt)
        elif isinstance(target, ast.Attribute):
            self._check_index_binding(target.attr, col, stmt)
        elif isinstance(target, ast.Subscript):
            self._assign_subscript(target, stmt)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for i, elt in enumerate(target.elts):
                sub = UNKNOWN
                if elem_cols is not None and i < len(elem_cols):
                    sub = elem_cols[i]
                elif isinstance(value, (ast.Tuple, ast.List)) and i < len(
                    value.elts
                ):
                    sub = self.col_of(value.elts[i])
                self._assign(elt, sub, value, stmt)

    def _assign_name(self, name: str, col: Col, stmt: ast.stmt) -> None:
        self._check_index_binding(name, col, stmt)
        if self.decl is not None and name in self.decl.columns:
            spec = self.decl.columns[name]
            if not spec.matches(col) and not self.analysis.silent:
                got = col.dtype or "ndarray"
                self.report(
                    stmt,
                    "RPR301",
                    f"columnar contract violation{self._where()}: column "
                    f"'{name}' is declared {spec.describe()} but a {got} "
                    f"value is bound to it",
                )
            elif col.dtype is None:
                # Adopt the declaration: it is the reviewed source of
                # truth when inference has nothing better.
                col = replace(spec.to_col(), index=col.index)
        if is_index_name(name):
            col = replace(col, index=True)
        self.env[name] = col

    def _check_index_binding(
        self, name: str, col: Col, stmt: ast.stmt
    ) -> None:
        if self.analysis.silent or not is_index_name(name):
            return
        if not col.array or col.dtype is None:
            return
        if _is_float(col.dtype):
            self.report(
                stmt,
                "RPR301",
                f"float-typed value bound to index name '{name}'"
                f"{self._where()}: addresses must stay 64-bit integers",
            )
        elif col.dtype not in INDEX_DTYPES and col.dtype != "bool":
            self.report(
                stmt,
                "RPR301",
                f"index name '{name}' bound to a {col.dtype} array"
                f"{self._where()}: dtype below 64-bit int wraps on "
                f"large-address traces",
            )

    def _assign_subscript(self, target: ast.Subscript, stmt: ast.stmt) -> None:
        base = target.value
        if not self._is_direct_mirror_attr(base):
            self._check_mirror_write(
                stmt, self.col_of(base), "subscript assignment"
            )
        if isinstance(base, ast.Subscript) and not isinstance(
            base.slice, ast.Slice
        ):
            inner = self.col_of(base.slice)
            if (
                inner.array or isinstance(base.slice, ast.List)
            ) and not self.analysis.silent:
                self.report(
                    stmt,
                    "RPR304",
                    f"chained fancy-index assignment{self._where()}: "
                    f"a[mask][idx] = v writes into a temporary copy and "
                    f"never reaches the source array; combine the indices "
                    f"into one subscript",
                )
        self.col_of(target.slice)

    def _check_return(self, stmt: ast.Return) -> None:
        value = stmt.value
        assert value is not None
        if isinstance(value, ast.Constant) and value.value is None:
            return
        decl = self.decl
        if decl is None or decl.ret is None:
            self.col_of(value)
            return
        spec = decl.ret
        if spec.elements is not None and isinstance(value, ast.Tuple):
            for i, elt in enumerate(value.elts):
                if i >= len(spec.elements):
                    break
                self._check_return_value(elt, spec.elements[i], i)
            return
        self._check_return_value(value, spec, None)

    def _check_return_value(
        self, expr: ast.expr, spec: Spec, position: int | None
    ) -> None:
        col = self.col_of(expr)
        if spec.matches(col) or self.analysis.silent:
            return
        where = f" (tuple element {position})" if position is not None else ""
        got = col.dtype or ("ndarray" if col.array else "scalar")
        self.report(
            expr,
            "RPR301",
            f"columnar contract violation{self._where()}: return value"
            f"{where} is declared {spec.describe()} but a {got} value "
            f"flows out",
        )


# -- project driver -----------------------------------------------------------


class ColumnarAnalysis:
    """Project-wide driver for the columnar dtype/shape dataflow."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.findings: list[Finding] = []
        self.decls: dict[str, Decl] = {}
        self.chokes: set[str] = set()
        self._attr_cols: dict[str, dict[str, Col]] = {}
        #: True while pre-passes type expressions without reporting.
        self.silent = False
        self._collect_decls()

    # -- reporting -----------------------------------------------------------

    def report(
        self, mod: ModuleInfo, node: ast.AST, code: str, message: str
    ) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        self.findings.append(finding_at(mod, line, col, code, message))

    # -- declarations --------------------------------------------------------

    def _collect_decls(self) -> None:
        for func in self.project.functions.values():
            mod = self.project.modules[func.module]
            for dec in func.node.decorator_list:
                target = dec.func if isinstance(dec, ast.Call) else dec
                resolved = self.project.resolve_func_expr(mod, target)
                if resolved == MUTATES_DECORATOR:
                    self.chokes.add(func.id)
                if resolved != COLUMNAR_DECORATOR:
                    continue
                if not isinstance(dec, ast.Call):
                    self.report(
                        mod, dec, "RPR301",
                        f"@columnar on {func.qualname} must be called "
                        f"(use @columnar() for a bare marker)",
                    )
                    continue
                decl = self._parse_decl(mod, func, dec)
                if decl is not None:
                    self.decls[func.id] = decl

    def _parse_decl(
        self, mod: ModuleInfo, func: FuncInfo, dec: ast.Call
    ) -> Decl | None:
        kwargs = {kw.arg: kw.value for kw in dec.keywords}
        if dec.args:
            kwargs.setdefault("dtypes", dec.args[0])
            if len(dec.args) > 1:
                kwargs.setdefault("shapes", dec.args[1])
        dtypes = _literal_str_dict(kwargs.get("dtypes"))
        shapes = _literal_str_dict(kwargs.get("shapes"))
        if dtypes is None or shapes is None:
            self.report(
                mod, dec, "RPR301",
                f"@columnar declaration on {func.qualname} is not a literal "
                f"dict of string specs; the analyzer cannot check it",
            )
            return None
        decl = Decl(func_id=func.id, node=dec, shapes=dict(shapes))
        args = func.node.args
        params = {a.arg for a in [*args.posonlyargs, *args.args,
                                  *args.kwonlyargs]}
        for name, text in dtypes.items():
            spec = parse_spec(text)
            if spec is None:
                self.report(
                    mod, dec, "RPR301",
                    f"@columnar declaration on {func.qualname}: spec "
                    f"{text!r} for {name!r} is not a recognised dtype spec",
                )
                continue
            if name == "return":
                decl.ret = spec
            elif name in params:
                decl.params[name] = spec
            else:
                decl.columns[name] = spec
        for name in shapes:
            if name != "return" and name not in params \
                    and name not in dtypes:
                self.report(
                    mod, dec, "RPR301",
                    f"@columnar declaration on {func.qualname}: shape entry "
                    f"{name!r} names neither a parameter nor a declared "
                    f"column",
                )
        return decl

    # -- construction-tracked attribute dtypes -------------------------------

    def attr_col(
        self, mod: ModuleInfo, class_name: str, attr: str
    ) -> Col | None:
        """dtype of ``self.<attr>`` from constructor assignments."""
        if not class_name:
            return None
        class_id = f"{mod.name}:{class_name}"
        for cid in self.project.class_mro(class_id):
            cols = self._attr_cols.get(cid)
            if cols is None:
                # Publish an empty map first: the prepass types the
                # constructor bodies, which may read other attributes
                # of the same class (re-entrancy must terminate).
                self._attr_cols[cid] = {}
                cols = self._build_attr_cols(cid)
                self._attr_cols[cid] = cols
            if attr in cols:
                return cols[attr]
        return None

    def _build_attr_cols(self, class_id: str) -> dict[str, Col]:
        info = self.project.classes.get(class_id)
        if info is None:
            return {}
        mod = self.project.modules[info.module]
        out: dict[str, Col] = {}
        self.silent = True
        try:
            for name in sorted(info.methods):
                method = info.methods[name]
                func = self.project.functions.get(
                    f"{info.module}:{info.name}.{name}"
                )
                if func is None:
                    continue
                walker = _FunctionCols(
                    self, mod, func, None, is_choke=True, hot=False
                )
                for node in ast.walk(method):
                    if not isinstance(node, ast.Assign):
                        continue
                    for tgt in node.targets:
                        if (
                            isinstance(tgt, ast.Attribute)
                            and isinstance(tgt.value, ast.Name)
                            and tgt.value.id == "self"
                            and isinstance(node.value, ast.Call)
                        ):
                            col = walker.col_of(node.value)
                            if col.dtype is not None and col.array:
                                out.setdefault(tgt.attr, col)
        finally:
            self.silent = False
        return out

    # -- call resolution -----------------------------------------------------

    def resolve_call(
        self, mod: ModuleInfo, func: FuncInfo, call: ast.Call
    ) -> str | None:
        """Resolve a call to a project function id, including methods."""
        expr = call.func
        if isinstance(expr, ast.Attribute):
            base = expr.value
            class_id: str | None = None
            if isinstance(base, ast.Name) and base.id == "self" \
                    and func.class_name:
                class_id = f"{mod.name}:{func.class_name}"
            elif isinstance(base, ast.Name):
                # A parameter annotated with a project class type.
                args = func.node.args
                for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                    if arg.arg == base.id and arg.annotation is not None:
                        cls = self.project.resolve_class_expr(
                            mod, arg.annotation
                        )
                        if cls is not None:
                            class_id = cls.id
                        break
            elif (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and func.class_name
            ):
                owner = self.project.classes.get(
                    f"{mod.name}:{func.class_name}"
                )
                if owner is not None:
                    class_id = owner.attr_classes.get(base.attr)
            if class_id is not None:
                method = self.project.find_method(class_id, expr.attr)
                if method is not None:
                    return method.id
            return self.project.resolve_func_expr(mod, expr)
        return self.project.resolve_func_expr(mod, expr)

    # -- the pass ------------------------------------------------------------

    def _seed_params(self, walker: _FunctionCols, func: FuncInfo,
                     decl: Decl | None) -> None:
        args = func.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            col = Col(index=is_index_name(arg.arg))
            ann = arg.annotation
            if isinstance(ann, ast.Attribute) and ann.attr == "ndarray":
                col = replace(col, array=True)
            if decl is not None and arg.arg in decl.params:
                spec = decl.params[arg.arg]
                declared = spec.to_col()
                if declared.array or declared.dtype is not None:
                    col = replace(
                        declared, index=col.index, array=True
                    )
            walker.env[arg.arg] = col

    def run(self) -> list[Finding]:
        for func in self.project.functions.values():
            mod = self.project.modules[func.module]
            if mod.top_package in EXEMPT_PACKAGES:
                continue
            decl = self.decls.get(func.id)
            walker = _FunctionCols(
                self,
                mod,
                func,
                decl,
                is_choke=func.id in self.chokes,
                hot=mod.name in HOT_MODULES,
            )
            self._seed_params(walker, func, decl)
            walker.run(list(func.node.body))
        return sorted(self.findings, key=Finding.sort_key)


def check_columnar(project: Project) -> list[Finding]:
    """RPR301-RPR305: numpy dtype/shape flow, mirror aliasing, hot loops."""
    return ColumnarAnalysis(project).run()


# -- machine-readable export --------------------------------------------------


def columnar_report(project: Project) -> str:
    """Stable JSON export of the declared columnar contract surface."""
    analysis = ColumnarAnalysis(project)
    declarations = []
    for func_id in sorted(analysis.decls):
        decl = analysis.decls[func_id]
        entry: dict[str, object] = {"function": func_id}
        dtypes: dict[str, str] = {}
        for name, spec in sorted(decl.params.items()):
            dtypes[name] = spec.describe()
        for name, spec in sorted(decl.columns.items()):
            dtypes[name] = spec.describe()
        if decl.ret is not None:
            dtypes["return"] = decl.ret.describe()
        entry["dtypes"] = dtypes
        entry["shapes"] = dict(sorted(decl.shapes.items()))
        declarations.append(entry)
    doc = {
        "version": 1,
        "rules": dict(sorted(_RULES.items())),
        "declarations": declarations,
        "choke_points": sorted(analysis.chokes),
        "hot_modules": sorted(HOT_MODULES),
        "hot_allowlist": sorted(HOT_ALLOWLIST),
        "index_tokens": sorted(INDEX_TOKENS),
        "mirror_attrs": sorted(MIRROR_ATTRS),
    }
    return json.dumps(doc, indent=2, sort_keys=True)
