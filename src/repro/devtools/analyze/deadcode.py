"""Unused imports (RPR109) and dead public symbols (RPR110).

Both analyses read the same cross-module reference index: every
``from X import name`` binding, every ``module.attr`` access through a
module binding, and every ``__all__`` export, chased through re-export
chains to the defining module.

RPR109 (unused import) gates CI.  An import is unused when the bound
name is never loaded in its own module, never re-exported through
``__all__``, and never imported *from* this module by another project
module.  Package ``__init__`` modules without an ``__all__`` are
skipped entirely — there, imports *are* the public surface and intent
cannot be distinguished from accident.

RPR110 (dead public symbol) is **opt-in** (``--dead-code``) and
report-only: a top-level public symbol no project module references
may still be consumed by tests, benchmarks, or downstream users, so
deletion needs a human check of those trees first.
"""

from __future__ import annotations

import ast
import re

from ..lint.findings import Finding
from .project import ModuleInfo, Project, finding_at

_WORD = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _loaded_names(mod: ModuleInfo) -> set[str]:
    """Names loaded anywhere in the module, plus words in string
    constants (quoted annotations, ``__all__``-adjacent registries) so
    string references never count an import as unused."""
    out: set[str] = set()
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            out.add(node.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            out.update(_WORD.findall(node.value))
        elif isinstance(node, ast.Attribute):
            out.add(node.attr)
    return out


def _docstring_values(mod: ModuleInfo) -> set[int]:
    """ids of Constant nodes that are docstrings (module/class/func)."""
    out: set[int] = set()
    scopes: list[ast.AST] = [mod.tree]
    for node in ast.walk(mod.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            scopes.append(node)
    for scope in scopes:
        body = scope.body  # type: ignore[attr-defined]
        if body and isinstance(body[0], ast.Expr) and \
                isinstance(body[0].value, ast.Constant) and \
                isinstance(body[0].value.value, str):
            out.add(id(body[0].value))
    return out


def _string_words(mod: ModuleInfo) -> set[str]:
    """Words in *non-docstring* string constants.

    These are working strings — registry keys, lazy-export tables,
    ``__all__`` entries, qualified-name maps — so a symbol name among
    them counts as a reference.  Docstrings are excluded: prose
    *mentioning* a name must not keep it alive.
    """
    docstrings = _docstring_values(mod)
    out: set[str] = set()
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str) \
                and id(node) not in docstrings:
            out.update(_WORD.findall(node.value))
    return out


def _defining_site(
    project: Project, module: str, name: str
) -> tuple[str, str]:
    """Chase re-export chains to the (module, name) that defines it."""
    seen: set[tuple[str, str]] = set()
    while (module, name) not in seen:
        seen.add((module, name))
        mod = project.modules.get(module)
        if mod is None or name in mod.symbols:
            break
        binding = mod.bindings.get(name)
        if binding is None or binding.symbol == "" \
                or binding.module not in project.modules:
            break
        module, name = binding.module, binding.symbol
    return module, name


class _ReferenceIndex:
    """(module, symbol) pairs referenced from anywhere in the project."""

    def __init__(self, project: Project) -> None:
        self.project = project
        #: symbols some *other* module pulls from a given module, keyed
        #: on the importing side: (source_module, symbol_name).
        self.imported: set[tuple[str, str]] = set()
        #: fully chased definition sites referenced anywhere.
        self.referenced: set[tuple[str, str]] = set()
        #: definition sites exported through any __all__.
        self.exported: set[tuple[str, str]] = set()
        self._build()

    def _mark(self, module: str, name: str) -> None:
        self.imported.add((module, name))
        self.referenced.add(_defining_site(self.project, module, name))

    def _build(self) -> None:
        for mod in self.project.modules.values():
            for name, binding in mod.bindings.items():
                if binding.module not in self.project.modules:
                    continue
                if binding.symbol:
                    self._mark(binding.module, binding.symbol)
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Attribute):
                    continue
                if not isinstance(node.value, ast.Name):
                    continue
                binding = mod.bindings.get(node.value.id)
                if binding is not None and binding.symbol == "" \
                        and binding.module in self.project.modules:
                    self._mark(binding.module, node.attr)
            if mod.exports:
                for name in mod.exports:
                    site = _defining_site(self.project, mod.name, name)
                    self.exported.add(site)
                    self.referenced.add(site)

        # Registration pattern: a decorated top-level def is consumed by
        # its decorator (e.g. kdd-lint's @register rules) even when the
        # name itself is never loaded again.
        self.decorated: set[tuple[str, str]] = set()
        for mod in self.project.modules.values():
            for stmt in mod.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)) and stmt.decorator_list:
                    self.decorated.add((mod.name, stmt.name))

        # Working-string references (PEP 562 lazy-export tables, registry
        # keys, qualified-name maps): one project-wide word set, built
        # from non-docstring strings only.
        self.string_words: set[str] = set()
        for mod in self.project.modules.values():
            self.string_words |= _string_words(mod)


def check_unused_imports(project: Project) -> list[Finding]:
    """RPR109: imported names never used, re-exported, or pulled onward."""
    index = _ReferenceIndex(project)
    findings: list[Finding] = []
    for mod in project.modules.values():
        if mod.is_package and mod.exports is None:
            continue  # bare package __init__: imports are the API surface
        loaded = _loaded_names(mod)
        exports = set(mod.exports or ())
        for name, binding in sorted(mod.bindings.items()):
            if name.startswith("_") or binding.module == "__future__":
                continue
            if name in loaded or name in exports:
                continue
            if (mod.name, name) in index.imported:
                continue  # another module re-imports it from here
            findings.append(finding_at(
                mod, binding.line, 0, "RPR109",
                f"'{name}' (from {binding.module}) is imported but never "
                "used, exported, or re-imported by another module",
            ))
    return sorted(findings, key=Finding.sort_key)


def check_dead_public(project: Project) -> list[Finding]:
    """RPR110: public top-level symbols nothing in the project references.

    Report-only — external consumers (tests, benchmarks) are invisible
    here; verify before deleting.
    """
    index = _ReferenceIndex(project)
    findings: list[Finding] = []
    for mod in project.modules.values():
        if mod.name == "repro.errors":
            continue  # the taxonomy is contract vocabulary, not dead code
        loaded = _loaded_names(mod)
        exports = set(mod.exports or ())
        for name, kind in sorted(mod.symbols.items()):
            if name.startswith("_") or name in exports:
                continue
            site = (mod.name, name)
            if site in index.referenced or site in index.decorated:
                continue
            if name in loaded or name in index.string_words:
                continue
            line = 1
            for stmt in mod.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)) and stmt.name == name:
                    line = stmt.lineno
                    break
                if isinstance(stmt, ast.Assign) and any(
                        isinstance(t, ast.Name) and t.id == name
                        for t in stmt.targets):
                    line = stmt.lineno
                    break
                if isinstance(stmt, ast.AnnAssign) and \
                        isinstance(stmt.target, ast.Name) and \
                        stmt.target.id == name:
                    line = stmt.lineno
                    break
            findings.append(finding_at(
                mod, line, 0, "RPR110",
                f"public {kind} '{name}' is referenced by no project "
                "module; underscore-rename it or delete it (check tests "
                "and benchmarks first)",
            ))
    return sorted(findings, key=Finding.sort_key)
