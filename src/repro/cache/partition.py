"""Per-tenant partitioning of the SSD cache (ECI-Cache-style).

The shared cache is split into per-tenant *directories*: each tenant
gets its own :class:`~repro.cache.sets.CacheSets` sized to its quota, in
front of the shared RAID array.  A :class:`PartitionPlan` fixes the
static quota fractions and optionally enables dynamic reallocation,
where quotas follow an EWMA of per-tenant hit density (hits per
allocated page — ECI-Cache's efficiency signal, arXiv 1805.00976).

Reallocation rebuilds a tenant's directory at the new size strictly via
the public ``alloc``/``remove`` surface, so every membership mutation
still routes through the ``_membership_update`` choke point and the
RPR201-203 effect contracts hold unchanged.  Lines that survive a
resize are re-filled (one counted SSD write each) and lines that no
longer fit are dropped — the honest endurance cost of moving quota
around, visible in the per-tenant ``ssd_writes`` columns.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from ..errors import CacheError, ConfigError
from ..nvram.metabuffer import PageState
from .base import TrafficCounters
from .common import SetAssocPolicy
from .sets import CacheSets

#: Policies whose cached lines are always CLEAN.  Only these may be
#: dynamically resized: a resize rebuilds the directory from its clean
#: lines, which would silently discard dirty/old/delta state (KDD's DEZ
#: pages, LeavO's latest versions) for any other policy.
RESIZABLE_POLICIES = frozenset({"wt", "wa"})

#: A tenant's quota only moves when the target differs from the current
#: allocation by more than 1/16th — migration traffic is real SSD wear,
#: so one-page drifts must not rebuild directories every window.
_RESIZE_DEADBAND = 16


@dataclass(frozen=True)
class PartitionPlan:
    """Quota fractions for splitting one cache across tenants.

    ``fractions[i]`` is tenant *i*'s share of the total cache pages.
    With ``dynamic=True`` the fractions are only the starting point:
    every ``realloc_period`` routed accesses the partitioner re-divides
    the budget proportionally to the EWMA hit-density scores, flooring
    each tenant at ``min_fraction`` of the budget.
    """

    fractions: tuple[float, ...]
    dynamic: bool = False
    #: Routed accesses between reallocation passes (dynamic mode).
    realloc_period: int = 50_000
    #: Approximate per-tenant floor, as a fraction of the whole cache.
    min_fraction: float = 0.02
    #: Smoothing for the hit-density score (1.0 = last window only).
    ewma_alpha: float = 0.5

    def __post_init__(self) -> None:
        if not self.fractions:
            raise ConfigError(
                "PartitionPlan.fractions: a zero-tenant plan is not allowed"
            )
        for i, frac in enumerate(self.fractions):
            if not frac > 0.0:
                raise ConfigError(
                    f"PartitionPlan.fractions[{i}] must be positive, got {frac}"
                )
        total = sum(self.fractions)
        if total > 1.0 + 1e-9:
            raise ConfigError(
                f"PartitionPlan.fractions: quota fractions must sum to <= 1, "
                f"got {total:.6f}"
            )
        if self.realloc_period < 1:
            raise ConfigError(
                f"PartitionPlan.realloc_period must be >= 1, "
                f"got {self.realloc_period}"
            )
        if not 0.0 < self.min_fraction <= 1.0 / len(self.fractions):
            raise ConfigError(
                f"PartitionPlan.min_fraction must be in (0, 1/n_tenants], "
                f"got {self.min_fraction} for {len(self.fractions)} tenants"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigError(
                f"PartitionPlan.ewma_alpha must be in (0, 1], "
                f"got {self.ewma_alpha}"
            )

    @property
    def n_tenants(self) -> int:
        return len(self.fractions)

    @classmethod
    def equal(cls, n_tenants: int, **kwargs) -> "PartitionPlan":
        """An even split across ``n_tenants`` tenants."""
        if n_tenants < 1:
            raise ConfigError(
                f"PartitionPlan.n_tenants must be >= 1, got {n_tenants}"
            )
        return cls(fractions=(1.0 / n_tenants,) * n_tenants, **kwargs)

    def quotas(self, total_pages: int) -> tuple[int, ...]:
        """Static page quotas for a cache of ``total_pages`` pages."""
        if total_pages < self.n_tenants:
            raise ConfigError(
                f"PartitionPlan: total_pages={total_pages} cannot give "
                f"{self.n_tenants} tenants a page each"
            )
        return tuple(
            max(1, int(total_pages * frac)) for frac in self.fractions
        )


@dataclass
class ReallocationStats:
    """What dynamic repartitioning did over a run."""

    passes: int = 0
    resizes: int = 0
    migrated_lines: int = 0
    dropped_lines: int = 0
    #: Final quota per tenant, recorded at :meth:`PartitionedCache.finish`.
    final_quotas: list[int] = field(default_factory=list)

    def row(self) -> dict[str, int]:
        return {
            "realloc_passes": self.passes,
            "resizes": self.resizes,
            "migrated_lines": self.migrated_lines,
            "dropped_lines": self.dropped_lines,
        }


class PartitionedCache:
    """N per-tenant cache directories over one shared array.

    Routes each access to its tenant's policy instance; the policies
    were built by the caller with per-tenant quota-sized configs (the
    harness does this from ``plan.quotas``).  Per-tenant
    :class:`TrafficCounters` — and per-tenant flash models, when
    attached — come for free from the per-policy split.
    """

    def __init__(
        self,
        policies: Sequence[SetAssocPolicy],
        plan: PartitionPlan,
        total_pages: int,
    ) -> None:
        if len(policies) != plan.n_tenants:
            raise ConfigError(
                f"PartitionedCache: plan has {plan.n_tenants} tenants but "
                f"{len(policies)} policies were supplied"
            )
        for i, policy in enumerate(policies):
            if not isinstance(policy, SetAssocPolicy):
                raise ConfigError(
                    f"PartitionedCache: tenant {i} policy {policy.name!r} "
                    f"has no set-associative directory to partition"
                )
        capacity = sum(p.sets.capacity_pages for p in policies)
        if capacity > total_pages:
            raise ConfigError(
                f"PartitionedCache: per-tenant directories hold {capacity} "
                f"pages, exceeding total_pages={total_pages}"
            )
        if plan.dynamic:
            for i, policy in enumerate(policies):
                if policy.name not in RESIZABLE_POLICIES:
                    raise ConfigError(
                        f"PartitionedCache: dynamic reallocation requires a "
                        f"clean-line policy ({sorted(RESIZABLE_POLICIES)}), "
                        f"tenant {i} uses {policy.name!r}"
                    )
        self.policies = tuple(policies)
        self.plan = plan
        self.total_pages = total_pages
        self.realloc = ReallocationStats()
        self._quotas = [p.sets.capacity_pages for p in policies]
        self._scores = [0.0 for _ in policies]
        self._hits_mark = [p.stats.hits for p in policies]
        self._since_realloc = 0

    @property
    def quotas(self) -> tuple[int, ...]:
        """Current per-tenant quota in pages."""
        return tuple(self._quotas)

    def access(self, tenant: int, lba: int, is_read: bool) -> None:
        """Route one page access to its tenant's policy."""
        self.policies[tenant].access(lba, is_read)
        if self.plan.dynamic:
            self._since_realloc += 1
            if self._since_realloc >= self.plan.realloc_period:
                self.reallocate()

    def finish(self) -> None:
        for policy in self.policies:
            policy.finish()
        self.realloc.final_quotas = list(self._quotas)

    def combined_stats(self) -> TrafficCounters:
        """Aggregate counters across all tenants."""
        total = TrafficCounters()
        for policy in self.policies:
            s = policy.stats
            total.read_hits += s.read_hits
            total.read_misses += s.read_misses
            total.write_hits += s.write_hits
            total.write_misses += s.write_misses
            total.fill_writes += s.fill_writes
            total.data_writes += s.data_writes
            total.delta_writes += s.delta_writes
            total.meta_writes += s.meta_writes
            total.ssd_reads += s.ssd_reads
            total.bypasses += s.bypasses
        return total

    # -- dynamic reallocation ------------------------------------------------

    def reallocate(self) -> None:
        """One repartitioning pass: refresh scores, move quota, rebuild."""
        self._since_realloc = 0
        alpha = self.plan.ewma_alpha
        for i, policy in enumerate(self.policies):
            hits = policy.stats.hits
            density = (hits - self._hits_mark[i]) / max(1, self._quotas[i])
            self._hits_mark[i] = hits
            self._scores[i] = (1.0 - alpha) * self._scores[i] + alpha * density
        self.realloc.passes += 1
        for i, target in enumerate(self._target_quotas()):
            current = self._quotas[i]
            if abs(target - current) <= current // _RESIZE_DEADBAND:
                continue
            self._resize_tenant(i, target)

    def _target_quotas(self) -> list[int]:
        total_score = sum(self._scores)
        if total_score <= 0.0:
            return list(self._quotas)
        budget = sum(self.plan.fractions)
        floor = self.plan.min_fraction
        fracs = [
            max(floor, budget * score / total_score) for score in self._scores
        ]
        scale = budget / sum(fracs)
        return [
            max(1, int(self.total_pages * frac * scale)) for frac in fracs
        ]

    def _resize_tenant(self, idx: int, new_pages: int) -> None:
        """Rebuild one tenant's directory at ``new_pages``.

        Surviving lines re-enter the new directory in deterministic
        recency order (per old set, LRU first) through the public
        ``alloc`` path; each migrated line costs one counted fill write
        and each old slot is trimmed on the flash model, so dynamic
        partitioning pays its endurance bill in the same ledger as
        normal cache traffic.
        """
        policy = self.policies[idx]
        old = policy.sets
        lines = [
            line
            for set_idx in range(old.n_sets)
            for line in old.lines_in_set(set_idx)
        ]
        for line in lines:
            if line.state is not PageState.CLEAN:
                raise CacheError(
                    f"tenant {idx}: cannot resize a directory holding a "
                    f"{line.state.name} line (page {line.lba})"
                )
            policy._ssd_trim(policy._data_lpn(line))
        config = policy.config
        policy.sets = CacheSets(
            new_pages, ways=config.ways, group_pages=config.group_pages
        )
        for line in lines:
            placed = policy.sets.alloc(line.lba, PageState.CLEAN, line.aux)
            if placed is None:
                self.realloc.dropped_lines += 1
                continue
            policy._ssd_write(policy._data_lpn(placed), "fill")
            self.realloc.migrated_lines += 1
        # The directory rounds down to whole sets; book the realized
        # capacity so quota accounting and hit-density denominators
        # describe pages that actually exist.
        self._quotas[idx] = policy.sets.capacity_pages
        self.realloc.resizes += 1

    def check_invariants(self) -> None:
        for policy in self.policies:
            policy.check_invariants()
