"""Deduplicating SSD cache (CacheDedup's D-LRU, related work §V-C).

CacheDedup (Li et al., FAST'16) integrates in-line deduplication with
caching: the cache is indexed twice — a *source-address* index mapping
LBAs to content fingerprints, and a *fingerprint store* mapping each
unique content to one cached data page with a reference count.  A write
whose content already sits in the cache costs only a metadata update;
the D-LRU replacement algorithm keeps the two indices mutually
consistent while evicting in LRU order.

The paper positions this family as *orthogonal* to KDD: dedup removes
writes of duplicate content, KDD shrinks writes of similar-but-new
content.  We reproduce D-LRU so the benchmark harness can measure both
levers on the same stream.

Content identity is supplied by a :class:`ContentModel` (traces carry
no payloads): each write draws a content id with a configurable
duplicate ratio, following how the CacheDedup evaluation parameterises
its workloads.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..errors import CacheError, ConfigError
from ..raid.array import RAIDArray
from .base import CacheConfig, CachePolicy, Outcome


class ContentModel:
    """Assigns content ids to writes with a target duplicate ratio.

    With probability ``dup_ratio`` a write repeats an existing popular
    content (Zipf over previously seen contents); otherwise it creates
    fresh content.  Reads return the last content written to the LBA
    (or a unique cold id).
    """

    def __init__(self, dup_ratio: float = 0.3, seed: int = 0) -> None:
        if not 0.0 <= dup_ratio <= 1.0:
            raise ConfigError("dup_ratio must be in [0, 1]")
        self.dup_ratio = dup_ratio
        self._rng = np.random.default_rng(seed)
        self._next_id = 0
        self._seen: list[int] = []
        self._current: dict[int, int] = {}

    def _fresh(self) -> int:
        cid = self._next_id
        self._next_id += 1
        self._seen.append(cid)
        return cid

    def content_for_write(self, lba: int) -> int:
        if self._seen and self._rng.random() < self.dup_ratio:
            # popular contents repeat more (rank-biased choice)
            rank = int(self._rng.integers(0, min(len(self._seen), 64)))
            cid = self._seen[rank]
        else:
            cid = self._fresh()
        self._current[lba] = cid
        return cid

    def content_for_read(self, lba: int) -> int:
        if lba not in self._current:
            self._current[lba] = self._fresh()
        return self._current[lba]


@dataclass
class _FingerprintEntry:
    content: int
    refcount: int


class DedupWriteThrough(CachePolicy):
    """Write-through cache with in-line deduplication (D-LRU).

    Structure follows CacheDedup: ``_source`` is the LBA index (LRU),
    ``_store`` the fingerprint store (LRU) holding one cache page per
    unique content.  Capacity counts unique contents — data pages —
    matching the real system where metadata lives beside the cache.
    """

    name = "dedup-wt"

    def __init__(
        self,
        config: CacheConfig,
        raid: RAIDArray,
        content: ContentModel | None = None,
    ) -> None:
        super().__init__(config, raid)
        self.content = content or ContentModel(seed=config.seed)
        self._source: OrderedDict[int, int] = OrderedDict()  # lba -> content
        self._store: OrderedDict[int, _FingerprintEntry] = OrderedDict()
        self.capacity = config.cache_pages
        self.dedup_write_hits = 0   # writes served by an existing fingerprint
        self._next_lpn = 0
        self._lpn_of_content: dict[int, int] = {}

    # -- D-LRU primitives -------------------------------------------------------

    def _touch(self, lba: int, content: int) -> None:
        self._source[lba] = content
        self._source.move_to_end(lba)
        self._store.move_to_end(content)

    def _deref(self, content: int) -> None:
        entry = self._store.get(content)
        if entry is None:
            raise CacheError(f"dangling fingerprint {content}")
        entry.refcount -= 1
        # zero-ref fingerprints stay cached (they may dedup future writes)
        if entry.refcount < 0:
            raise CacheError(f"negative refcount for content {content}")

    def _insert_content(self, content: int) -> bool:
        """Ensure content is in the store; True if a data write happened."""
        entry = self._store.get(content)
        if entry is not None:
            self._store.move_to_end(content)
            return False
        while len(self._store) >= self.capacity:
            if not self._evict_one():
                return False  # store pinned by references (cannot happen: see below)
        lpn = self.meta_pages + (self._next_lpn % self.config.cache_pages)
        self._next_lpn += 1
        self._lpn_of_content[content] = lpn
        self._store[content] = _FingerprintEntry(content=content, refcount=0)
        self._ssd_write(self._lpn_of_content[content], "data")
        return True

    def _evict_one(self) -> bool:
        """Evict the LRU fingerprint and every LBA mapping onto it."""
        for content in self._store:
            victims = [l for l, c in self._source.items() if c == content]
            for lba in victims:
                del self._source[lba]
            del self._store[content]
            lpn = self._lpn_of_content.pop(content, None)
            if lpn is not None:
                self._ssd_trim(lpn)
            return True
        return False

    # -- the policy interface ------------------------------------------------------

    def read(self, lba: int) -> Outcome:
        content = self.content.content_for_read(lba)
        cached_content = self._source.get(lba)
        if cached_content is not None and cached_content in self._store:
            self.stats.read_hits += 1
            self._touch(lba, cached_content)
            self._ssd_read(1)
            return Outcome(hit=True, is_read=True, fg_ssd_reads=1)
        self.stats.read_misses += 1
        ops = self.raid.read(lba)
        out = Outcome(hit=False, is_read=True, fg_disk_ops=ops)
        # fill: dedup applies to fills too (identical content shares a page)
        wrote = self._insert_content(content)
        if wrote:
            out.bg_ssd_writes += 1
        if lba in self._source:
            self._deref(self._source[lba])
        self._store[content].refcount += 1
        self._touch(lba, content)
        return out

    def write(self, lba: int) -> Outcome:
        content = self.content.content_for_write(lba)
        was_cached = self._source.get(lba) is not None
        if was_cached:
            self.stats.write_hits += 1
        else:
            self.stats.write_misses += 1
        ops = self.raid.write(lba)  # write-through: full parity update
        out = Outcome(hit=was_cached, is_read=False, fg_disk_ops=ops)
        if lba in self._source:
            self._deref(self._source[lba])
        wrote = self._insert_content(content)
        if wrote:
            out.bg_ssd_writes += 1
        else:
            self.dedup_write_hits += 1
        self._store[content].refcount += 1
        self._touch(lba, content)
        return out

    # -- verification ---------------------------------------------------------------

    def check_invariants(self) -> None:
        for lba, content in self._source.items():
            if content not in self._store:
                raise CacheError(f"source entry {lba} -> missing content {content}")
        refs: dict[int, int] = {}
        for content in self._source.values():
            refs[content] = refs.get(content, 0) + 1
        for content, entry in self._store.items():
            if refs.get(content, 0) != entry.refcount:
                raise CacheError(
                    f"refcount mismatch for content {content}: "
                    f"{entry.refcount} != {refs.get(content, 0)}"
                )
        if len(self._store) > self.capacity:
            raise CacheError("fingerprint store over capacity")

    @property
    def dedup_ratio(self) -> float:
        """Share of cache-bound writes eliminated by deduplication."""
        total = self.stats.writes + self.stats.read_misses
        return self.dedup_write_hits / total if total else 0.0
