"""Write-through (WT) caching policy.

The production default the paper compares against: every write goes to
both the SSD cache and the RAID array (with a full parity update), so
an SSD failure loses nothing — but every small write still pays the
RAID-5 read-modify-write penalty, and the cache absorbs the full write
stream (bad for flash endurance).
"""

from __future__ import annotations

from ..nvram.metabuffer import PageState
from ..raid.array import FastAccounting
from .base import Outcome
from .common import SetAssocPolicy


class WriteThrough(SetAssocPolicy):
    """Write-allocate, write-through; all pages are clean."""

    name = "wt"

    def _fast_write_ok(self, fast: FastAccounting) -> bool:
        return True

    def _write_fast(self, lba: int) -> None:
        # Write-set ⊆ scalar write() ∪ {_fast}: enforced by RPR204.
        self._fast.write(1)
        line = self.sets.lookup(lba)
        if line is not None:
            self.stats.write_hits += 1
            self.sets.touch(lba)
            self.stats.data_writes += 1
            return
        self.stats.write_misses += 1
        line = self._alloc_line(lba, PageState.CLEAN)
        if line is not None:
            self._on_line_allocated(line, "data")

    def write(self, lba: int) -> Outcome:
        disk_ops = self.raid.write(lba)
        line = self.sets.lookup(lba)
        if line is not None:
            self.stats.write_hits += 1
            self.sets.touch(lba)
            self.admission.on_cache_hit(lba)
            # overwrite the cached copy in place (same SSD logical page)
            self._ssd_write(self._data_lpn(line), "data")
            return Outcome(
                hit=True, is_read=False, fg_disk_ops=disk_ops, bg_ssd_writes=1
            )
        self.stats.write_misses += 1
        out = Outcome(hit=False, is_read=False, fg_disk_ops=disk_ops)
        line = self._admit_and_alloc(lba, PageState.CLEAN)
        if line is not None:
            self._on_line_allocated(line, "data")
            out.bg_ssd_writes += 1
        return out
