"""Shared machinery for set-associative policies (fill path, eviction)."""

from __future__ import annotations

from ..nvram.metabuffer import PageState
from ..raid.array import RAIDArray
from .admission import make_admission
from .base import CacheConfig, CachePolicy, Outcome
from .sets import CacheLine, CacheSets


class SetAssocPolicy(CachePolicy):
    """A cache policy backed by :class:`CacheSets`.

    Provides the common read-miss fill path: allocate a DAZ line,
    evicting the set's LRU *clean* page if needed; policies with
    unreclaimable states (old/dirty) override :meth:`_make_room` to
    trigger their cleaning machinery.  An optional admission filter
    (Section V-C: LARC / SieveStore are complementary to KDD) gates
    which misses are allowed to allocate at all.
    """

    def __init__(self, config: CacheConfig, raid: RAIDArray) -> None:
        super().__init__(config, raid)
        self.sets = CacheSets(
            config.cache_pages, ways=config.ways, group_pages=config.group_pages
        )
        self.admission = make_admission(config.admission, config.cache_pages)

    # -- allocation --------------------------------------------------------

    def _data_lpn(self, line: CacheLine) -> int:
        """SSD page backing a DAZ line (data partition starts after metadata)."""
        return self.meta_pages + self.sets.lpn_of(line.set_idx, line.slot)

    def _evict_one_clean(self, set_idx: int) -> bool:
        victim = self.sets.evict_candidate(set_idx, (PageState.CLEAN,))
        if victim is None:
            return False
        self._drop_line(victim)
        return True

    def _drop_line(self, line: CacheLine) -> None:
        """Remove a line from the cache (hook for metadata bookkeeping)."""
        self.sets.remove(line.lba)
        self._ssd_trim(self._data_lpn(line))

    def _make_room(self, set_idx: int) -> bool:
        """Try to free a slot in ``set_idx``; False means bypass the cache."""
        return self._evict_one_clean(set_idx)

    def _admit_and_alloc(self, lba: int, state: PageState) -> CacheLine | None:
        """Allocation gated by the admission filter (used on misses)."""
        if not self.admission.should_admit(lba):
            return None
        return self._alloc_line(lba, state)

    def _alloc_line(self, lba: int, state: PageState) -> CacheLine | None:
        """Allocate (evicting if necessary); None when the set is pinned full."""
        line = self.sets.alloc(lba, state)
        if line is not None:
            return line
        if not self._make_room(self.sets.set_of(lba)):
            self.stats.bypasses += 1
            return None
        line = self.sets.alloc(lba, state)
        if line is None:  # pragma: no cover - _make_room guarantees a slot
            self.stats.bypasses += 1
        return line

    def _on_line_allocated(self, line: CacheLine, kind: str) -> None:
        """Hook: account the SSD write that fills the new line."""
        self._ssd_write(self._data_lpn(line), kind)

    # -- the common read path ----------------------------------------------

    def read(self, lba: int) -> Outcome:
        line = self.sets.lookup(lba)
        if line is not None:
            self.stats.read_hits += 1
            self.sets.touch(lba)
            self.admission.on_cache_hit(lba)
            return self._read_hit(line)
        self.stats.read_misses += 1
        disk_ops = self.raid.read(lba)
        out = Outcome(hit=False, is_read=True, fg_disk_ops=disk_ops)
        line = self._admit_and_alloc(lba, PageState.CLEAN)
        if line is not None:
            self._on_line_allocated(line, "fill")
            out.bg_ssd_writes += 1
        return out

    def _read_hit(self, line: CacheLine) -> Outcome:
        """Serve a read hit (policies with delta state override this)."""
        self._ssd_read(1)
        return Outcome(hit=True, is_read=True, fg_ssd_reads=1)

    def check_invariants(self) -> None:
        self.sets.check_invariants()
