"""Shared machinery for set-associative policies (fill path, eviction).

Besides the scalar fill/evict helpers this module hosts the **columnar
fast path** shared by every set-associative policy: the driver behind
``process_trace(vectorized=True)`` classifies whole address batches
against the directory mirror (:meth:`CacheSets.classify`), handles
maximal runs of read hits in bulk, and dispatches the rest through slim
per-access handlers that update counters directly instead of building
:class:`Outcome`/:class:`DiskOp` objects.  The fast path is opt-in per
policy (``_fast_write_ok``) and only engages when the configuration
keeps every access on the fixed-cost path — no flash model, the
stateless default admission filter, and a healthy RAID array — so its
counters and eviction behaviour are identical to the scalar loop.
"""

from __future__ import annotations

from ..contracts import columnar
from ..nvram.metabuffer import PageState
from ..raid.array import FastAccounting, RAIDArray
from ..traces.trace import Trace
from .admission import AlwaysAdmit, make_admission
from .base import CacheConfig, CachePolicy, Outcome
from .sets import CacheLine, CacheSets


class SetAssocPolicy(CachePolicy):
    """A cache policy backed by :class:`CacheSets`.

    Provides the common read-miss fill path: allocate a DAZ line,
    evicting the set's LRU *clean* page if needed; policies with
    unreclaimable states (old/dirty) override :meth:`_make_room` to
    trigger their cleaning machinery.  An optional admission filter
    (Section V-C: LARC / SieveStore are complementary to KDD) gates
    which misses are allowed to allocate at all.
    """

    def __init__(self, config: CacheConfig, raid: RAIDArray) -> None:
        super().__init__(config, raid)
        self.sets = CacheSets(
            config.cache_pages, ways=config.ways, group_pages=config.group_pages
        )
        self.admission = make_admission(config.admission, config.cache_pages)

    # -- allocation --------------------------------------------------------

    def _data_lpn(self, line: CacheLine) -> int:
        """SSD page backing a DAZ line (data partition starts after metadata)."""
        return self.meta_pages + self.sets.lpn_of(line.set_idx, line.slot)

    def _evict_one_clean(self, set_idx: int) -> bool:
        victim = self.sets.evict_candidate(set_idx, (PageState.CLEAN,))
        if victim is None:
            return False
        self._drop_line(victim)
        return True

    def _drop_line(self, line: CacheLine) -> None:
        """Remove a line from the cache (hook for metadata bookkeeping)."""
        self.sets.remove(line.lba)
        self._ssd_trim(self._data_lpn(line))

    def _make_room(self, set_idx: int) -> bool:
        """Try to free a slot in ``set_idx``; False means bypass the cache."""
        return self._evict_one_clean(set_idx)

    def _admit_and_alloc(self, lba: int, state: PageState) -> CacheLine | None:
        """Allocation gated by the admission filter (used on misses)."""
        if not self.admission.should_admit(lba):
            return None
        return self._alloc_line(lba, state)

    def _alloc_line(self, lba: int, state: PageState) -> CacheLine | None:
        """Allocate (evicting if necessary); None when the set is pinned full."""
        line = self.sets.alloc(lba, state)
        if line is not None:
            return line
        if not self._make_room(self.sets.set_of(lba)):
            self.stats.bypasses += 1
            return None
        line = self.sets.alloc(lba, state)
        if line is None:  # pragma: no cover - _make_room guarantees a slot
            self.stats.bypasses += 1
        return line

    def _on_line_allocated(self, line: CacheLine, kind: str) -> None:
        """Hook: account the SSD write that fills the new line."""
        self._ssd_write(self._data_lpn(line), kind)

    # -- the common read path ----------------------------------------------

    def read(self, lba: int) -> Outcome:
        line = self.sets.lookup(lba)
        if line is not None:
            self.stats.read_hits += 1
            self.sets.touch(lba)
            self.admission.on_cache_hit(lba)
            return self._read_hit(line)
        self.stats.read_misses += 1
        disk_ops = self.raid.read(lba)
        out = Outcome(hit=False, is_read=True, fg_disk_ops=disk_ops)
        line = self._admit_and_alloc(lba, PageState.CLEAN)
        if line is not None:
            self._on_line_allocated(line, "fill")
            out.bg_ssd_writes += 1
        return out

    def _read_hit(self, line: CacheLine) -> Outcome:
        """Serve a read hit (policies with delta state override this)."""
        self._ssd_read(1)
        return Outcome(hit=True, is_read=True, fg_ssd_reads=1)

    # -- the columnar fast path ---------------------------------------------
    #
    # Accesses are processed in address batches; classification against
    # the directory mirror finds runs of read hits that can be retired
    # in bulk, everything else goes through per-access handlers that
    # skip Outcome construction and per-page RAID geometry (the healthy
    # array's member-I/O pattern is fixed, see FastAccounting).

    _COLUMNAR_CHUNK = 4096
    #: Shortest read-hit run worth the bulk call.
    _MIN_BULK_RUN = 4
    #: FastAccounting helper, only set while the columnar driver runs.
    _fast: FastAccounting | None = None

    def _fast_write_ok(self, fast: FastAccounting) -> bool:
        """Whether this policy's write path is safe to run columnar.

        Policies opt in once their write logic is covered by the slim
        ``_write_fast`` handler; the base class stays scalar-only so an
        unaudited subclass can never take the fast path by accident.
        """
        return False

    @columnar()
    def _process_columnar(self, trace: Trace) -> bool:
        if self.ssd is not None or type(self.admission) is not AlwaysAdmit:
            return False
        fast = self.raid.fast_account()
        if fast is None or not self._fast_write_ok(fast):
            return False
        pages, is_read = trace.page_accesses()
        if len(pages):
            top = int(pages.max())
            # Out-of-range addresses must raise the scalar path's exact
            # ConfigError at the offending access; oversized addresses
            # would overflow the int64 batch hash.  Both go scalar.
            if top >= self.raid.capacity_pages or top > CacheSets.MAX_VECTOR_LBA:
                return False
        self._fast = fast
        try:
            step = self._COLUMNAR_CHUNK
            for start in range(0, len(pages), step):
                self._columnar_chunk(
                    pages[start : start + step], is_read[start : start + step]
                )
        finally:
            self._fast = None
        return True

    @columnar(
        dtypes={"chunk": "int64|uint64", "reads": "bool"},
        shapes={"chunk": "(n,)", "reads": "(n,)"},
    )
    def _columnar_chunk(self, chunk, reads) -> None:
        sets = self.sets
        mut0 = sets.mutations
        hit_run = (sets.classify(chunk) & reads).tolist()
        lbas = chunk.tolist()
        read_flags = reads.tolist()
        stats = self.stats
        n = len(lbas)
        i = 0
        while i < n:
            # The classification is a snapshot: runs are trusted only
            # while no alloc/remove happened since it was taken (read
            # hits themselves never mutate membership, so a run stays
            # valid for its whole length).
            if hit_run[i] and sets.mutations == mut0:
                j = i + 1
                while j < n and hit_run[j]:
                    j += 1
                if j - i >= self._MIN_BULK_RUN:
                    self._bulk_read_hits(lbas[i:j])
                    i = j
                    continue
            lba = lbas[i]
            if read_flags[i]:
                line = sets.lookup(lba)
                if line is not None:
                    stats.read_hits += 1
                    sets.touch(lba)
                    self._read_hit_fast(line)
                else:
                    stats.read_misses += 1
                    self._fast.read(1)
                    line = self._alloc_line(lba, PageState.CLEAN)
                    if line is not None:
                        self._on_line_allocated(line, "fill")
            else:
                self._write_fast(lba)
            i += 1

    def _read_hit_fast(self, line: CacheLine) -> None:
        """Counter-only mirror of :meth:`_read_hit`."""
        self.stats.ssd_reads += 1

    @columnar(dtypes={"lbas": "list[int]"})
    def _bulk_read_hits(self, lbas: list[int]) -> None:
        """Retire a run of read hits: bulk counters, ordered LRU touches.

        Membership-write-free like every batch reader it drives
        (``classify``/``touch_many``) — proven interprocedurally by
        RPR203, which is what entitles the runs to outlive their
        classification snapshot.
        """
        self.stats.read_hits += len(lbas)
        self.stats.ssd_reads += len(lbas)
        self.sets.touch_many(lbas)

    @columnar(dtypes={"lba": "int"})
    def _write_fast(self, lba: int) -> None:  # pragma: no cover - gated off
        # Contract (RPR204): an override's interprocedural write-set must
        # stay inside the scalar write() write-set plus the FastAccounting
        # delta surface (_fast) — checked statically by kdd-repro analyze,
        # sampled dynamically by tests/test_vectorized_equivalence.py.
        raise NotImplementedError(
            "_fast_write_ok() must stay False without a _write_fast handler"
        )

    def check_invariants(self) -> None:
        self.sets.check_invariants()
