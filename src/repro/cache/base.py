"""Cache policy framework shared by WT / WA / WB / LeavO / KDD / Nossd.

A policy consumes page-granular accesses and decides what the SSD cache
and the RAID array do.  Every access returns an :class:`Outcome`
describing the foreground device work (what the request waits for) and
the background work (cleaning, delta commits, metadata commits) — the
trace-driven simulator only aggregates the counters, while the timing
simulator schedules the ops on device models.

The paper's consistency rule applies everywhere: a write is acknowledged
only after the data reaches the RAID array (RPO = 0 under SSD failure),
which is why foreground write work always contains RAID ops.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..errors import ConfigError
from ..flash.device import SSD
from ..flash.geometry import FlashGeometry
from ..raid.array import DiskOp, RAIDArray
from ..traces.trace import Trace
from ..units import DEFAULT_PAGE_SIZE


@dataclass
class CacheConfig:
    """Configuration shared by all cache policies.

    Defaults follow the paper's setup: 4 KiB pages, one-page NVRAM
    buffers, metadata partition 0.59 % of the SSD, medium content
    locality (mean delta compression ratio 25 %).
    """

    cache_pages: int
    ways: int = 64
    group_pages: int = 64
    page_size: int = DEFAULT_PAGE_SIZE
    nvram_buffer_bytes: int = DEFAULT_PAGE_SIZE
    meta_partition_frac: float = 0.0059
    meta_gc_threshold: float = 0.9
    #: Cleaning starts when (old + delta) pages exceed this cache fraction.
    dirty_threshold: float = 0.50
    #: ... and stops once they drop below this fraction.
    low_watermark: float = 0.25
    mean_compression: float = 0.25
    compression_sigma: float | None = None
    #: Cache admission filter: "always" (paper default), "larc", "count".
    admission: str = "always"
    seed: int = 0
    #: Attach a real FTL-backed flash device (slower; gives WAF and wear).
    flash_model: bool = False

    def __post_init__(self) -> None:
        if self.cache_pages < 1:
            raise ConfigError("cache_pages must be >= 1")
        if not 0.0 < self.meta_partition_frac < 0.2:
            raise ConfigError("meta_partition_frac must be in (0, 0.2)")
        # The watermarks must be strictly ordered: with low_watermark ==
        # dirty_threshold the cleaner oscillates (every access past the
        # threshold triggers a full cleaning pass), and inverted values
        # would silently disable the stop condition entirely.
        if not 0.0 < self.low_watermark < self.dirty_threshold <= 1.0:
            raise ConfigError(
                "need 0 < low_watermark < dirty_threshold <= 1, got "
                f"low_watermark={self.low_watermark} "
                f"dirty_threshold={self.dirty_threshold}"
            )

    @property
    def meta_pages(self) -> int:
        """Metadata partition size in pages.

        Normally ``meta_partition_frac`` of the cache (the paper sweeps
        0.39-0.98 %), with a floor guaranteeing ~1.2 log slots per cache
        page so the circular log can always hold the live mapping — the
        fraction sweep at 4 KiB pages sits above this floor, but tiny
        page sizes (tests) would otherwise make the log unserviceable.
        """
        from ..nvram.metabuffer import MappingEntry

        by_frac = int(round(self.cache_pages * self.meta_partition_frac))
        entries_per_page = max(1, self.page_size // MappingEntry.FLASH_BYTES)
        floor = -(-(12 * self.cache_pages) // (10 * entries_per_page))
        return max(4, floor, by_frac)


@dataclass
class Outcome:
    """Device work caused by one page access."""

    hit: bool
    is_read: bool
    #: SSD pages read while the request waits (data + delta reads).
    fg_ssd_reads: int = 0
    #: SSD pages written while the request waits (none in practice; the
    #: NVRAM buffers make cache-side writes asynchronous).
    fg_ssd_writes: int = 0
    #: RAID member ops the request waits for (e.g. the small write's 2r+2w).
    fg_disk_ops: list[DiskOp] = field(default_factory=list)
    #: Asynchronous SSD page writes (read fills, cache writes, delta/meta commits).
    bg_ssd_writes: int = 0
    #: Asynchronous RAID member ops (cleaning: parity repair I/Os).
    bg_disk_ops: list[DiskOp] = field(default_factory=list)
    #: Microseconds of CPU work (compression etc.) on the critical path.
    fg_compute: float = 0.0


@dataclass
class TrafficCounters:
    """What the trace-driven evaluation aggregates (Figures 5-8, 11)."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    #: SSD page writes by cause:
    fill_writes: int = 0      # read-miss fills
    data_writes: int = 0      # write-path data into DAZ
    delta_writes: int = 0     # packed DEZ page commits
    meta_writes: int = 0      # metadata log page commits
    ssd_reads: int = 0
    #: accesses that could not be cached (no allocatable slot).
    bypasses: int = 0

    @property
    def reads(self) -> int:
        return self.read_hits + self.read_misses

    @property
    def writes(self) -> int:
        return self.write_hits + self.write_misses

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def hits(self) -> int:
        return self.read_hits + self.write_hits

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def read_hit_ratio(self) -> float:
        return self.read_hits / self.reads if self.reads else 0.0

    @property
    def ssd_writes(self) -> int:
        """Total SSD write traffic in pages — the paper's headline metric."""
        return self.fill_writes + self.data_writes + self.delta_writes + self.meta_writes

    @property
    def meta_fraction(self) -> float:
        """Metadata I/O share of total cache writes (Figure 4)."""
        total = self.ssd_writes
        return self.meta_writes / total if total else 0.0


class CachePolicy(ABC):
    """Base class: set-associative SSD cache in front of a RAID array."""

    name = "abstract"

    def __init__(self, config: CacheConfig, raid: RAIDArray) -> None:
        self.config = config
        self.raid = raid
        self.stats = TrafficCounters()
        # meta_pages is a derived property of the config; snapshot it once
        # so the per-access lpn arithmetic does not re-derive it.
        self.meta_pages = config.meta_pages
        self.ssd: SSD | None = None
        if config.flash_model:
            total = config.cache_pages + self.meta_pages
            geometry = FlashGeometry.for_capacity(
                int(total * config.page_size / (1 - 0.07) * 1.02),
                page_size=config.page_size,
            )
            self.ssd = SSD(geometry=geometry)

    # -- SSD accounting helpers ------------------------------------------

    def _ssd_write(self, lpn: int, kind: str) -> None:
        """Count one SSD page write; drives the flash model if attached."""
        if kind == "fill":
            self.stats.fill_writes += 1
        elif kind == "data":
            self.stats.data_writes += 1
        elif kind == "delta":
            self.stats.delta_writes += 1
        elif kind == "meta":
            self.stats.meta_writes += 1
        else:  # pragma: no cover - programming error
            raise ConfigError(f"unknown ssd write kind {kind}")
        if self.ssd is not None:
            self.ssd.write(lpn)

    def _ssd_read(self, npages: int = 1) -> None:
        self.stats.ssd_reads += npages

    def _ssd_trim(self, lpn: int) -> None:
        if self.ssd is not None and self.ssd.is_mapped(lpn):
            self.ssd.trim(lpn)

    # -- the access interface ----------------------------------------------

    def access(self, lba: int, is_read: bool) -> Outcome:
        """One page access; dispatches to the policy's read/write logic."""
        if is_read:
            return self.read(lba)
        return self.write(lba)

    @abstractmethod
    def read(self, lba: int) -> Outcome:
        """Serve a one-page read."""

    @abstractmethod
    def write(self, lba: int) -> Outcome:
        """Serve a one-page write."""

    def finish(self) -> None:
        """Flush background state at end of run (parity repairs etc.)."""

    def process_trace(self, trace: Trace, vectorized: bool = False) -> TrafficCounters:
        """Run a whole trace through the policy and return the counters.

        With ``vectorized=True`` the policy may take a columnar fast path
        (batched classification, counter-only RAID accounting) when its
        configuration allows; the fast path produces identical counters
        and eviction behaviour, and any ineligible configuration falls
        back to the scalar per-access loop automatically.
        """
        if not (vectorized and self._process_columnar(trace)):
            pages, is_read = trace.page_accesses()
            drive_stream(self, pages.tolist(), is_read.tolist())
        self.finish()
        return self.stats

    def _process_columnar(self, trace: Trace) -> bool:
        """Batched trace processing hook; return True if fully handled."""
        return False

    # -- verification ------------------------------------------------------

    def check_invariants(self) -> None:
        """Subclasses extend with their own structural checks."""


def drive_stream(policy: CachePolicy, lbas, is_read) -> None:
    """Feed a page-access stream through a policy's scalar state machine.

    ``process_trace`` is a thin adapter over this driver, and the
    multi-tenant serve driver (``repro.serve``) calls it per tenant
    segment — both shapes share the exact per-access semantics.  The
    inputs are parallel iterables of page LBAs and read flags.
    """
    access = policy.access
    for lba, read in zip(lbas, is_read):
        access(lba, read)
