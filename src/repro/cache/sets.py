"""N-way set-associative cache space management (Section III-B).

The SSD cache is divided into sets of ``ways`` page slots.  DAZ pages
are placed by hashing their *stripe group* (so pages of the same parity
stripe share a set and can be reclaimed together), and looked up per
set with LRU ordering.  DEZ pages are not address-indexed: they are
allocated on demand from whichever set currently holds the fewest DEZ
pages, spreading delta pages evenly across the cache.

Slots map 1:1 to SSD logical pages: ``lpn = data_base + set*ways + slot``,
which is how cache decisions turn into flash traffic.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..contracts import columnar, mutates_membership
from ..errors import CacheError, ConfigError
from ..nvram.metabuffer import PageState

#: Knuth's multiplicative hash constant; scatters stripe groups over sets.
_HASH_MULT = 2654435761


@dataclass(slots=True)
class CacheLine:
    """One occupied DAZ slot."""

    lba: int
    slot: int
    set_idx: int
    state: PageState
    aux: Any = None  # policy-specific payload (delta location, twin page, ...)


class _CacheSet:
    __slots__ = ("free_slots", "entries", "dez_slots", "borrowed")

    def __init__(self, ways: int) -> None:
        self.free_slots: list[int] = list(range(ways - 1, -1, -1))
        self.entries: OrderedDict[int, CacheLine] = OrderedDict()
        self.dez_slots: set[int] = set()
        # slots lent out for secondary copies (LeavO's latest versions)
        self.borrowed: set[int] = set()


class CacheSets:
    """The cache space: DAZ lines + DEZ slots over fixed page slots."""

    def __init__(
        self,
        cache_pages: int,
        ways: int = 64,
        group_pages: int = 64,
    ) -> None:
        if cache_pages < 1 or ways < 1:
            raise ConfigError("cache_pages and ways must be >= 1")
        if group_pages < 1:
            raise ConfigError("group_pages must be >= 1")
        self.ways = min(ways, cache_pages)
        self.n_sets = max(1, cache_pages // self.ways)
        self.group_pages = group_pages
        self._sets = [_CacheSet(self.ways) for _ in range(self.n_sets)]
        self._index: dict[int, CacheLine] = {}  # lba -> line (the primary map core)
        self._state_counts = {s: 0 for s in PageState}
        # Columnar mirror of the DAZ directory: slot -> resident lba (-1 when
        # the slot is free, borrowed, or holds a DEZ page).  Kept in lockstep
        # with _index by _membership_update — the sole writer of the pair —
        # so membership of a whole address batch can be classified with one
        # gather+compare (see classify()).
        self._lba_table = np.full((self.n_sets, self.ways), -1, dtype=np.int64)
        #: Membership-mutation epoch: bumped by _membership_update exactly
        #: when membership changes (alloc/remove), so batched
        #: classifications can detect when a snapshot went stale.
        self.mutations = 0

    @mutates_membership
    def _membership_update(
        self,
        set_idx: int,
        slot: int,
        resident: int,
        line: CacheLine | None = None,
    ) -> None:
        """Sole writer of the membership pair (``_index`` + ``_lba_table``).

        Installs ``resident`` (an lba, or -1 for empty) into the mirror
        slot; when ``line`` is given the primary index changes in the
        same step (inserted for ``resident >= 0``, removed for -1) and
        the membership epoch is bumped.  Mirror-only calls
        (``line=None``) move a resident lba between slots without
        touching the index (see :meth:`adopt_borrowed`): membership is
        unchanged and :meth:`classify` is position-independent, so the
        epoch — which exists to invalidate membership *snapshots* —
        deliberately stays put, keeping bulk hit runs alive across
        stripe cleans.
        """
        if line is not None:
            if resident >= 0:
                self._index[resident] = line
            else:
                del self._index[line.lba]
            self.mutations += 1
        self._lba_table[set_idx, slot] = resident

    # -- placement ----------------------------------------------------------

    @property
    def capacity_pages(self) -> int:
        return self.n_sets * self.ways

    def set_of(self, lba: int) -> int:
        """Cache set for a DAZ page: hash of its stripe group."""
        group = lba // self.group_pages
        return (group * _HASH_MULT) % self.n_sets

    #: Largest lba whose set hash fits int64 arithmetic without overflow
    #: for any group_pages >= 1 (group <= lba); callers go scalar past it.
    MAX_VECTOR_LBA = (2**62) // _HASH_MULT

    @columnar(
        dtypes={"lbas": "int64|uint64", "return": "int64"},
        shapes={"lbas": "(n,)", "return": "(n,)"},
    )
    def set_of_batch(self, lbas: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`set_of` for an int64 address batch."""
        return ((lbas // self.group_pages) * _HASH_MULT) % self.n_sets

    @columnar(
        dtypes={"lbas": "int64|uint64", "return": "bool"},
        shapes={"lbas": "(n,)", "return": "(n,)"},
    )
    def classify(self, lbas: np.ndarray) -> np.ndarray:
        """Batched hit/miss classification against the DAZ directory.

        Returns a boolean array: True where the address was resident at
        call time.  The result is a *snapshot* — any alloc/remove (watch
        :attr:`mutations`) invalidates it for the addresses that moved.
        Addresses must not exceed :attr:`MAX_VECTOR_LBA` (the scalar
        hash uses arbitrary-precision ints; the batch uses int64).
        """
        lbas = lbas.astype(np.int64, copy=False)
        rows = self._lba_table[self.set_of_batch(lbas)]
        return (rows == lbas[:, None]).any(axis=1)

    def resident_in_range(self, start: int, stop: int) -> list[int]:
        """Ascending resident lbas in ``[start, stop)``, batch-classified.

        Columnar replacement for a per-address membership scan (stripe
        cleaners probe every page of a stripe); falls back to the scalar
        scan for the (huge) addresses the int64 set hash cannot take.
        """
        if stop <= start:
            return []
        if stop - 1 > self.MAX_VECTOR_LBA:
            index = self._index
            return [lba for lba in range(start, stop) if lba in index]
        arr = np.arange(start, stop, dtype=np.int64)
        return arr[self.classify(arr)].tolist()

    def lpn_of(self, set_idx: int, slot: int) -> int:
        """SSD logical page backing a slot (relative to the data partition)."""
        return set_idx * self.ways + slot

    # -- DAZ lines ---------------------------------------------------------

    def lookup(self, lba: int) -> CacheLine | None:
        return self._index.get(lba)

    def __contains__(self, lba: int) -> bool:
        return lba in self._index

    def __len__(self) -> int:
        return len(self._index)

    def touch(self, lba: int) -> None:
        """Move a line to the MRU end of its set's LRU list."""
        line = self._index[lba]
        self._sets[line.set_idx].entries.move_to_end(lba)

    @columnar(dtypes={"lbas": "list[int]"})
    def touch_many(self, lbas: Iterable[int]) -> None:
        """:meth:`touch` a batch of resident lines, in order."""
        index = self._index
        sets = self._sets
        for lba in lbas:
            sets[index[lba].set_idx].entries.move_to_end(lba)

    def alloc(self, lba: int, state: PageState, aux: Any = None) -> CacheLine | None:
        """Allocate a DAZ line; returns None if the set has no free slot."""
        if lba in self._index:
            raise CacheError(f"page {lba} already cached")
        set_idx = self.set_of(lba)
        cset = self._sets[set_idx]
        if not cset.free_slots:
            return None
        slot = cset.free_slots.pop()
        line = CacheLine(lba=lba, slot=slot, set_idx=set_idx, state=state, aux=aux)
        cset.entries[lba] = line
        self._state_counts[state] += 1
        self._membership_update(set_idx, slot, lba, line)
        return line

    def set_state(self, lba: int, state: PageState) -> CacheLine:
        line = self._index[lba]
        self._state_counts[line.state] -= 1
        line.state = state
        self._state_counts[state] += 1
        return line

    def remove(self, lba: int) -> CacheLine:
        """Free a DAZ line and its slot."""
        line = self._index.get(lba)
        if line is None:
            raise CacheError(f"page {lba} not cached")
        cset = self._sets[line.set_idx]
        del cset.entries[lba]
        cset.free_slots.append(line.slot)
        self._state_counts[line.state] -= 1
        self._membership_update(line.set_idx, line.slot, -1, line)
        return line

    def evict_candidate(
        self, set_idx: int, states: Iterable[PageState] = (PageState.CLEAN,)
    ) -> CacheLine | None:
        """LRU-most line of the set whose state is evictable."""
        states = tuple(states)
        if len(states) == 1:
            want = states[0]
            for line in self._sets[set_idx].entries.values():  # LRU -> MRU
                if line.state is want:
                    return line
            return None
        wanted = set(states)
        for line in self._sets[set_idx].entries.values():  # LRU -> MRU order
            if line.state in wanted:
                return line
        return None

    def lines_in_set(self, set_idx: int) -> Iterator[CacheLine]:
        return iter(self._sets[set_idx].entries.values())

    def all_lines(self) -> Iterator[CacheLine]:
        return iter(self._index.values())

    def count(self, state: PageState) -> int:
        return self._state_counts[state]

    # -- borrowed slots (secondary copies, e.g. LeavO latest versions) -------

    @property
    def borrowed_slots(self) -> int:
        return sum(len(s.borrowed) for s in self._sets)

    def borrow_slot(self, set_idx: int) -> int | None:
        """Take a free slot for an unindexed secondary copy."""
        cset = self._sets[set_idx]
        if not cset.free_slots:
            return None
        slot = cset.free_slots.pop()
        cset.borrowed.add(slot)
        return slot

    def release_slot(self, set_idx: int, slot: int) -> None:
        """Return a borrowed slot to the free pool."""
        cset = self._sets[set_idx]
        if slot not in cset.borrowed:
            raise CacheError(f"slot {slot} of set {set_idx} is not borrowed")
        cset.borrowed.remove(slot)
        cset.free_slots.append(slot)

    def adopt_borrowed(self, lba: int, borrowed_slot: int) -> int:
        """Make a borrowed slot the line's primary slot, freeing the old one.

        Used by LeavO cleaning: the latest-version copy becomes the
        (clean) cached page and the old-version slot is reclaimed.
        Returns the freed slot.
        """
        line = self._index[lba]
        cset = self._sets[line.set_idx]
        if borrowed_slot not in cset.borrowed:
            raise CacheError(f"slot {borrowed_slot} is not borrowed")
        cset.borrowed.remove(borrowed_slot)
        freed = line.slot
        cset.free_slots.append(freed)
        line.slot = borrowed_slot
        # mirror-only: the lba stays resident, its slot moves
        self._membership_update(line.set_idx, freed, -1)
        self._membership_update(line.set_idx, borrowed_slot, lba)
        return freed

    # -- DEZ slots -----------------------------------------------------------

    @property
    def dez_pages(self) -> int:
        return self._state_counts[PageState.DELTA]

    def dez_count(self, set_idx: int) -> int:
        return len(self._sets[set_idx].dez_slots)

    def has_free_slot(self, set_idx: int) -> bool:
        return bool(self._sets[set_idx].free_slots)

    def alloc_dez_at(self, set_idx: int) -> tuple[int, int] | None:
        """Allocate a DEZ slot in a specific set (random-placement ablation)."""
        cset = self._sets[set_idx]
        if not cset.free_slots:
            return None
        slot = cset.free_slots.pop()
        cset.dez_slots.add(slot)
        self._state_counts[PageState.DELTA] += 1
        return set_idx, slot

    def alloc_dez(self) -> tuple[int, int] | None:
        """Allocate a DEZ slot from the set with the fewest DEZ pages.

        Returns ``(set_idx, slot)`` or None when no set has a free slot
        (the caller evicts a clean page or triggers cleaning).  Ties go
        to the lowest set index.  The set count is small (tens), so a
        linear scan beats maintaining a priority queue under the churn
        of the commit path.
        """
        best = -1
        best_count = 0
        for set_idx, cset in enumerate(self._sets):
            if not cset.free_slots:
                continue
            count = len(cset.dez_slots)
            if best < 0 or count < best_count:
                best, best_count = set_idx, count
        if best < 0:
            return None
        return self.alloc_dez_at(best)

    def free_dez(self, set_idx: int, slot: int) -> None:
        cset = self._sets[set_idx]
        if slot not in cset.dez_slots:
            raise CacheError(f"slot {slot} of set {set_idx} is not a DEZ page")
        cset.dez_slots.remove(slot)
        cset.free_slots.append(slot)
        self._state_counts[PageState.DELTA] -= 1

    def min_dez_set_with_clean(self) -> CacheLine | None:
        """Fallback for DEZ allocation: the LRU clean line of the least-DEZ
        set that has one (linear scan; only hit when the cache is full)."""
        best: CacheLine | None = None
        best_count = -1
        for set_idx in range(self.n_sets):
            # check the (cheap) DEZ count before scanning the set's LRU
            # list: a set that cannot beat the current best is irrelevant
            count = len(self._sets[set_idx].dez_slots)
            if best is not None and count >= best_count:
                continue
            cand = self.evict_candidate(set_idx, (PageState.CLEAN,))
            if cand is None:
                continue
            best, best_count = cand, count
        return best

    # -- invariants ----------------------------------------------------------

    def check_invariants(self) -> None:
        for state, count in self._state_counts.items():
            if count < 0:
                raise CacheError(f"negative count for state {state}")
        total_lines = 0
        for i, cset in enumerate(self._sets):
            used = (
                len(cset.entries)
                + len(cset.dez_slots)
                + len(cset.free_slots)
                + len(cset.borrowed)
            )
            if used != self.ways:
                raise CacheError(f"set {i} slot accounting is off ({used} != {self.ways})")
            slots = (
                [l.slot for l in cset.entries.values()]
                + list(cset.dez_slots)
                + cset.free_slots
                + list(cset.borrowed)
            )
            if len(set(slots)) != self.ways:
                raise CacheError(f"set {i} has duplicate slots")
            total_lines += len(cset.entries)
        if total_lines != len(self._index):
            raise CacheError("index/set entry mismatch")
        if self.dez_pages != sum(len(s.dez_slots) for s in self._sets):
            raise CacheError("DEZ count mismatch")
        if int((self._lba_table >= 0).sum()) != len(self._index):
            raise CacheError("lba table population does not match the index")
        for lba, line in self._index.items():
            if int(self._lba_table[line.set_idx, line.slot]) != lba:
                raise CacheError(f"lba table mismatch for page {lba}")
