"""RAID-protected SSD cache (related work §V-B).

Arteaga & Zhao's cache-optimised RAID and Oh et al.'s SRC make
*write-back* caching safe by building redundancy into the cache layer
itself: dirty pages are mirrored across two SSDs (RAID-1) while clean
pages — recoverable from the array anyway — are striped (RAID-0) for
capacity.  One cache-SSD failure then loses no data, at the cost of a
second device and doubled writes for every dirty page.

KDD's pitch against this family is cost: it reaches the same RPO=0
with a *single* SSD because data always lands on the RAID array and
only recovery metadata (old versions + deltas) stays cache-side.  The
tests and the extension bench quantify the trade: MirroredWriteBack
gets write-back latency, pays 2x dirty-write wear and half the dirty
capacity; KDD pays a foreground member write instead.
"""

from __future__ import annotations

from ..errors import CacheError, ConfigError
from ..nvram.metabuffer import PageState
from ..raid.array import RAIDArray
from .base import CacheConfig, Outcome
from .common import SetAssocPolicy
from .sets import CacheLine


class MirroredWriteBack(SetAssocPolicy):
    """Write-back cache over two SSDs: dirty mirrored, clean striped.

    Capacity accounting: the config's ``cache_pages`` is the *total*
    flash across both devices; a clean page consumes one page of it, a
    dirty page two (its mirror).  ``mirrored_pages`` tracks the second
    copies; they live on the peer device, so a single SSD loss leaves
    every dirty page intact.
    """

    name = "mwb"

    def __init__(self, config: CacheConfig, raid: RAIDArray) -> None:
        if config.cache_pages < 2:
            raise ConfigError("mirrored cache needs at least 2 pages")
        # the set-associative index manages the *primary* copies: half the
        # flash budget is reserved for mirrors in the worst case, but we
        # account mirrors dynamically instead of halving up front.
        super().__init__(config, raid)
        self.mirrored_pages = 0
        self.mirror_writes = 0
        self.failed_ssd: int | None = None

    # -- capacity ------------------------------------------------------------

    @property
    def flash_used(self) -> int:
        return len(self.sets) + self.mirrored_pages

    def _over_budget(self) -> bool:
        return self.flash_used > self.config.cache_pages

    def _mirror(self, line: CacheLine) -> None:
        """Write the second copy of a dirty page to the peer SSD."""
        self.mirrored_pages += 1
        self.mirror_writes += 1
        self.stats.data_writes += 1  # the mirror is real flash traffic

    def _unmirror(self) -> None:
        if self.mirrored_pages <= 0:
            raise CacheError("unmirroring with no mirrors outstanding")
        self.mirrored_pages -= 1

    # -- policy ----------------------------------------------------------------

    def read(self, lba: int) -> Outcome:
        out = super().read(lba)
        # a read-miss fill can push total flash use past the two devices
        # when mirrors already occupy the slack: rebalance immediately
        if self._over_budget():
            self._evict_to_budget(out)
        return out

    def write(self, lba: int) -> Outcome:
        line = self.sets.lookup(lba)
        if line is not None:
            self.stats.write_hits += 1
            self.sets.touch(lba)
            self.admission.on_cache_hit(lba)
            if line.state is not PageState.DIRTY:
                self.sets.set_state(lba, PageState.DIRTY)
                self._mirror(line)
            else:
                self.mirror_writes += 1
                self.stats.data_writes += 1  # rewrite the mirror too
            self._ssd_write(self._data_lpn(line), "data")
            out = Outcome(hit=True, is_read=False, bg_ssd_writes=2)
            self._evict_to_budget(out)
            return out
        self.stats.write_misses += 1
        line = self._admit_and_alloc(lba, PageState.DIRTY)
        if line is None:
            return Outcome(
                hit=False, is_read=False, fg_disk_ops=self.raid.write(lba)
            )
        self._on_line_allocated(line, "data")
        self._mirror(line)
        out = Outcome(hit=False, is_read=False, bg_ssd_writes=2)
        self._evict_to_budget(out)
        return out

    def _make_room(self, set_idx: int) -> bool:
        if self._evict_one_clean(set_idx):
            return True
        victim = self.sets.evict_candidate(set_idx, (PageState.DIRTY,))
        if victim is None:
            return False
        self._flush_and_drop(victim)
        return True

    def _flush_and_drop(self, line: CacheLine) -> list:
        self._ssd_read(1)
        ops = self.raid.write(line.lba)
        if line.state is PageState.DIRTY:
            self._unmirror()
        self._drop_line(line)
        return ops

    def _evict_to_budget(self, out: Outcome) -> None:
        """Mirrors consume budget beyond the index: flush LRU dirty pages
        until total flash use fits the two devices again."""
        guard = self.config.cache_pages + 1
        while self._over_budget() and guard:
            guard -= 1
            victim = None
            for set_idx in range(self.sets.n_sets):
                victim = self.sets.evict_candidate(
                    set_idx, (PageState.CLEAN, PageState.DIRTY)
                )
                if victim is not None:
                    break
            if victim is None:
                raise CacheError("over budget with nothing evictable")
            if victim.state is PageState.DIRTY:
                out.bg_disk_ops.extend(self._flush_and_drop(victim))
            else:
                self._drop_line(victim)

    # -- failure handling ----------------------------------------------------------

    def fail_ssd(self, device: int = 0) -> dict[str, int]:
        """Lose one of the two cache SSDs.

        Dirty pages survive on their mirrors (that is the design's whole
        purpose); clean pages on the failed device are simply gone.  We
        model the loss as: all clean pages dropped (they straddle both
        devices via striping, and the survivors alone cannot serve
        reads), dirty pages retained and immediately flushed to restore
        single-copy safety.
        """
        if device not in (0, 1):
            raise ConfigError("device must be 0 or 1")
        if self.failed_ssd is not None:
            raise CacheError("an SSD is already failed")
        self.failed_ssd = device
        dropped = flushed = 0
        for line in list(self.sets.all_lines()):
            if line.state is PageState.DIRTY:
                self._flush_and_drop(line)
                flushed += 1
            else:
                self._drop_line(line)
                dropped += 1
        return {"clean_dropped": dropped, "dirty_flushed": flushed}

    def finish(self) -> None:
        for line in list(self.sets.all_lines()):
            if line.state is PageState.DIRTY:
                self._flush_and_drop(line)

    @property
    def dirty_pages(self) -> int:
        return self.sets.count(PageState.DIRTY)

    def check_invariants(self) -> None:
        super().check_invariants()
        if self.mirrored_pages != self.dirty_pages:
            raise CacheError(
                f"mirror count {self.mirrored_pages} != dirty pages {self.dirty_pages}"
            )
