"""SSD cache framework: set-associative space, metadata log, baseline policies."""

from .admission import (
    AdmissionPolicy,
    AlwaysAdmit,
    CountAdmission,
    LarcAdmission,
    make_admission,
)
from .base import CacheConfig, CachePolicy, Outcome, TrafficCounters
from .sets import CacheLine, CacheSets
from .mlog import MetadataLog
from .common import SetAssocPolicy
from .nocache import Nossd
from .writethrough import WriteThrough
from .writearound import WriteAround
from .writeback import WriteBack
from .leavo import LeavO
from .dedup import ContentModel, DedupWriteThrough
from .raidcache import MirroredWriteBack
from .wbpolicies import JournaledWriteBack, OrderedWriteBack
from .wec import WecWriteThrough

__all__ = [
    "AdmissionPolicy",
    "AlwaysAdmit",
    "CountAdmission",
    "LarcAdmission",
    "make_admission",
    "CacheConfig",
    "CachePolicy",
    "Outcome",
    "TrafficCounters",
    "CacheLine",
    "CacheSets",
    "MetadataLog",
    "SetAssocPolicy",
    "Nossd",
    "WriteThrough",
    "WriteAround",
    "WriteBack",
    "LeavO",
    "ContentModel",
    "DedupWriteThrough",
    "MirroredWriteBack",
    "JournaledWriteBack",
    "OrderedWriteBack",
    "WecWriteThrough",
]
