"""SSD cache framework: set-associative space, metadata log, baseline policies."""

from .admission import (
    AdmissionPolicy,
    AlwaysAdmit,
    CountAdmission,
    LarcAdmission,
    make_admission,
)
from .base import CacheConfig, CachePolicy, Outcome, TrafficCounters, drive_stream
from .common import SetAssocPolicy
from .partition import PartitionedCache, PartitionPlan, ReallocationStats
from .dedup import ContentModel, DedupWriteThrough
from .leavo import LeavO
from .mlog import MetadataLog
from .nocache import Nossd
from .raidcache import MirroredWriteBack
from .sets import CacheLine, CacheSets
from .wbpolicies import JournaledWriteBack, OrderedWriteBack
from .wec import WecWriteThrough
from .writearound import WriteAround
from .writeback import WriteBack
from .writethrough import WriteThrough

__all__ = [
    "AdmissionPolicy",
    "AlwaysAdmit",
    "CountAdmission",
    "LarcAdmission",
    "make_admission",
    "CacheConfig",
    "CachePolicy",
    "Outcome",
    "TrafficCounters",
    "CacheLine",
    "CacheSets",
    "MetadataLog",
    "PartitionPlan",
    "PartitionedCache",
    "ReallocationStats",
    "drive_stream",
    "SetAssocPolicy",
    "Nossd",
    "WriteThrough",
    "WriteAround",
    "WriteBack",
    "LeavO",
    "ContentModel",
    "DedupWriteThrough",
    "MirroredWriteBack",
    "JournaledWriteBack",
    "OrderedWriteBack",
    "WecWriteThrough",
]
