"""Consistent write-back policies (related work §V-B).

Koller et al. (FAST'13) showed that plain write-back's data-loss
exposure can be traded against performance in measured steps.  We
implement the two classic points between write-through and unbounded
write-back:

* :class:`OrderedWriteBack` — dirty pages are flushed to the array in
  *write order* (so the RAID always holds a consistent prefix of the
  write history) and staleness is bounded: at most ``max_dirty_writes``
  acknowledged-but-unflushed writes exist at any time.  RPO equals the
  bound instead of zero.
* :class:`JournaledWriteBack` — writes are grouped into journal epochs;
  an epoch is flushed atomically (all-or-nothing ordering at epoch
  granularity), modelling barrier-based consistency: cheaper than
  per-write ordering, coarser recovery points.

Both inherit the write-back data path; they differ only in *when* and
*in what order* dirty pages reach the RAID.  KDD's contrast: it gets
RPO = 0 (strictly better than both) while still dodging the small-write
penalty on hits.
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import ConfigError
from ..nvram.metabuffer import PageState
from ..raid.array import RAIDArray
from .base import CacheConfig, Outcome
from .writeback import WriteBack


class OrderedWriteBack(WriteBack):
    """Write-back with in-order flushing and bounded staleness."""

    name = "owb"

    def __init__(
        self,
        config: CacheConfig,
        raid: RAIDArray,
        max_dirty_writes: int = 256,
    ) -> None:
        if max_dirty_writes < 1:
            raise ConfigError("max_dirty_writes must be >= 1")
        super().__init__(config, raid)
        self.max_dirty_writes = max_dirty_writes
        #: FIFO of acknowledged-but-unflushed writes, in write order.
        self._order: OrderedDict[int, None] = OrderedDict()
        self.ordered_flushes = 0

    @property
    def staleness(self) -> int:
        """Acknowledged writes the RAID has not seen yet (the RPO)."""
        return len(self._order)

    def write(self, lba: int) -> Outcome:
        out = super().write(lba)
        line = self.sets.lookup(lba)
        if line is not None and line.state is PageState.DIRTY:
            self._order.pop(lba, None)  # re-dirty moves to the tail
            self._order[lba] = None
        bg = self._enforce_bound()
        out.bg_disk_ops.extend(bg)
        return out

    def _enforce_bound(self) -> list:
        ops = []
        while len(self._order) > self.max_dirty_writes:
            lba, _ = self._order.popitem(last=False)  # oldest write first
            line = self.sets.lookup(lba)
            if line is None or line.state is not PageState.DIRTY:
                continue
            ops += self._flush_line(line)
            self.sets.set_state(lba, PageState.CLEAN)
            self.ordered_flushes += 1
        return ops

    def _flush_line(self, line):
        self._order.pop(line.lba, None)
        return super()._flush_line(line)

    def finish(self) -> None:
        # flush strictly in write order
        while self._order:
            lba, _ = self._order.popitem(last=False)
            line = self.sets.lookup(lba)
            if line is not None and line.state is PageState.DIRTY:
                self.raid.write(lba)
                self._ssd_read(1)
                self.sets.set_state(lba, PageState.CLEAN)
        super().finish()

    def check_invariants(self) -> None:
        super().check_invariants()
        dirty = {
            l.lba for l in self.sets.all_lines() if l.state is PageState.DIRTY
        }
        if not dirty.issubset(set(self._order)):
            raise ConfigError("dirty page missing from the write-order FIFO")


class JournaledWriteBack(WriteBack):
    """Write-back with epoch-granular (barrier) flushing."""

    name = "jwb"

    def __init__(
        self,
        config: CacheConfig,
        raid: RAIDArray,
        epoch_writes: int = 128,
    ) -> None:
        if epoch_writes < 1:
            raise ConfigError("epoch_writes must be >= 1")
        super().__init__(config, raid)
        self.epoch_writes = epoch_writes
        self._epoch: list[int] = []
        self.epochs_committed = 0

    def write(self, lba: int) -> Outcome:
        out = super().write(lba)
        self._epoch.append(lba)
        if len(self._epoch) >= self.epoch_writes:
            out.bg_disk_ops.extend(self.commit_epoch())
        return out

    def commit_epoch(self) -> list:
        """Flush the epoch's dirty pages as one atomic group."""
        ops = []
        flushed = set()
        for lba in self._epoch:
            if lba in flushed:
                continue  # one flush per page per epoch (write coalescing)
            line = self.sets.lookup(lba)
            if line is None or line.state is not PageState.DIRTY:
                continue
            ops += self._flush_line(line)
            self.sets.set_state(lba, PageState.CLEAN)
            flushed.add(lba)
        self._epoch = []
        self.epochs_committed += 1
        return ops

    def finish(self) -> None:
        self.commit_epoch()
        super().finish()
