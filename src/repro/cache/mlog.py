"""Circular persistent metadata log on SSD (Section III-B/C).

Mapping entries are accumulated in the NVRAM metadata buffer and
committed to flash one full page at a time, appended at the *tail* of a
fixed metadata partition managed as a circular log.  Garbage collection
is *oldest first*: the page at the *head* is reclaimed by re-inserting
its still-live entries into the buffer (they eventually re-commit at
the tail).  KDD keeps an in-memory list of live entries per metadata
page, so GC never reads flash.

The head and tail counters live in NVRAM; on power failure the mapping
is rebuilt by replaying the log pages from head to tail and then
overlaying the NVRAM buffers (Section III-E1).

Crash ordering
--------------

Flash page programs are the only operations that can tear; every NVRAM
word write is durable the instant it happens.  The protocol therefore
never lets a batch of entries exist *only* in the torn window:

* :meth:`commit` moves the drained batch to a ``_committing`` stack
  (still NVRAM) and advances ``tail`` *before* the page program; the
  batch is released only after the program completed.  Recovery overlays
  :meth:`nvram_entries` — committing batches plus the buffer — over the
  replayed pages, so a crash before, during (torn prefix), or after the
  program always recovers the full batch.
* :meth:`_reclaim_head` moves the reclaimed page's live entries into a
  ``_relocating`` NVRAM retention list in the same journaled step that
  advances ``head``; each entry is released only once its copy is back
  in the buffer, so mid-GC crashes lose nothing.
* :meth:`reserve` pre-commits until the buffer has room, letting callers
  group an NVRAM mutation with its mapping record into one journaled
  transaction with no flash program in between.

The crash harness (:mod:`repro.faults.crash`) enumerates a crash point
at each of these steps via the duck-typed ``shim`` attribute.
"""

from __future__ import annotations

from ..errors import ConfigError, RecoveryError
from ..flash.device import SSD
from ..nvram.metabuffer import MappingEntry, MetadataBuffer, PageState


class MetadataLog:
    """Persistent circular log of mapping entries, with oldest-first GC."""

    #: Crash-point shim (duck-typed, installed by ``repro.faults.crash``).
    shim = None

    def __init__(
        self,
        ssd: SSD | None,
        base_lpn: int,
        capacity_pages: int,
        entry_bytes: int = MappingEntry.FLASH_BYTES,
        gc_threshold: float = 0.9,
        page_size: int = 4096,
    ) -> None:
        if capacity_pages < 4:
            raise ConfigError("metadata partition needs at least 4 pages")
        if not 0.5 <= gc_threshold <= 1.0:
            raise ConfigError("gc_threshold must be in [0.5, 1.0]")
        self.ssd = ssd
        self.base_lpn = base_lpn
        self.capacity_pages = capacity_pages
        self.gc_threshold = gc_threshold
        if ssd is not None:
            page_size = ssd.page_size
        self.buffer = MetadataBuffer(page_size=page_size, entry_bytes=entry_bytes)

        # NVRAM counters: monotonically increasing page sequence numbers.
        self.head = 0
        self.tail = 0
        # NVRAM retention of batches whose page program is in flight
        # (a stack: commits nest through GC relocation).
        self._committing: list[list[MappingEntry]] = []
        # NVRAM retention of live entries leaving a reclaimed head page
        # but not yet re-buffered.
        self._relocating: list[MappingEntry] = []

        # In-memory bookkeeping (rebuilt on recovery):
        self._page_live: dict[int, dict[int, MappingEntry]] = {}
        self._location: dict[int, int] = {}  # lba_raid -> page seq of current entry
        # Simulated persisted page images (what a replay would read back).
        self._page_image: dict[int, list[MappingEntry]] = {}

        self.meta_page_writes = 0
        self.gc_pages_reclaimed = 0
        self.gc_entries_relocated = 0

    # -- queries ----------------------------------------------------------

    @property
    def used_pages(self) -> int:
        return self.tail - self.head

    @property
    def utilisation(self) -> float:
        return self.used_pages / self.capacity_pages

    def _lpn_of(self, seq: int) -> int:
        return self.base_lpn + seq % self.capacity_pages

    # -- the public recording interface -------------------------------------

    def record(self, entry: MappingEntry) -> None:
        """Buffer a new mapping entry; commits a page when the buffer fills."""
        self._supersede(entry.lba_raid)
        self.reserve()
        if self.shim is not None:
            self.shim.point("meta_put", lba=entry.lba_raid)
        self.buffer.put(entry)

    def reserve(self, slots: int = 1) -> None:
        """Commit pages until the NVRAM buffer has ``slots`` free entries.

        Callers that must pair a mapping record with other NVRAM writes
        in one journaled transaction reserve the room first, so the
        record itself can never trigger a flash program mid-transaction.
        """
        attempts = 2 * self.capacity_pages
        while self.buffer.capacity_entries - len(self.buffer) < slots:
            if attempts == 0:
                raise RecoveryError(
                    "metadata partition too small for the live mapping"
                )
            attempts -= 1
            self.commit()

    def _supersede(self, lba_raid: int) -> None:
        """The current persisted entry for this page (if any) becomes dead."""
        seq = self._location.pop(lba_raid, None)
        if seq is not None:
            live = self._page_live.get(seq)
            if live is not None:
                live.pop(lba_raid, None)

    def commit(self) -> None:
        """Flush the metadata buffer to a new page at the tail of the log."""
        entries = self.buffer.drain()
        if not entries:
            return
        # Atomic NVRAM move: buffer -> committing retention.  The batch
        # stays crash-recoverable (see nvram_entries) until the page
        # program below has completed; on a simulated power failure the
        # stack is deliberately left as-is.
        self._committing.append(entries)
        self._make_room()
        seq = self.tail
        self.tail += 1
        if self.shim is not None:
            # One hook covers the before/torn/after phases of the page
            # program: the harness synthesises the torn prefix image.
            self.shim.flash_point("mlog_commit", self, seq, entries)
        if self.ssd is not None:
            self.ssd.write(self._lpn_of(seq))
        self.meta_page_writes += 1
        self._page_image[seq] = list(entries)
        # Program acknowledged: release the NVRAM retention.
        self._committing.pop()
        self._page_live[seq] = {e.lba_raid: e for e in entries}
        for e in entries:
            # A committed entry supersedes any older copy still sitting in a
            # previous page's live set (possible when the entry was buffered
            # while an even older one was being committed).
            old_seq = self._location.get(e.lba_raid)
            if old_seq is not None and old_seq != seq:
                old_live = self._page_live.get(old_seq)
                if old_live is not None:
                    old_live.pop(e.lba_raid, None)
            self._location[e.lba_raid] = seq
        self._gc_to_threshold()

    # -- garbage collection ----------------------------------------------------

    def _make_room(self) -> None:
        guard = 2 * self.capacity_pages
        while self.used_pages >= self.capacity_pages:
            if guard == 0:
                raise RecoveryError(
                    "metadata partition too small: the log is entirely live"
                )
            guard -= 1
            self._reclaim_head()

    def _gc_to_threshold(self) -> None:
        guard = 2 * self.capacity_pages
        while self.utilisation > self.gc_threshold and self.used_pages > 1:
            if guard == 0:
                raise RecoveryError("metadata log GC cannot reach threshold")
            guard -= 1
            self._reclaim_head()

    def _reclaim_head(self) -> None:
        """Oldest-first GC of one page: re-buffer its live entries.

        Crash-safe ordering: the page leaves the replay window (``head``
        advances) in the same journaled NVRAM step that moves its live
        entries into the ``_relocating`` retention list; each entry is
        released only after its copy is back in the buffer.  At every
        crash point a live entry is durable on its old page, in the
        retention list, or in the buffer — never nowhere.
        """
        seq = self.head
        live = self._page_live.pop(seq, {})
        keep = [e for e in live.values() if e.state is not PageState.FREE]
        if self.shim is not None:
            self.shim.point("gc_head_advance", seq=seq)
        self._relocating.extend(keep)
        self._page_image.pop(seq, None)
        self.head += 1
        self.gc_pages_reclaimed += 1
        for lba_raid, entry in live.items():
            # Invariant: entries in _page_live are current, so they cannot
            # collide with anything newer in the buffer.
            self._location.pop(lba_raid, None)
            if entry.state is PageState.FREE:
                # FREE tombstones guard against older entries for the same
                # page; once the tombstone reaches the log head, every older
                # entry has already been discarded, so it can be dropped
                # instead of relocated (otherwise tombstones accumulate and
                # the log livelocks at 100% liveness).
                continue
            self.gc_entries_relocated += 1
            while self.buffer.full:
                self.commit()
            if self.shim is not None:
                self.shim.point("gc_relocate", lba=lba_raid)
            self.buffer.put(entry)
            self._relocating.remove(entry)

    # -- recovery (Section III-E1) ---------------------------------------------

    def replay(self) -> dict[int, MappingEntry]:
        """Rebuild the mapping by reading the log head..tail in order.

        Returns the latest entry per storage page, exactly what a
        post-power-failure scan would produce (NVRAM buffers are overlaid
        by the caller).  A page whose program never completed reads back
        empty or as a prefix; the NVRAM overlay supersedes it.
        """
        mapping: dict[int, MappingEntry] = {}
        for seq in range(self.head, self.tail):
            for entry in self._page_image.get(seq, ()):
                mapping[entry.lba_raid] = entry
        return mapping

    def nvram_entries(self) -> list[MappingEntry]:
        """Every mapping entry currently held in NVRAM, oldest first.

        Relocating entries (mid-GC), then committing batches (drained
        from the buffer but whose page program has not been
        acknowledged), then the buffer — a dict overlay in that order
        keeps the newest copy.  The three regions never hold *different*
        entries for the same page (see the protocol notes above), so the
        order only matters for documentation.
        """
        out: list[MappingEntry] = list(self._relocating)
        for batch in self._committing:
            out.extend(batch)
        out.extend(self.buffer.snapshot())
        return out

    def check_invariants(self) -> None:
        """Bookkeeping consistency, used by the test suite."""
        if self._committing:
            raise RecoveryError("metadata page program left unacknowledged")
        if self._relocating:
            raise RecoveryError("GC relocation left entries in retention")
        for lba, seq in self._location.items():
            if not self.head <= seq < self.tail:
                raise RecoveryError(f"location of {lba} points outside the log")
            if lba not in self._page_live.get(seq, {}):
                raise RecoveryError(f"entry {lba} missing from its live page")
        for seq, live in self._page_live.items():
            for lba in live:
                if self._location.get(lba) != seq:
                    raise RecoveryError(f"live entry {lba} not indexed at {seq}")
