"""LeavO (Lee et al., SAC'15): keep old *and* new data in the SSD cache.

The closest prior work to KDD: on a write hit the cache retains the old
version of the page (needed to repair parity later) and writes the new
version to a second cache page, dispatching the data to RAID *without*
a parity update.  Two costs KDD eliminates:

* the redundant full-page copies consume cache space (lower hit ratio)
  and cost a full 4 KiB cache write per write hit, where KDD packs a
  compressed delta;
* mapping metadata is persisted to SSD on every update instead of being
  batched through an NVRAM-backed circular log.
"""

from __future__ import annotations

from collections import OrderedDict

from ..nvram.metabuffer import PageState
from ..raid.array import FastAccounting, RAIDArray
from .base import CacheConfig, Outcome
from .common import SetAssocPolicy
from .sets import CacheLine


class LeavO(SetAssocPolicy):
    """Old/new page retention with delayed parity updates."""

    name = "leavo"

    #: Bytes of metadata persisted per mapping update (in-place, unbatched).
    meta_bytes_per_update = 512

    def __init__(self, config: CacheConfig, raid: RAIDArray) -> None:
        super().__init__(config, raid)
        self._stale_order: OrderedDict[int, None] = OrderedDict()
        self._meta_byte_acc = 0

    # -- metadata accounting ---------------------------------------------------

    def _meta_update(self, n: int = 1) -> None:
        self._meta_byte_acc += n * self.meta_bytes_per_update
        pages, self._meta_byte_acc = divmod(self._meta_byte_acc, self.config.page_size)
        for _ in range(pages):
            self.stats.meta_writes += 1
            if self.ssd is not None:
                # metadata partition page 0..meta_pages-1, round robin
                self.ssd.write(self.stats.meta_writes % self.meta_pages)

    # -- hooks ------------------------------------------------------------------

    def _on_line_allocated(self, line: CacheLine, kind: str) -> None:
        super()._on_line_allocated(line, kind)
        self._meta_update()

    def _drop_line(self, line: CacheLine) -> None:
        super()._drop_line(line)
        self._meta_update()

    def _read_hit(self, line: CacheLine) -> Outcome:
        # the latest version lives in the twin slot for OLD lines
        self._ssd_read(1)
        return Outcome(hit=True, is_read=True, fg_ssd_reads=1)

    # -- writes ---------------------------------------------------------------

    def write(self, lba: int) -> Outcome:
        line = self.sets.lookup(lba)
        if line is None:
            return self._write_miss(lba)
        self.stats.write_hits += 1
        self.sets.touch(lba)
        self.admission.on_cache_hit(lba)
        if line.state is PageState.OLD:
            # overwrite the latest-version copy in place
            twin = line.aux
            self._ssd_write(
                self.meta_pages + self.sets.lpn_of(line.set_idx, twin), "data"
            )
            self._meta_update()
            ops = self.raid.write_without_parity_update(lba)
            out = Outcome(hit=True, is_read=False, fg_disk_ops=ops, bg_ssd_writes=1)
            self._maybe_clean(out)
            return out
        # clean hit: try to retain the old version and delay parity
        twin = self._acquire_twin_slot(line)
        if twin is None:
            # no space for a second copy: fall back to plain write-through
            self.stats.bypasses += 1
            self._ssd_write(self._data_lpn(line), "data")
            return Outcome(
                hit=True,
                is_read=False,
                fg_disk_ops=self.raid.write(lba),
                bg_ssd_writes=1,
            )
        self.sets.set_state(lba, PageState.OLD)
        line.aux = twin
        self._ssd_write(self.meta_pages + self.sets.lpn_of(line.set_idx, twin), "data")
        self._meta_update()
        ops = self.raid.write_without_parity_update(lba)
        self._stale_order.setdefault(self.raid.layout.stripe_of(lba), None)
        out = Outcome(hit=True, is_read=False, fg_disk_ops=ops, bg_ssd_writes=1)
        self._maybe_clean(out)
        return out

    def _write_miss(self, lba: int) -> Outcome:
        self.stats.write_misses += 1
        disk_ops = self.raid.write(lba)
        out = Outcome(hit=False, is_read=False, fg_disk_ops=disk_ops)
        line = self._admit_and_alloc(lba, PageState.CLEAN)
        if line is not None:
            self._on_line_allocated(line, "data")
            out.bg_ssd_writes += 1
        return out

    def _fast_write_ok(self, fast: FastAccounting) -> bool:
        # write hits delay the parity update, which needs a parity level
        return fast.delayed_ok

    def _write_fast(self, lba: int) -> None:
        # Write-set ⊆ scalar write() ∪ {_fast}: enforced by RPR204
        # (cleaning's adopt_borrowed slot moves ride along via sets).
        line = self.sets.lookup(lba)
        if line is None:
            self.stats.write_misses += 1
            self._fast.write(1)
            line = self._alloc_line(lba, PageState.CLEAN)
            if line is not None:
                self._on_line_allocated(line, "data")
            return
        self.stats.write_hits += 1
        self.sets.touch(lba)
        if line.state is PageState.OLD:
            self.stats.data_writes += 1
            self._meta_update()
            self._fast.write_delayed(self.raid.layout.stripe_of(lba))
            self._maybe_clean()
            return
        twin = self._acquire_twin_slot(line)
        if twin is None:
            self.stats.bypasses += 1
            self.stats.data_writes += 1
            self._fast.write(1)
            return
        self.sets.set_state(lba, PageState.OLD)
        line.aux = twin
        self.stats.data_writes += 1
        self._meta_update()
        stripe = self.raid.layout.stripe_of(lba)
        self._fast.write_delayed(stripe)
        self._stale_order.setdefault(stripe, None)
        self._maybe_clean()

    def _acquire_twin_slot(self, line: CacheLine) -> int | None:
        slot = self.sets.borrow_slot(line.set_idx)
        if slot is not None:
            return slot
        # evict the LRU clean page that is not the line being written
        for cand in self.sets.lines_in_set(line.set_idx):
            if cand.state is PageState.CLEAN and cand.lba != line.lba:
                self._drop_line(cand)
                return self.sets.borrow_slot(line.set_idx)
        return None

    # -- cleaning ---------------------------------------------------------------

    @property
    def _pinned_pages(self) -> int:
        # each OLD line pins two slots (old + latest)
        return 2 * self.sets.count(PageState.OLD)

    def _maybe_clean(self, out: Outcome | None = None) -> None:
        limit = self.config.dirty_threshold * self.config.cache_pages
        if self._pinned_pages <= limit:
            return
        if out is None:  # columnar fast path: background ops are discarded
            out = Outcome(hit=False, is_read=False)
        target = self.config.low_watermark * self.config.cache_pages
        while self._stale_order and self._pinned_pages > target:
            stripe = next(iter(self._stale_order))
            del self._stale_order[stripe]
            self._clean_stripe(stripe, out)

    def _clean_stripe(self, stripe: int, out: Outcome) -> None:
        stripe_lbas = self.raid.layout.stripe_pages(stripe)
        cached = self.sets.resident_in_range(stripe_lbas.start, stripe_lbas.stop)
        old_lines = [
            l for lba in cached
            if (l := self.sets.lookup(lba)).state is PageState.OLD
        ]
        if not old_lines:
            self.raid.parity_update(stripe, deltas={}, cached_pages=[])
            return
        all_cached = len(cached) == len(stripe_lbas)
        # SSD reads to source the parity computation: old+new per changed
        # page for rmw, every data page for rcw.
        self._ssd_read(len(stripe_lbas) if all_cached else 2 * len(old_lines))
        ops = self.raid.parity_update(
            stripe,
            deltas={l.lba: b"" for l in old_lines},
            cached_pages=cached,
        )
        out.bg_disk_ops.extend(ops)
        for line in old_lines:
            freed = self.sets.adopt_borrowed(line.lba, line.aux)
            self._ssd_trim(self.meta_pages + self.sets.lpn_of(line.set_idx, freed))
            line.aux = None
            self.sets.set_state(line.lba, PageState.CLEAN)
            self._meta_update()

    def _make_room(self, set_idx: int) -> bool:
        if self._evict_one_clean(set_idx):
            return True
        # the set is pinned by old/latest pairs: clean their stripes now
        sink = Outcome(hit=False, is_read=False)
        for line in list(self.sets.lines_in_set(set_idx)):
            if line.state is PageState.OLD:
                stripe = self.raid.layout.stripe_of(line.lba)
                self._stale_order.pop(stripe, None)
                self._clean_stripe(stripe, sink)
        return self._evict_one_clean(set_idx)

    def finish(self) -> None:
        sink = Outcome(hit=False, is_read=False)
        while self._stale_order:
            stripe = next(iter(self._stale_order))
            del self._stale_order[stripe]
            self._clean_stripe(stripe, sink)

    def check_invariants(self) -> None:
        super().check_invariants()
        for line in self.sets.all_lines():
            if line.state is PageState.OLD:
                assert line.aux is not None
            elif line.state is PageState.CLEAN:
                assert line.aux is None
