"""Write-back (WB) caching policy — the unsafe baseline.

The paper deliberately *excludes* write-back from its evaluation
because a cache-device failure loses the dirty pages (Section IV-A1);
we implement it anyway as an optional reference point: it shows the
latency ceiling a policy could reach if it were allowed to violate
RPO = 0.
"""

from __future__ import annotations

from ..nvram.metabuffer import PageState
from ..raid.array import FastAccounting
from .base import Outcome
from .common import SetAssocPolicy
from .sets import CacheLine


class WriteBack(SetAssocPolicy):
    """Write-allocate, write-back with dirty-page flush on eviction."""

    name = "wb"

    def _fast_write_ok(self, fast: FastAccounting) -> bool:
        return True

    def _write_fast(self, lba: int) -> None:
        # Write-set ⊆ scalar write() ∪ {_fast}: enforced by RPR204.
        line = self.sets.lookup(lba)
        if line is not None:
            self.stats.write_hits += 1
            self.sets.touch(lba)
            if line.state is not PageState.DIRTY:
                self.sets.set_state(lba, PageState.DIRTY)
            self.stats.data_writes += 1
            return
        self.stats.write_misses += 1
        line = self._alloc_line(lba, PageState.DIRTY)
        if line is None:
            self._fast.write(1)
            return
        self._on_line_allocated(line, "data")

    def write(self, lba: int) -> Outcome:
        line = self.sets.lookup(lba)
        if line is not None:
            self.stats.write_hits += 1
            self.sets.touch(lba)
            if line.state is not PageState.DIRTY:
                self.sets.set_state(lba, PageState.DIRTY)
            self._ssd_write(self._data_lpn(line), "data")
            return Outcome(hit=True, is_read=False, bg_ssd_writes=1)
        self.stats.write_misses += 1
        line = self._admit_and_alloc(lba, PageState.DIRTY)
        if line is None:
            # nothing evictable: fall back to a direct RAID write
            return Outcome(hit=False, is_read=False, fg_disk_ops=self.raid.write(lba))
        self._on_line_allocated(line, "data")
        return Outcome(hit=False, is_read=False, bg_ssd_writes=1)

    def _make_room(self, set_idx: int) -> bool:
        if self._evict_one_clean(set_idx):
            return True
        victim = self.sets.evict_candidate(set_idx, (PageState.DIRTY,))
        if victim is None:
            return False
        self._flush_line(victim)
        self._drop_line(victim)
        return True

    def _flush_line(self, line: CacheLine) -> list:
        """Write a dirty page back to RAID (full parity update)."""
        self._ssd_read(1)
        if self._fast is not None:  # columnar: same counters, no DiskOps
            self._fast.write(1)
            return []
        return self.raid.write(line.lba)

    def finish(self) -> None:
        """Flush every remaining dirty page (orderly shutdown)."""
        for line in list(self.sets.all_lines()):
            if line.state is PageState.DIRTY:
                self._flush_line(line)
                self.sets.set_state(line.lba, PageState.CLEAN)

    @property
    def dirty_pages(self) -> int:
        return self.sets.count(PageState.DIRTY)
