"""Selective cache admission policies (Section V-C of the paper).

The paper cites SieveStore and LARC as *complementary* to KDD: they
decide which blocks enter the SSD at all, cutting allocation writes and
cache pollution, and "can be deployed in KDD to further reduce the
amount of writes to SSD".  We implement both families behind one
interface so any policy in this package can use them:

* :class:`AlwaysAdmit` — classic behaviour (the paper's default);
* :class:`LarcAdmission` — LARC (Huang et al., MSST'13): a block is
  admitted only on its second miss while it lingers in a ghost LRU
  queue whose size self-tunes (shrinks when the real cache is hitting,
  grows when the ghost queue is hitting);
* :class:`CountAdmission` — SieveStore-style: admit after the k-th
  access, counting accesses in a bounded sieve.
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import ConfigError


class AdmissionPolicy:
    """Decides whether a missed page may be allocated in the cache."""

    name = "abstract"

    def should_admit(self, lba: int) -> bool:
        raise NotImplementedError

    def on_cache_hit(self, lba: int) -> None:
        """Feedback hook: the cache served a hit for ``lba``."""


class AlwaysAdmit(AdmissionPolicy):
    """Admit every miss (the baseline all paper experiments use)."""

    name = "always"

    def should_admit(self, lba: int) -> bool:
        return True


class LarcAdmission(AdmissionPolicy):
    """Lazy Adaptive Replacement Cache admission filter.

    A ghost LRU queue ``Qr`` holds addresses of recently missed pages
    (no data).  A miss found in ``Qr`` is promoted — admitted to the
    real cache; a miss not in ``Qr`` only enters ``Qr``.  The target
    size of ``Qr`` adapts between 10% and 90% of the cache size: cache
    hits hint the cache is already effective (shrink ``Qr``, be
    choosier), ghost hits hint it filters too hard (grow ``Qr``).
    """

    name = "larc"

    def __init__(self, cache_pages: int) -> None:
        if cache_pages < 1:
            raise ConfigError("cache_pages must be >= 1")
        self.cache_pages = cache_pages
        self._ghost: OrderedDict[int, None] = OrderedDict()
        self._target = max(1, cache_pages // 10)
        self.min_target = max(1, cache_pages // 10)
        self.max_target = max(1, (9 * cache_pages) // 10)
        self.ghost_hits = 0
        self.filtered = 0

    @property
    def target_size(self) -> int:
        return self._target

    def _grow(self) -> None:
        step = max(1, self.cache_pages // (len(self._ghost) + 1))
        self._target = min(self.max_target, self._target + step)

    def _shrink(self) -> None:
        step = max(
            1, len(self._ghost) // (self.cache_pages - len(self._ghost) + 1)
        )
        self._target = max(self.min_target, self._target - step)

    def _trim(self) -> None:
        while len(self._ghost) > self._target:
            self._ghost.popitem(last=False)

    def should_admit(self, lba: int) -> bool:
        if lba in self._ghost:
            del self._ghost[lba]
            self.ghost_hits += 1
            self._grow()
            self._trim()
            return True
        self.filtered += 1
        self._ghost[lba] = None
        self._trim()
        return False

    def on_cache_hit(self, lba: int) -> None:
        self._shrink()
        self._trim()


class CountAdmission(AdmissionPolicy):
    """Admit a page once it has been accessed ``threshold`` times.

    A bounded LRU sieve keeps per-address access counts, in the spirit
    of SieveStore's "highly selective" allocation.
    """

    name = "count"

    def __init__(self, threshold: int = 2, sieve_entries: int = 65536) -> None:
        if threshold < 1:
            raise ConfigError("threshold must be >= 1")
        if sieve_entries < 1:
            raise ConfigError("sieve_entries must be >= 1")
        self.threshold = threshold
        self.sieve_entries = sieve_entries
        self._counts: OrderedDict[int, int] = OrderedDict()
        self.filtered = 0

    def should_admit(self, lba: int) -> bool:
        count = self._counts.pop(lba, 0) + 1
        if count >= self.threshold:
            return True
        self._counts[lba] = count
        if len(self._counts) > self.sieve_entries:
            self._counts.popitem(last=False)
        self.filtered += 1
        return False


def make_admission(name: str, cache_pages: int) -> AdmissionPolicy:
    """Factory used by :class:`repro.cache.base.CacheConfig.admission`."""
    name = name.lower()
    if name == "always":
        return AlwaysAdmit()
    if name == "larc":
        return LarcAdmission(cache_pages)
    if name == "count":
        return CountAdmission()
    raise ConfigError(f"unknown admission policy {name!r}")
