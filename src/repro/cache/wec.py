"""WEC — Write-Efficient Caching (Chai et al., related work §V-C).

WEC improves SSD cache durability by identifying *write-efficient*
data — blocks that produce many write hits for each block written into
the cache — and keeping it cached long enough (pull-mode caching) that
its hits keep amortising its admission cost.  The paper lists WEC with
LARC/SieveStore as complementary to KDD.

Reproduced here as a write-through variant: each line carries a write-
hit score; lines whose score reaches ``protect_threshold`` are pinned
against eviction.  Pins decay whenever eviction pressure finds nothing
unpinned (so the protected set adapts instead of ossifying).
"""

from __future__ import annotations

from ..errors import ConfigError
from ..nvram.metabuffer import PageState
from ..raid.array import RAIDArray
from .base import CacheConfig, Outcome
from .sets import CacheLine
from .writethrough import WriteThrough


class WecWriteThrough(WriteThrough):
    """Write-through with write-efficiency-based retention."""

    name = "wec-wt"

    def __init__(
        self,
        config: CacheConfig,
        raid: RAIDArray,
        protect_threshold: int = 3,
        max_protected_fraction: float = 0.5,
    ) -> None:
        if protect_threshold < 1:
            raise ConfigError("protect_threshold must be >= 1")
        if not 0.0 < max_protected_fraction <= 1.0:
            raise ConfigError("max_protected_fraction must be in (0, 1]")
        super().__init__(config, raid)
        self.protect_threshold = protect_threshold
        self.max_protected = int(max_protected_fraction * config.cache_pages)
        self._scores: dict[int, int] = {}
        self._protected: set[int] = set()
        self.protections = 0
        self.decays = 0

    # -- scoring -----------------------------------------------------------

    def _bump(self, lba: int) -> None:
        score = self._scores.get(lba, 0) + 1
        self._scores[lba] = score
        if (
            score >= self.protect_threshold
            and lba not in self._protected
            and len(self._protected) < self.max_protected
        ):
            self._protected.add(lba)
            self.protections += 1

    @property
    def protected_pages(self) -> int:
        return len(self._protected)

    def is_protected(self, lba: int) -> bool:
        return lba in self._protected

    # -- policy hooks --------------------------------------------------------

    def write(self, lba: int) -> Outcome:
        out = super().write(lba)
        if out.hit:
            self._bump(lba)
        return out

    def _drop_line(self, line: CacheLine) -> None:
        self._scores.pop(line.lba, None)
        self._protected.discard(line.lba)
        super()._drop_line(line)

    def _evict_one_clean(self, set_idx: int) -> bool:
        # LRU over *unprotected* clean lines first
        for line in self.sets.lines_in_set(set_idx):
            if line.state is PageState.CLEAN and line.lba not in self._protected:
                self._drop_line(line)
                return True
        # everything protected: decay the set's pins and retry once
        decayed = False
        for line in self.sets.lines_in_set(set_idx):
            if line.lba in self._protected:
                self._protected.discard(line.lba)
                self._scores[line.lba] = 0
                self.decays += 1
                decayed = True
        if decayed:
            return super()._evict_one_clean(set_idx)
        return super()._evict_one_clean(set_idx)
