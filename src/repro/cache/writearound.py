"""Write-around (WA) caching policy.

Writes bypass the SSD entirely (only read misses allocate), which makes
WA the gentlest policy on flash endurance — the paper's lower bound for
cache write traffic — at the cost of never accelerating writes and
invalidating cached pages that get overwritten.
"""

from __future__ import annotations

from ..raid.array import FastAccounting
from .base import Outcome
from .common import SetAssocPolicy


class WriteAround(SetAssocPolicy):
    """Allocate on read miss only; writes go around the cache."""

    name = "wa"

    def _fast_write_ok(self, fast: FastAccounting) -> bool:
        return True

    def _write_fast(self, lba: int) -> None:
        # Write-set ⊆ scalar write() ∪ {_fast}: enforced by RPR204.
        self._fast.write(1)
        line = self.sets.lookup(lba)
        if line is not None:
            self.stats.write_hits += 1
            self._drop_line(line)
        else:
            self.stats.write_misses += 1

    def write(self, lba: int) -> Outcome:
        disk_ops = self.raid.write(lba)
        line = self.sets.lookup(lba)
        if line is not None:
            # the cached copy is now stale: drop it
            self.stats.write_hits += 1
            self._drop_line(line)
        else:
            self.stats.write_misses += 1
        return Outcome(hit=line is not None, is_read=False, fg_disk_ops=disk_ops)
