"""Nossd: the RAID array without any SSD cache (prototype baseline)."""

from __future__ import annotations

from ..raid.array import RAIDArray
from ..traces.trace import Trace
from .base import CacheConfig, CachePolicy, Outcome


class Nossd(CachePolicy):
    """Every access goes straight to the RAID array."""

    name = "nossd"

    def __init__(self, config: CacheConfig, raid: RAIDArray) -> None:
        super().__init__(config, raid)

    def read(self, lba: int) -> Outcome:
        self.stats.read_misses += 1
        return Outcome(hit=False, is_read=True, fg_disk_ops=self.raid.read(lba))

    def write(self, lba: int) -> Outcome:
        self.stats.write_misses += 1
        return Outcome(hit=False, is_read=False, fg_disk_ops=self.raid.write(lba))

    def _process_columnar(self, trace: Trace) -> bool:
        # No cache state at all: on a healthy array the whole trace
        # reduces to four counter additions.
        if self.ssd is not None:
            return False
        fast = self.raid.fast_account()
        if fast is None:
            return False
        pages, is_read = trace.page_accesses()
        if len(pages) and int(pages.max()) >= self.raid.capacity_pages:
            return False
        nreads = int(is_read.sum())
        nwrites = len(pages) - nreads
        self.stats.read_misses += nreads
        self.stats.write_misses += nwrites
        fast.read(nreads)
        fast.write(nwrites)
        return True
