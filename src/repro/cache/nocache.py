"""Nossd: the RAID array without any SSD cache (prototype baseline)."""

from __future__ import annotations

from ..raid.array import RAIDArray
from .base import CacheConfig, CachePolicy, Outcome


class Nossd(CachePolicy):
    """Every access goes straight to the RAID array."""

    name = "nossd"

    def __init__(self, config: CacheConfig, raid: RAIDArray) -> None:
        super().__init__(config, raid)

    def read(self, lba: int) -> Outcome:
        self.stats.read_misses += 1
        return Outcome(hit=False, is_read=True, fg_disk_ops=self.raid.read(lba))

    def write(self, lba: int) -> Outcome:
        self.stats.write_misses += 1
        return Outcome(hit=False, is_read=False, fg_disk_ops=self.raid.write(lba))
