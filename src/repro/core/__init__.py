"""KDD: the paper's cache management scheme, plus failure recovery."""

from .kdd import KDD, DeltaRef, DezPage
from .prototype import ContentWorkload, KDDDataPath
from .recovery import (
    RecoveredPage,
    RecoveredState,
    recover_from_hdd_failure,
    recover_from_power_failure,
    recover_from_ssd_failure,
    verify_recovery,
)

__all__ = [
    "KDD",
    "DeltaRef",
    "DezPage",
    "ContentWorkload",
    "KDDDataPath",
    "RecoveredPage",
    "RecoveredState",
    "recover_from_hdd_failure",
    "recover_from_power_failure",
    "recover_from_ssd_failure",
    "verify_recovery",
]
