"""KDD — Keeping Data and Deltas in SSD (the paper's contribution).

Cache space is dynamically shared between a Data Zone (DAZ: pages in
state *clean* or *old*) and a Delta Zone (DEZ: packed *delta* pages),
mixed within every cache set.  The protocol per access:

* **read miss / write miss** — allocate a *clean* DAZ page; writes go
  to RAID with a conventional parity update.
* **write hit** — the DAZ page flips to *old* and keeps the previous
  data; the compressed XOR delta goes to the NVRAM staging buffer; the
  new data is dispatched to RAID **without** a parity update (one member
  write instead of the small-write 2r+2w).
* **read hit on old** — data page and latest delta are read (SSD-
  internal parallelism makes this cheap) and combined.
* **staging buffer full** — its deltas are compacted into one DEZ page,
  allocated from the set currently holding the fewest DEZ pages.
* **cleaning** — when old+delta pages exceed a threshold, a background
  pass repairs stale parity per stripe (reconstruct-write when the whole
  stripe is cached, read-modify-write otherwise), then reclaims the old
  pages and invalidates their deltas (the paper's "simple" scheme;
  ``reclaim_merge=True`` implements the alternative that rewrites merged
  pages as clean).

Metadata is persisted through the circular log (:mod:`repro.cache.mlog`),
batched via the NVRAM metadata buffer; DEZ allocation is not logged
because delta locations are embedded in the *old* entries (Figure 3).
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from ..cache.base import CacheConfig, Outcome
from ..cache.common import SetAssocPolicy
from ..cache.mlog import MetadataLog
from ..cache.sets import CacheLine
from ..delta.model import GaussianDeltaModel
from ..delta.packer import DELTA_HEADER_BYTES, pack_deltas
from ..errors import CacheError, ConfigError
from ..nvram.metabuffer import MappingEntry, PageState
from ..nvram.staging import StagingBuffer
from ..raid.array import FastAccounting, RAIDArray


@dataclass(slots=True)
class DeltaRef:
    """Location of the latest delta for an *old* DAZ page.

    ``dez_lpn is None`` means the delta still sits in the NVRAM staging
    buffer (the paper's ``lba_dez = -1`` convention).
    """

    size: int
    dez_lpn: int | None = None


@dataclass(slots=True)
class DezPage:
    """One committed Delta Zone page."""

    lpn: int
    set_idx: int
    slot: int
    packed: "object"  # PackedPage

    @property
    def valid_count(self) -> int:
        return self.packed.valid_count


#: Shared no-op context for the un-instrumented (shim-less) fast path.
_NULL_TXN = nullcontext()


class KDD(SetAssocPolicy):
    """The KDD cache management scheme."""

    name = "kdd"

    #: Crash-point shim (duck-typed, installed by ``repro.faults.crash``).
    shim = None

    #: CPU cost of delta (de)compression on the critical path, seconds.
    #: "tens of microseconds" (Section IV-B2) for an lzo-class codec.
    compress_time = 30e-6
    decompress_time = 15e-6

    def __init__(
        self,
        config: CacheConfig,
        raid: RAIDArray,
        reclaim_merge: bool = False,
        fixed_dez_fraction: float | None = None,
        dez_random_placement: bool = False,
    ) -> None:
        super().__init__(config, raid)
        if fixed_dez_fraction is not None and not 0.0 < fixed_dez_fraction < 1.0:
            raise ConfigError("fixed_dez_fraction must be in (0, 1)")
        self.reclaim_merge = reclaim_merge
        self.fixed_dez_fraction = fixed_dez_fraction
        self.dez_random_placement = dez_random_placement
        self._rng = np.random.default_rng(config.seed + 0x5EED)

        self.delta_model = GaussianDeltaModel(
            mean=config.mean_compression,
            sigma=config.compression_sigma,
            page_size=config.page_size,
            seed=config.seed,
        )
        self.staging = StagingBuffer(capacity_bytes=config.nvram_buffer_bytes)
        self.mlog = MetadataLog(
            self.ssd,
            base_lpn=0,
            capacity_pages=self.meta_pages,
            gc_threshold=config.meta_gc_threshold,
            page_size=config.page_size,
        )
        self.dez_pages: dict[int, DezPage] = {}
        self._stale_order: OrderedDict[int, None] = OrderedDict()
        self.cleanings = 0
        self.forced_cleanings = 0
        # Hot-path constants (same expressions the code used inline).
        self._max_delta = config.page_size - DELTA_HEADER_BYTES
        self._dirty_limit = config.dirty_threshold * config.cache_pages
        self._clean_target = config.low_watermark * config.cache_pages

    # -- metadata helpers --------------------------------------------------

    def _txn(self):
        """NVRAM journal transaction: multi-word metadata updates that must
        be atomic with respect to power failure (no crash point fires
        inside; see DESIGN.md section 13).  A no-op without a shim."""
        shim = self.shim
        return shim.txn() if shim is not None else _NULL_TXN

    def _meta_record(self, entry: MappingEntry) -> None:
        before = self.mlog.meta_page_writes
        self.mlog.record(entry)
        self.stats.meta_writes += self.mlog.meta_page_writes - before

    def _record_clean(self, line: CacheLine) -> None:
        self._meta_record(
            MappingEntry(
                lba_raid=line.lba, state=PageState.CLEAN, lba_daz=self._data_lpn(line)
            )
        )

    def _record_old(self, line: CacheLine, ref: DeltaRef, off: int, length: int) -> None:
        self._meta_record(
            MappingEntry(
                lba_raid=line.lba,
                state=PageState.OLD,
                lba_daz=self._data_lpn(line),
                lba_dez=ref.dez_lpn if ref.dez_lpn is not None else -1,
                dez_off=off,
                dez_len=length,
            )
        )

    def _record_free(self, lba: int) -> None:
        self._meta_record(MappingEntry(lba_raid=lba, state=PageState.FREE))

    # -- allocation hooks -------------------------------------------------------

    def _on_line_allocated(self, line: CacheLine, kind: str) -> None:
        super()._on_line_allocated(line, kind)
        self._record_clean(line)

    def _drop_line(self, line: CacheLine) -> None:
        # One journaled transaction: directory removal and the FREE
        # tombstone hit NVRAM together, so a crash never sees a dropped
        # line still mapped (or vice versa).  Buffer room is reserved
        # first — the record can then never trigger a page program
        # mid-transaction.
        self.mlog.reserve()
        with self._txn():
            super()._drop_line(line)
            self._record_free(line.lba)

    def _daz_budget_ok(self) -> bool:
        if self.fixed_dez_fraction is None:
            return True
        daz = self.sets.count(PageState.CLEAN) + self.sets.count(PageState.OLD)
        return daz < (1.0 - self.fixed_dez_fraction) * self.config.cache_pages

    def _alloc_line(self, lba: int, state: PageState) -> CacheLine | None:
        if not self._daz_budget_ok():
            # fixed-partition ablation: DAZ quota exhausted, evict from DAZ
            if not self._make_room(self.sets.set_of(lba)):
                self.stats.bypasses += 1
                return None
        return super()._alloc_line(lba, state)

    def _make_room(self, set_idx: int) -> bool:
        if self._evict_one_clean(set_idx):
            return True
        # the set is pinned by old/delta pages: clean its stripes now
        sink = Outcome(hit=False, is_read=False)
        stripes = {
            self.raid.layout.stripe_of(l.lba)
            for l in self.sets.lines_in_set(set_idx)
            if l.state is PageState.OLD
        }
        if not stripes:
            return False
        self.forced_cleanings += 1
        for stripe in sorted(stripes):
            self._stale_order.pop(stripe, None)
            self._clean_stripe(stripe, sink)
        return self.sets.has_free_slot(set_idx) or self._evict_one_clean(set_idx)

    # -- reads -------------------------------------------------------------------

    def _read_hit(self, line: CacheLine) -> Outcome:
        if line.state is PageState.OLD:
            ref: DeltaRef = line.aux
            npages = 1 + (1 if ref.dez_lpn is not None else 0)
            self._ssd_read(npages)
            return Outcome(
                hit=True,
                is_read=True,
                fg_ssd_reads=npages,
                fg_compute=self.decompress_time,
            )
        self._ssd_read(1)
        return Outcome(hit=True, is_read=True, fg_ssd_reads=1)

    def _read_hit_fast(self, line: CacheLine) -> None:
        if line.state is PageState.OLD and line.aux.dez_lpn is not None:
            self.stats.ssd_reads += 2
        else:
            self.stats.ssd_reads += 1

    def _bulk_read_hits(self, lbas: list[int]) -> None:
        self.stats.read_hits += len(lbas)
        sets = self.sets
        reads = 0
        for lba in lbas:
            sets.touch(lba)
            line = sets.lookup(lba)
            if line.state is PageState.OLD and line.aux.dez_lpn is not None:
                reads += 2
            else:
                reads += 1
        self.stats.ssd_reads += reads

    # -- writes --------------------------------------------------------------------

    def write(self, lba: int) -> Outcome:
        line = self.sets.lookup(lba)
        if line is None:
            return self._write_miss(lba)
        self.stats.write_hits += 1
        self.sets.touch(lba)
        self.admission.on_cache_hit(lba)

        # generate the new delta (size drawn from the content-locality model,
        # capped so any single delta fits one DEZ page with its header)
        size = min(self.delta_model.sample_size(), self._max_delta)
        out = Outcome(
            hit=True,
            is_read=False,
            # While the array is degraded, parity IS the failed member's
            # data — delaying its update would widen the loss window to
            # certainty, so writes fall back to immediate parity updates
            # until the rebuild completes (Section III-E).
            fg_disk_ops=(
                self.raid.write(lba)
                if self.raid.degraded
                else self.raid.write_without_parity_update(lba)
            ),
            fg_compute=self.compress_time,
        )
        # the old version must be read from SSD to compute the XOR delta
        self._ssd_read(1)
        out.fg_ssd_reads += 1

        self._stale_order.setdefault(self.raid.layout.stripe_of(lba), None)
        if line.state is PageState.CLEAN:
            self.sets.set_state(lba, PageState.OLD)
            line.aux = DeltaRef(size=size)
            self._stage_delta(lba, size, out)
        else:
            ref: DeltaRef = line.aux
            # Stage the new delta *before* invalidating its predecessor:
            # the coalescing put is the atomic supersede for a staged
            # delta, and a DEZ-resident one stays reachable (ref and the
            # persisted old-entry untouched) until the replacement is in
            # NVRAM — a crash in between loses only the in-flight write.
            if self._stage_delta(lba, size, out):
                if ref.dez_lpn is not None:
                    self._invalidate_dez_delta(lba, ref)
                ref.size = size
                ref.dez_lpn = None
        self._maybe_clean(out)
        return out

    def _write_miss(self, lba: int) -> Outcome:
        self.stats.write_misses += 1
        out = Outcome(hit=False, is_read=False, fg_disk_ops=self.raid.write(lba))
        line = self._admit_and_alloc(lba, PageState.CLEAN)
        if line is not None:
            self._on_line_allocated(line, "data")
            out.bg_ssd_writes += 1
        self._maybe_clean(out)
        return out

    def _fast_write_ok(self, fast: FastAccounting) -> bool:
        # write hits delay the parity update, which needs a parity level
        return fast.delayed_ok

    def _write_fast(self, lba: int) -> None:
        # Write-set ⊆ scalar write() ∪ {_fast}: enforced by RPR204 across
        # the full staging/mlog/cleaning closure.
        line = self.sets.lookup(lba)
        if line is None:
            self.stats.write_misses += 1
            self._fast.write(1)
            line = self._alloc_line(lba, PageState.CLEAN)
            if line is not None:
                self._on_line_allocated(line, "data")
            self._maybe_clean()
            return
        self.stats.write_hits += 1
        self.sets.touch(lba)
        size = min(self.delta_model.sample_size(), self._max_delta)
        stripe = lba // self.raid.layout.stripe_data_pages
        self._fast.write_delayed(stripe)
        self.stats.ssd_reads += 1
        self._stale_order.setdefault(stripe, None)
        if line.state is PageState.CLEAN:
            self.sets.set_state(lba, PageState.OLD)
            line.aux = DeltaRef(size=size)
            self._stage_delta(lba, size)
        else:
            ref: DeltaRef = line.aux
            # Same crash-safe supersede order as the scalar write().
            if self._stage_delta(lba, size):
                if ref.dez_lpn is not None:
                    self._invalidate_dez_delta(lba, ref)
                ref.size = size
                ref.dez_lpn = None
        self._maybe_clean()

    # -- staging and the Delta Zone ----------------------------------------------

    def _stage_delta(self, lba: int, size: int, out: Outcome | None = None) -> bool:
        """Put one delta into NVRAM, committing a DEZ page first if needed.

        Returns whether the delta was actually staged — False when the
        commit force-cleaned this page's stripe, in which case the caller
        must leave its delta reference untouched.
        """
        if not self.staging.would_fit_after_coalesce(lba, size):
            # The delta this put is about to supersede (if staged) is
            # excluded from the flush: it would be dead on arrival in the
            # DEZ page, and it must survive in NVRAM until the coalescing
            # put below atomically replaces it.
            self._commit_staging(out, exclude=lba)
            # The commit may have force-cleaned this page's stripe (cache
            # fully pinned), repairing its parity and reclaiming the line —
            # the fresh delta is then no longer needed.
            line = self.sets.lookup(lba)
            if line is None or line.state is not PageState.OLD:
                return False
        self.staging.put(lba, size)
        return True

    def _commit_staging(
        self, out: Outcome | None = None, exclude: int | None = None
    ) -> None:
        """Compact all staged deltas into DEZ pages and flush them.

        With the default one-page staging buffer everything fits one DEZ
        page; larger NVRAM buffers are split greedily into page-sized
        groups.  Deltas move to the staging buffer's *flushing* region —
        still NVRAM, still crash-surviving — and are released only once
        their page's *old* mapping entry (with the DEZ location) is
        durable in the metadata buffer.
        """
        items = self.staging.begin_flush(exclude=exclude)
        if not items:
            return
        if out is None:  # columnar fast path: background ops are discarded
            out = Outcome(hit=False, is_read=False)
        # greedy first-fit grouping into page-sized DEZ commits
        groups: list[list] = [[]]
        used = 0
        for d in items:
            need = d.size + DELTA_HEADER_BYTES
            if groups[-1] and used + need > self.config.page_size:
                groups.append([])
                used = 0
            groups[-1].append(d)
            used += need
        for group in groups:
            self._commit_one_dez_page(group, out)
        if self.staging.flushing_count:
            raise CacheError("deltas left in the flushing region after commit")

    def _commit_one_dez_page(self, items: list, out: Outcome) -> None:
        # an earlier group's forced cleaning may have repaired some of these
        # stripes already; drop deltas whose page is no longer old (their
        # flushing copies died with the reclaimed lines)
        kept = [
            d
            for d in items
            if (l := self.sets.lookup(d.lba)) is not None
            and l.state is PageState.OLD
            and l.aux is not None
            and l.aux.dez_lpn is None
        ]
        for d in items:
            if d not in kept:
                self.staging.flush_done(d.lba)
        if not kept:
            return
        loc = self._alloc_dez_slot()
        if loc is None:
            # Cache completely pinned: repair the stripes of the staged
            # deltas right now; the deltas then die without a DEZ write
            # (each line's reclaim releases its flushing copy).
            self.forced_cleanings += 1
            stripes = {self.raid.layout.stripe_of(d.lba) for d in kept}
            for stripe in sorted(stripes):
                self._stale_order.pop(stripe, None)
                self._clean_stripe(stripe, out)
            return
        set_idx, slot = loc
        lpn = self.meta_pages + self.sets.lpn_of(set_idx, slot)
        packed = pack_deltas(
            [(d.lba, d.size, d.payload) for d in kept], self.config.page_size
        )
        self.dez_pages[lpn] = DezPage(lpn=lpn, set_idx=set_idx, slot=slot, packed=packed)
        if self.shim is not None:
            # A torn DEZ program loses only flash bytes: every delta in
            # the page is still NVRAM-resident (flushing) and every old
            # entry still points at NVRAM, so recovery ignores the page.
            self.shim.point("dez_commit", lpn=lpn)
        self._ssd_write(lpn, "delta")
        out.bg_ssd_writes += 1
        for d in packed.deltas:
            line = self.sets.lookup(d.lba)
            if line is None or line.state is not PageState.OLD:
                raise CacheError(f"staged delta for non-old page {d.lba}")
            ref: DeltaRef = line.aux
            # One journaled transaction per delta: the DEZ pointer becomes
            # durable (old-entry in the metadata buffer) in the same
            # instant its NVRAM copy is released — crash on either side
            # recovers the delta from exactly one place.
            self.mlog.reserve()
            with self._txn():
                ref.dez_lpn = lpn
                self._record_old(line, ref, d.offset, d.length)
                self.staging.flush_done(d.lba)

    def _alloc_dez_slot(self) -> tuple[int, int] | None:
        if (
            self.fixed_dez_fraction is not None
            and self.sets.dez_pages >= self.fixed_dez_fraction * self.config.cache_pages
        ):
            return None
        if self.dez_random_placement:
            loc = self._alloc_dez_random()
        else:
            loc = self.sets.alloc_dez()
        if loc is not None:
            return loc
        # no free slot anywhere: evict a clean page from the least-DEZ set
        victim = self.sets.min_dez_set_with_clean()
        if victim is None:
            return None
        self._drop_line(victim)
        return self._alloc_dez_random() if self.dez_random_placement else self.sets.alloc_dez()

    def _alloc_dez_random(self) -> tuple[int, int] | None:
        """Ablation: place DEZ pages in random sets instead of least-loaded."""
        for _ in range(8):
            set_idx = int(self._rng.integers(0, self.sets.n_sets))
            loc = self.sets.alloc_dez_at(set_idx)
            if loc is not None:
                return loc
        return self.sets.alloc_dez()

    def _invalidate_dez_delta(self, lba: int, ref: DeltaRef) -> None:
        dez = self.dez_pages.get(ref.dez_lpn)
        if dez is None:
            raise CacheError(f"dangling DEZ reference for page {lba}")
        if dez.packed.invalidate(lba) == 0:
            del self.dez_pages[dez.lpn]
            self.sets.free_dez(dez.set_idx, dez.slot)
            self._ssd_trim(dez.lpn)

    # -- cleaning (Section III-D) ---------------------------------------------------

    @property
    def dirty_pages(self) -> int:
        """Old + delta pages: what cleaning is triggered on."""
        return self.sets.count(PageState.OLD) + self.sets.dez_pages

    def _maybe_clean(self, out: Outcome | None = None) -> None:
        if self.dirty_pages <= self._dirty_limit:
            return
        if out is None:  # columnar fast path: background ops are discarded
            out = Outcome(hit=False, is_read=False)
        target = self._clean_target
        while self._stale_order and self.dirty_pages > target:
            stripe = next(iter(self._stale_order))
            del self._stale_order[stripe]
            self._clean_stripe(stripe, out)

    def _clean_stripe(self, stripe: int, out: Outcome) -> None:
        """Repair one stripe's parity and reclaim its old pages."""
        stripe_lbas = self.raid.layout.stripe_pages(stripe)
        cached = self.sets.resident_in_range(stripe_lbas.start, stripe_lbas.stop)
        old_lines = [
            l for lba in cached
            if (l := self.sets.lookup(lba)).state is PageState.OLD
        ]
        deltas = {l.lba: b"" for l in old_lines}
        if not deltas:
            if self.shim is not None:
                self.shim.point("cleaner_parity", stripe=stripe)
            out.bg_disk_ops.extend(self.raid.parity_update(stripe, deltas={}, cached_pages=cached))
            return
        self.cleanings += 1

        all_cached = len(cached) == len(stripe_lbas)
        dez_lpns = {
            l.aux.dez_lpn for l in old_lines if l.aux and l.aux.dez_lpn is not None
        }
        # reconstruct-write reads every cached data page; both modes read
        # the committed delta pages (staged deltas are already in NVRAM)
        ssd_reads = (len(cached) if all_cached else 0) + len(dez_lpns)
        if ssd_reads:
            self._ssd_read(ssd_reads)
        if self.shim is not None:
            # A crash here leaves the stripe's parity stale and every
            # delta in place — exactly the state the cleaner found.
            self.shim.point("cleaner_parity", stripe=stripe)
        out.bg_disk_ops.extend(
            self.raid.parity_update(stripe, deltas=deltas, cached_pages=cached)
        )

        for line in old_lines:
            ref: DeltaRef = line.aux
            # Parity is repaired: each line's reclaim (delta invalidation
            # plus its mapping record) is one journaled transaction, with
            # metadata-buffer room reserved up front so the record cannot
            # trigger a page program mid-transaction.
            self.mlog.reserve()
            if self.shim is not None:
                self.shim.point("clean_reclaim", lba=line.lba)
            with self._txn():
                if ref.dez_lpn is None:
                    self.staging.remove(line.lba)
                else:
                    self._invalidate_dez_delta(line.lba, ref)
                if self.reclaim_merge:
                    # alternative scheme: merge old+delta, keep the page clean
                    line.aux = None
                    self.sets.set_state(line.lba, PageState.CLEAN)
                    self._ssd_write(self._data_lpn(line), "data")
                    out.bg_ssd_writes += 1
                    self._record_clean(line)
                else:
                    line.aux = None
                    self._drop_line(line)

    def finish(self) -> None:
        """Repair all remaining stale parity (orderly shutdown)."""
        sink = Outcome(hit=False, is_read=False)
        while self._stale_order:
            stripe = next(iter(self._stale_order))
            del self._stale_order[stripe]
            self._clean_stripe(stripe, sink)

    # -- invariants -------------------------------------------------------------

    def check_invariants(self) -> None:
        super().check_invariants()
        self.mlog.check_invariants()
        staged = {d.lba for d in self.staging.snapshot()}
        for line in self.sets.all_lines():
            if line.state is PageState.OLD:
                ref: DeltaRef = line.aux
                if ref is None:
                    raise CacheError(f"old page {line.lba} without delta ref")
                if ref.dez_lpn is None:
                    if line.lba not in staged:
                        raise CacheError(f"old page {line.lba}: staged delta missing")
                else:
                    dez = self.dez_pages.get(ref.dez_lpn)
                    if dez is None or line.lba not in dez.packed.valid:
                        raise CacheError(f"old page {line.lba}: DEZ delta missing")
            elif line.state is PageState.CLEAN:
                if line.aux is not None:
                    raise CacheError(f"clean page {line.lba} carries a delta ref")
                if line.lba in staged:
                    raise CacheError(f"clean page {line.lba} has a staged delta")
        # every valid DEZ entry must belong to an old line pointing back
        for lpn, dez in self.dez_pages.items():
            if dez.valid_count == 0:
                raise CacheError(f"empty DEZ page {lpn} not reclaimed")
            for lba in dez.packed.valid:
                line = self.sets.lookup(lba)
                if line is None or line.state is not PageState.OLD:
                    raise CacheError(f"DEZ delta for non-old page {lba}")
                if line.aux.dez_lpn != lpn:
                    raise CacheError(f"DEZ back-reference mismatch for {lba}")
