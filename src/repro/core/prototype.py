"""The prototype data path: KDD with *real bytes* end to end.

The trace-driven simulator (:class:`repro.core.kdd.KDD`) models delta
sizes statistically, exactly like the paper's simulator.  This module
is the counterpart of the paper's kernel prototype (Section IV-B): a
fully functional data path where

* the RAID array stores real page payloads and maintains real parity,
* the SSD cache stores real data pages in the DAZ,
* write hits compute a real XOR+zlib delta (:class:`repro.delta.DeltaCodec`)
  against the cached old version, pack it into real DEZ page bytes, and
  dispatch the new data to RAID without a parity update,
* read hits on *old* pages reconstruct the latest data from the cached
  old version plus the latest delta — bit for bit.

Every read can be verified against a reference model, which the test
suite does under randomized workloads and failure injection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cache.sets import CacheSets
from ..delta.codec import DeltaCodec, mutate_page
from ..delta.packer import DELTA_HEADER_BYTES
from ..errors import CacheError, ConfigError
from ..flash.device import SSD
from ..nvram.metabuffer import PageState
from ..nvram.staging import StagingBuffer
from ..raid.array import RAIDArray
from ..raid.layout import RaidLevel


@dataclass
class _PrototypeDelta:
    """A real delta: either staged bytes or a slice of a DEZ page."""

    payload: bytes
    dez_lpn: int | None = None


class KDDDataPath:
    """Byte-accurate KDD cache over a payload-carrying RAID array."""

    def __init__(
        self,
        raid: RAIDArray | None = None,
        cache_pages: int = 1024,
        ways: int = 32,
        page_size: int = 4096,
        staging_bytes: int | None = None,
        codec_level: int = 1,
        dirty_limit: float = 0.5,
    ) -> None:
        if raid is None:
            raid = RAIDArray(
                RaidLevel.RAID5,
                ndisks=5,
                chunk_pages=16,
                pages_per_disk=1 << 18,
                page_size=page_size,
                store_data=True,
            )
        if raid._disk_data is None:
            raise ConfigError("the prototype path needs store_data=True RAID")
        if raid.page_size != page_size:
            raise ConfigError("RAID and cache page sizes must match")
        if not 0.0 < dirty_limit <= 1.0:
            raise ConfigError("dirty_limit must be in (0, 1]")
        self.raid = raid
        self.page_size = page_size
        self.codec = DeltaCodec(level=codec_level)
        self.sets = CacheSets(cache_pages, ways=ways,
                              group_pages=raid.layout.stripe_data_pages)
        self.ssd = SSD(
            capacity_bytes=int(cache_pages * page_size / 0.9) + (1 << 20),
            store_data=True,
        )
        self.staging = StagingBuffer(staging_bytes or page_size)
        self.dez_payloads: dict[int, dict[int, bytes]] = {}  # lpn -> lba -> delta
        self.dirty_limit = dirty_limit
        self.read_hits = 0
        self.read_misses = 0
        self.write_hits = 0
        self.write_misses = 0
        self.delta_bytes_total = 0
        self.delta_count = 0
        self.incompressible_writes = 0

    # -- helpers -----------------------------------------------------------

    def _lpn(self, line) -> int:
        return self.sets.lpn_of(line.set_idx, line.slot)

    def _coerce(self, data: bytes) -> bytes:
        if len(data) > self.page_size:
            raise ConfigError("payload exceeds page size")
        return data.ljust(self.page_size, b"\0")

    def _latest_delta(self, lba: int) -> _PrototypeDelta | None:
        staged = self.staging.get(lba)
        if staged is not None:
            return _PrototypeDelta(payload=staged.payload)
        for lpn, table in self.dez_payloads.items():
            if lba in table:
                return _PrototypeDelta(payload=table[lba], dez_lpn=lpn)
        return None

    # -- reads ---------------------------------------------------------------

    def read(self, lba: int) -> bytes:
        """Return the current data of ``lba`` (always bit-exact)."""
        line = self.sets.lookup(lba)
        if line is None:
            self.read_misses += 1
            data = bytes(self.raid.read_data(lba))
            self.raid.counters.data_reads += 1
            self._admit(lba, data)
            return data
        self.read_hits += 1
        self.sets.touch(lba)
        cached = self.ssd.read(self._lpn(line)) or b""
        if line.state is PageState.CLEAN:
            return cached
        delta = self._latest_delta(lba)
        if delta is None:
            raise CacheError(f"old page {lba} has no delta")
        return self.codec.decode(cached, delta.payload)

    # -- writes ----------------------------------------------------------------

    def write(self, lba: int, data: bytes) -> None:
        data = self._coerce(data)
        line = self.sets.lookup(lba)
        if line is None:
            self.write_misses += 1
            self.raid.write(lba, data=[data])
            self._admit(lba, data)
            return
        self.write_hits += 1
        self.sets.touch(lba)
        old_version = self.ssd.read(self._lpn(line)) or b""
        if line.state is PageState.OLD:
            self._invalidate_delta(lba)
        delta = self.codec.encode(old_version, data)
        if len(delta) + DELTA_HEADER_BYTES > self.staging.capacity_bytes:
            # incompressible page: the delta scheme degenerates to plain
            # write-through (update the cached copy, full parity write)
            self.incompressible_writes += 1
            self.ssd.write(self._lpn(line), data)
            self.sets.set_state(lba, PageState.CLEAN)
            self.raid.write(lba, data=[data])
            return
        self.delta_bytes_total += len(delta)
        self.delta_count += 1
        self._stage(lba, delta)
        if self.sets.lookup(lba) is None:
            # the page was evicted/reclaimed while making room for the
            # delta commit: fall back to a plain parity write and re-admit
            self.raid.write(lba, data=[data])
            self._admit(lba, data)
            return
        self.sets.set_state(lba, PageState.OLD)
        self.raid.write_without_parity_update(lba, data=data)
        self._maybe_clean()

    def _stage(self, lba: int, delta: bytes) -> None:
        size = max(1, len(delta))
        if not self.staging.would_fit_after_coalesce(lba, size):
            self._commit_staging()
            if self.sets.lookup(lba) is None:
                return  # forced cleaning reclaimed this page
        self.staging.put(lba, size, payload=delta)

    def _commit_staging(self) -> None:
        items = self.staging.drain()
        if not items:
            return
        loc = self.sets.alloc_dez()
        if loc is None:
            victim = self.sets.min_dez_set_with_clean()
            if victim is not None:
                self._drop_clean(victim)
                loc = self.sets.alloc_dez()
        if loc is None:
            # fully pinned: repair the affected stripes immediately
            for stripe in sorted({self.raid.layout.stripe_of(d.lba) for d in items}):
                self._clean_stripe(stripe)
            return
        lpn = self.sets.lpn_of(*loc)
        self.ssd.write(lpn)
        self.dez_payloads[lpn] = {d.lba: d.payload for d in items}

    def _invalidate_delta(self, lba: int) -> None:
        if self.staging.remove(lba):
            return
        for lpn, table in list(self.dez_payloads.items()):
            if lba in table:
                del table[lba]
                if not table:
                    del self.dez_payloads[lpn]
                    dez_set, slot = divmod(lpn, self.sets.ways)
                    self.sets.free_dez(dez_set, slot)
                    self.ssd.trim(lpn)
                return

    # -- admission and reclamation ------------------------------------------------

    def _admit(self, lba: int, data: bytes) -> None:
        line = self.sets.alloc(lba, PageState.CLEAN)
        if line is None:
            victim = None
            for cand in self.sets.lines_in_set(self.sets.set_of(lba)):
                if cand.state is PageState.CLEAN:
                    victim = cand
                    break
            if victim is None:
                return  # pinned set: serve uncached
            self._drop_clean(victim)
            line = self.sets.alloc(lba, PageState.CLEAN)
            if line is None:
                return
        self.ssd.write(self._lpn(line), data)

    def _drop_clean(self, line) -> None:
        if line.state is not PageState.CLEAN:
            raise CacheError("only clean pages are evictable")
        self.ssd.trim(self._lpn(line))
        self.sets.remove(line.lba)

    @property
    def dirty_pages(self) -> int:
        return self.sets.count(PageState.OLD) + self.sets.dez_pages

    def _maybe_clean(self) -> None:
        limit = self.dirty_limit * self.sets.capacity_pages
        if self.dirty_pages <= limit:
            return
        for stripe in sorted(self.raid.stale_stripes):
            self._clean_stripe(stripe)
            if self.dirty_pages <= limit / 2:
                break

    def _clean_stripe(self, stripe: int) -> None:
        lbas = self.raid.layout.stripe_pages(stripe)
        cached = self.sets.resident_in_range(lbas.start, lbas.stop)
        old_lines = [
            l for lba in cached
            if (l := self.sets.lookup(lba)).state is PageState.OLD
        ]
        self.raid.parity_update(
            stripe, deltas={l.lba: b"" for l in old_lines}, cached_pages=cached
        )
        for line in old_lines:
            self._invalidate_delta(line.lba)
            self.ssd.trim(self._lpn(line))
            self.sets.remove(line.lba)

    def flush(self) -> None:
        """Repair every delayed parity (orderly shutdown)."""
        for stripe in sorted(self.raid.stale_stripes):
            self._clean_stripe(stripe)

    # -- reporting ----------------------------------------------------------------

    @property
    def mean_delta_ratio(self) -> float:
        """Observed compression ratio across all deltas created."""
        if self.delta_count == 0:
            return 1.0 if self.incompressible_writes else 0.0
        return self.delta_bytes_total / (self.delta_count * self.page_size)


class ContentWorkload:
    """Generates page contents with controlled content locality.

    Each write mutates a fraction of the page's previous content
    (Section II-C: "only 5-20% of bits inside a block are changed on a
    write"), so the real codec produces deltas whose size tracks the
    configured locality.
    """

    def __init__(
        self,
        universe_pages: int,
        change_fraction: float = 0.10,
        page_size: int = 4096,
        seed: int = 0,
    ) -> None:
        if universe_pages < 1:
            raise ConfigError("universe must hold at least one page")
        if not 0.0 <= change_fraction <= 1.0:
            raise ConfigError("change_fraction must be in [0, 1]")
        self.page_size = page_size
        self.change_fraction = change_fraction
        self._rng = np.random.default_rng(seed)
        self._content: dict[int, bytes] = {}
        self.universe_pages = universe_pages

    def current(self, lba: int) -> bytes:
        """Current reference content of a page (zeros if never written)."""
        return self._content.get(lba, b"\0" * self.page_size)

    def initial(self, lba: int) -> bytes:
        """First-ever content: random bytes, recorded as current."""
        data = self._rng.integers(
            0, 256, self.page_size, dtype=np.uint8
        ).tobytes()
        self._content[lba] = data
        return data

    def next_version(self, lba: int) -> bytes:
        """A new version differing in ``change_fraction`` of the page."""
        if lba not in self._content:
            return self.initial(lba)
        data = mutate_page(self._content[lba], self.change_fraction, self._rng)
        self._content[lba] = data
        return data
