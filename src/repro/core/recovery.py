"""Failure handling and recovery (Section III-E).

Three failure classes, all with a recovery point objective of zero:

* **Power failure** — the primary map is rebuilt by replaying the
  metadata log from head to tail, overlaying the NVRAM metadata buffer,
  then overlaying the NVRAM staging buffer (pages with a staged delta
  are *old* with the delta still in NVRAM).
* **SSD failure** — no data lives only in the cache (every write reached
  RAID), but stripes with delayed parity must be re-synchronised before
  the array tolerates a disk loss again.
* **HDD failure** — all stale parity is repaired through the
  ``parity_update`` interface first, then the RAID layer rebuilds the
  failed member.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import RecoveryError
from ..nvram.metabuffer import MappingEntry, PageState
from ..raid.rebuild import RebuildReport, rebuild_disk, resync_stale_parity
from .kdd import KDD, DeltaRef


@dataclass(frozen=True)
class RecoveredPage:
    """Post-recovery view of one cached storage page."""

    lba_raid: int
    state: PageState
    lba_daz: int
    dez_lpn: int | None  # None: no delta, or delta was in NVRAM staging


@dataclass
class RecoveredState:
    """The primary map as rebuilt after a power failure."""

    pages: dict[int, RecoveredPage] = field(default_factory=dict)
    dez_valid_counts: dict[int, int] = field(default_factory=dict)

    @property
    def cached_pages(self) -> int:
        return len(self.pages)


def recover_from_power_failure(kdd: KDD) -> RecoveredState:
    """Rebuild the primary map from persistent + NVRAM state.

    This reads *only* what survives a crash: the metadata log pages on
    flash (via its NVRAM head/tail counters) and the two NVRAM buffers.
    The live in-memory map is never consulted — tests compare the result
    against it to prove the persistence protocol is complete.
    """
    # 1) replay the circular log (head -> tail)
    mapping: dict[int, MappingEntry] = kdd.mlog.replay()
    # 2) overlay every NVRAM-held entry (newer than anything on flash):
    #    batches whose page program was cut short, then the buffer
    for entry in kdd.mlog.nvram_entries():
        mapping[entry.lba_raid] = entry
    # 3) build the page view, dropping FREE tombstones
    state = RecoveredState()
    for lba, entry in mapping.items():
        if entry.state is PageState.FREE:
            continue
        if entry.state not in (PageState.CLEAN, PageState.OLD):
            raise RecoveryError(f"unexpected persisted state {entry.state} for {lba}")
        dez = entry.lba_dez if entry.state is PageState.OLD and entry.lba_dez >= 0 else None
        state.pages[lba] = RecoveredPage(
            lba_raid=lba, state=entry.state, lba_daz=entry.lba_daz, dez_lpn=dez
        )
    # 4) overlay the staging buffer: a staged delta makes its page OLD with
    #    the delta in NVRAM, superseding any persisted DEZ pointer
    for staged in kdd.staging.snapshot():
        prev = state.pages.get(staged.lba)
        if prev is None:
            raw = mapping.get(staged.lba)
            if raw is not None and raw.state is PageState.FREE:
                # The page was reclaimed (its parity repaired) while its
                # delta was still flushing: the FREE tombstone is newer,
                # the orphaned delta is dead weight and is discarded.
                continue
            raise RecoveryError(
                f"staged delta for page {staged.lba} with no persisted mapping"
            )
        state.pages[staged.lba] = RecoveredPage(
            lba_raid=staged.lba,
            state=PageState.OLD,
            lba_daz=prev.lba_daz,
            dez_lpn=None,
        )
    # 5) DEZ valid counts fall out of the old-page entries
    for page in state.pages.values():
        if page.dez_lpn is not None:
            state.dez_valid_counts[page.dez_lpn] = (
                state.dez_valid_counts.get(page.dez_lpn, 0) + 1
            )
    return state


def verify_recovery(kdd: KDD, recovered: RecoveredState) -> None:
    """Compare a recovered map against the live one; raises on mismatch."""
    live: dict[int, tuple[PageState, int | None]] = {}
    for line in kdd.sets.all_lines():
        ref: DeltaRef | None = line.aux
        dez = ref.dez_lpn if (ref is not None and line.state is PageState.OLD) else None
        live[line.lba] = (line.state, dez)
    rec = {lba: (p.state, p.dez_lpn) for lba, p in recovered.pages.items()}
    if live != rec:
        missing = set(live) - set(rec)
        extra = set(rec) - set(live)
        differing = {
            lba for lba in set(live) & set(rec) if live[lba] != rec[lba]
        }
        detail = f" (e.g. {sorted(differing)[:3]})" if differing else ""
        raise RecoveryError(
            f"recovered map mismatch: {len(missing)} missing, "
            f"{len(extra)} extra, {len(differing)} differing{detail}"
        )
    live_dez = {lpn: dez.valid_count for lpn, dez in kdd.dez_pages.items()}
    if live_dez != recovered.dez_valid_counts:
        raise RecoveryError("recovered DEZ valid counts mismatch")


def recover_from_ssd_failure(kdd: KDD, keep_ops: bool = False) -> RebuildReport:
    """The SSD cache died: resynchronise all delayed parity on the array.

    Data is never lost (RPO = 0) because writes were always dispatched
    to RAID; the array just needs its stale stripes reconstructed before
    it is single-fault tolerant again.
    """
    return resync_stale_parity(kdd.raid, keep_ops=keep_ops)


def recover_from_hdd_failure(
    kdd: KDD, disk: int, keep_ops: bool = False
) -> RebuildReport:
    """A member disk died: repair parity first, then rebuild the member."""
    kdd.raid.fail_disk(disk)
    # flush every delayed parity using the cache's deltas (Section III-E2)
    from ..cache.base import Outcome

    sink = Outcome(hit=False, is_read=False)
    while kdd._stale_order:
        stripe = next(iter(kdd._stale_order))
        del kdd._stale_order[stripe]
        kdd._clean_stripe(stripe, sink)
    return rebuild_disk(kdd.raid, disk, keep_ops=keep_ops)
