"""Machine-checked effect contracts (DESIGN §12).

Foundation-layer vocabulary for contracts the whole-program analyzer
(:mod:`repro.devtools.analyze.effects`) enforces statically.  Like
:func:`repro.errors.raises`, the decorators here change nothing at
runtime beyond a marker attribute — they exist so intent is written in
the code and the analyzer can hold every caller to it.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import TypeVar

_F = TypeVar("_F", bound=Callable[..., object])


def columnar(
    dtypes: Mapping[str, str] | None = None,
    shapes: Mapping[str, str] | None = None,
) -> Callable[[_F], _F]:
    """Declare the columnar contract of a batch kernel.

    ``dtypes`` maps names to dtype specs; ``shapes`` maps the same
    names to symbolic shapes (``"(n,)"``).  A name is either a
    parameter, ``"return"``, or a *named column* the kernel produces
    (checked wherever the body binds or passes a value under that
    name).  Dtype specs are numpy dtype names (``"int64"``,
    ``"float64"``, ``"bool"``), a ``"|"``-union of them, the scalar
    specs ``"int"``/``"float"``, or a parenthesised tuple for
    multi-value returns (``"(uint64, bool)"``).

    Both mappings must be **literal** dicts of string literals: the
    whole point is that ``kdd-repro analyze`` (rule family
    RPR301-RPR305) reads the declaration straight from the AST and
    verifies the body and every resolved call site against it.  At
    runtime the declaration is only recorded on the function.
    """

    def decorate(func: _F) -> _F:
        func.__columnar__ = {  # type: ignore[attr-defined]
            "dtypes": dict(dtypes or {}),
            "shapes": dict(shapes or {}),
        }
        return func

    return decorate


def mutates_membership(func: _F) -> _F:
    """Declare a method as a cache-membership choke point.

    The decorated method is the *only* place allowed to write the
    membership directory pair of :class:`repro.cache.sets.CacheSets`
    (``_index`` and its columnar mirror ``_lba_table``) and it must
    bump the membership epoch (``mutations``) so batched classification
    snapshots can detect staleness.  Both halves of the contract are
    enforced by ``kdd-repro analyze`` (RPR201/RPR202).
    """
    func.__mutates_membership__ = True  # type: ignore[attr-defined]
    return func
