"""Machine-checked effect contracts (DESIGN §12).

Foundation-layer vocabulary for contracts the whole-program analyzer
(:mod:`repro.devtools.analyze.effects`) enforces statically.  Like
:func:`repro.errors.raises`, the decorators here change nothing at
runtime beyond a marker attribute — they exist so intent is written in
the code and the analyzer can hold every caller to it.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TypeVar

_F = TypeVar("_F", bound=Callable[..., object])


def mutates_membership(func: _F) -> _F:
    """Declare a method as a cache-membership choke point.

    The decorated method is the *only* place allowed to write the
    membership directory pair of :class:`repro.cache.sets.CacheSets`
    (``_index`` and its columnar mirror ``_lba_table``) and it must
    bump the membership epoch (``mutations``) so batched classification
    snapshots can detect staleness.  Both halves of the contract are
    enforced by ``kdd-repro analyze`` (RPR201/RPR202).
    """
    func.__mutates_membership__ = True  # type: ignore[attr-defined]
    return func
