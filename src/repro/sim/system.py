"""Full-system timing composition: cache policy + RAID disks + SSD.

This is the discrete-event "prototype" path (Section IV-B): a policy
decides what each access does; this module schedules the resulting
device operations on FCFS servers and measures the request's response
time.  Writes are acknowledged only after their RAID member writes
complete (the paper's RPO=0 consistency rule); asynchronous work (read
fills, delta/metadata commits, cleaning I/O) still occupies the devices
and delays later requests, but not the request that caused it.

RAID member semantics: a request's member *reads* proceed in parallel
across disks, its member *writes* start only after the reads finish —
the two phases of a read-modify-write.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cache.base import CachePolicy, Outcome
from ..disk.hdd import HDDParams
from ..errors import ConfigError
from ..flash.device import SSDLatency
from ..raid.array import DiskOp
from ..stats.latency import LatencyRecorder, LatencySummary
from ..traces.record import IORequest
from .devices import DiskServer, SSDServer


@dataclass(frozen=True)
class TimingReport:
    """Outcome of one timed run."""

    policy: str
    workload: str
    latency: LatencySummary
    duration: float
    requests: int

    @property
    def mean_response_ms(self) -> float:
        return self.latency.mean_ms

    @property
    def iops(self) -> float:
        return self.requests / self.duration if self.duration > 0 else 0.0

    def row(self) -> dict[str, float]:
        out = {"policy": self.policy, "workload": self.workload}
        out.update(self.latency.row())
        out["iops"] = round(self.iops, 1)
        return out


class TimedSystem:
    """Schedules one policy's device operations on shared servers."""

    def __init__(
        self,
        policy: CachePolicy,
        hdd_params: HDDParams | None = None,
        ssd_latency: SSDLatency | None = None,
        ssd_channels: int = 8,
    ) -> None:
        self.policy = policy
        ndisks = policy.raid.ndisks
        page_size = policy.config.page_size
        self.disks = [DiskServer(hdd_params, page_size) for _ in range(ndisks)]
        self.ssd = SSDServer(ssd_latency, channels=ssd_channels)
        self.recorder = LatencyRecorder()
        self._clock = 0.0

    # -- scheduling helpers -------------------------------------------------

    def _serve_ssd(self, npages: int, is_read: bool, earliest: float) -> float:
        """Serve one SSD command; returns its finish time.

        Overridable: the fault layer (:mod:`repro.faults.timed`) inspects
        the typed :class:`~repro.sim.devices.ServiceWindow` outcome here.
        """
        if is_read:
            return self.ssd.serve_read(npages, earliest).finish
        return self.ssd.serve_write(npages, earliest).finish

    def _schedule_disk_phases(self, ops: list[DiskOp], earliest: float) -> float:
        """Reads in parallel, then writes in parallel; returns finish time."""
        reads = [op for op in ops if op.is_read]
        writes = [op for op in ops if not op.is_read]
        phase1_done = earliest
        for op in reads:
            w = self.disks[op.disk].serve(op.disk_page, op.npages, True, earliest)
            phase1_done = max(phase1_done, w.finish)
        done = phase1_done
        for op in writes:
            w = self.disks[op.disk].serve(op.disk_page, op.npages, False, phase1_done)
            done = max(done, w.finish)
        return done

    def _schedule_background(self, out: Outcome, after: float) -> None:
        """Asynchronous work occupies devices but nobody waits on it."""
        if out.bg_ssd_writes:
            self._serve_ssd(out.bg_ssd_writes, False, after)
        if out.bg_disk_ops:
            self._schedule_disk_phases(out.bg_disk_ops, after)

    def submit(self, lba: int, npages: int, is_read: bool, arrival: float) -> float:
        """Process one request; returns its completion time."""
        if arrival < 0:
            raise ConfigError("arrival time must be >= 0")
        self._clock = max(self._clock, arrival)
        completion = arrival
        backgrounds: list[Outcome] = []
        for page in range(lba, lba + npages):
            out = self.policy.access(page, is_read)
            page_done = arrival
            if out.fg_ssd_reads:
                page_done = self._serve_ssd(out.fg_ssd_reads, True, arrival)
            if out.fg_compute:
                page_done += out.fg_compute
            if out.fg_disk_ops:
                page_done = max(
                    page_done, self._schedule_disk_phases(out.fg_disk_ops, arrival)
                )
            completion = max(completion, page_done)
            backgrounds.append(out)
        # background work starts once the foreground finished
        for out in backgrounds:
            self._schedule_background(out, completion)
        self.recorder.record(completion - arrival)
        return completion

    def submit_request(self, req: IORequest) -> float:
        return self.submit(req.lba, req.npages, req.is_read, req.time)

    def report(self, workload: str, duration: float) -> TimingReport:
        return TimingReport(
            policy=self.policy.name,
            workload=workload,
            latency=self.recorder.summary(),
            duration=duration,
            requests=len(self.recorder),
        )

    def inject_disk_ops(self, ops: list[DiskOp], at: float) -> float:
        """Schedule external member I/O (e.g. rebuild traffic) at ``at``.

        Used by degraded-mode experiments: the ops occupy the disks and
        delay subsequent foreground requests, exactly like a rebuild
        running under load.  Returns the injected batch's finish time.
        """
        return self._schedule_disk_phases(ops, at)

    def utilisation(self, duration: float) -> dict[str, float]:
        """Per-device busy fractions over ``duration`` (bottleneck finder)."""
        if duration <= 0:
            raise ConfigError("duration must be positive")
        out = {
            f"disk{i}": min(1.0, d.hdd.busy_time / duration)
            for i, d in enumerate(self.disks)
        }
        out["ssd"] = min(1.0, self.ssd.busy_time / duration)
        return out
