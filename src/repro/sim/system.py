"""Full-system timing composition: cache policy + RAID disks + SSD.

:class:`TimedSystem` is the public face of the discrete-event
"prototype" path (Section IV-B): a policy decides what each access
does; the engine (:class:`repro.engine.SimEngine`) schedules the
resulting device operations and measures the request's response time.
Writes are acknowledged only after their RAID member writes complete
(the paper's RPO=0 consistency rule); asynchronous work (read fills,
delta/metadata commits, cleaning I/O) still occupies the devices and
delays later requests, but not the request that caused it.

RAID member semantics: a request's member *reads* proceed in parallel
across disks, its member *writes* start only after the reads finish —
the two phases of a read-modify-write.

This class is deliberately a thin facade: it owns no clocks and no
scheduling logic (kdd-lint rule RPR009 enforces that only
:mod:`repro.engine` advances simulated time).  Cross-cutting behaviour
is added by installing engine hooks — see
:class:`repro.faults.FaultyTimedSystem` for the fault pipeline and
:class:`repro.engine.InstrumentationHook` for op-level traces.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..cache.base import CachePolicy
from ..disk.hdd import HDDParams
from ..errors import SimulationError, raises
from ..engine.hooks import EngineHook
from ..engine.resources import QueueDiscipline
from ..engine.system import SimEngine
from ..flash.device import SSDLatency
from ..raid.array import DiskOp
from ..stats.latency import LatencySummary
from ..traces.record import IORequest


@dataclass(frozen=True)
class TimingReport:
    """Outcome of one timed run."""

    policy: str
    workload: str
    latency: LatencySummary
    duration: float
    requests: int

    @property
    def mean_response_ms(self) -> float:
        return self.latency.mean_ms

    @property
    def iops(self) -> float:
        return self.requests / self.duration if self.duration > 0 else 0.0

    def row(self) -> dict[str, float]:
        out = {"policy": self.policy, "workload": self.workload}
        out.update(self.latency.row())
        out["iops"] = round(self.iops, 1)
        return out


class TimedSystem:
    """Schedules one policy's device operations on the shared engine."""

    def __init__(
        self,
        policy: CachePolicy,
        hdd_params: HDDParams | None = None,
        ssd_latency: SSDLatency | None = None,
        ssd_channels: int = 8,
        discipline: QueueDiscipline | None = None,
        hooks: Sequence[EngineHook] = (),
    ) -> None:
        self.engine = SimEngine(policy, hdd_params, ssd_latency, ssd_channels,
                                discipline=discipline)
        self.policy = policy
        self.disks = self.engine.disks
        self.ssd = self.engine.ssd
        self.recorder = self.engine.recorder
        for hook in hooks:
            self.engine.add_hook(hook)

    def add_hook(self, hook: EngineHook) -> None:
        """Install an engine hook (fault pipeline, instrumentation, ...)."""
        self.engine.add_hook(hook)

    @raises(SimulationError)
    def submit(self, lba: int, npages: int, is_read: bool, arrival: float) -> float:
        """Process one request; returns its completion time."""
        return self.engine.submit(lba, npages, is_read, arrival)

    @raises(SimulationError)
    def submit_request(self, req: IORequest) -> float:
        return self.submit(req.lba, req.npages, req.is_read, req.time)

    def report(self, workload: str, duration: float) -> TimingReport:
        return TimingReport(
            policy=self.policy.name,
            workload=workload,
            latency=self.recorder.summary(),
            duration=duration,
            requests=len(self.recorder),
        )

    @raises(SimulationError)
    def inject_disk_ops(self, ops: Sequence[DiskOp], at: float) -> float:
        """Schedule external member I/O (e.g. rebuild traffic) at ``at``.

        Used by degraded-mode experiments: the ops occupy the disks and
        delay subsequent foreground requests, exactly like a rebuild
        running under load.  Returns the injected batch's finish time.
        """
        return self.engine.inject_disk_ops(ops, at)

    def utilisation(self, duration: float) -> dict[str, float]:
        """Per-device busy fractions over ``duration`` (bottleneck finder).

        Busy time includes fault stalls and retry backoffs
        (:attr:`~repro.engine.resources.ServiceWindow.fault_latency`) —
        a stalled device is occupied, not idle.
        """
        return self.engine.utilisation(duration)
