"""FCFS device servers for the timing simulator.

Each member disk and the SSD cache are modelled as first-come
first-served servers with their substrate's service-time models
(:class:`repro.disk.HDD`, :class:`repro.flash.SSDLatency`).  The
simulators feed operations in global arrival order, so a simple
``busy_until`` clock per server implements FCFS queueing exactly.

Fault surface
-------------

Both servers accept an optional *fault stream*
(:class:`repro.faults.DeviceFaultStream`) and a
:class:`repro.faults.RetryPolicy`.  A serve call then returns a *typed
outcome* instead of assuming success: the :class:`ServiceWindow` carries
the residual :class:`~repro.faults.FaultKind` (``None`` when the command
succeeded), how many transparent retries the device absorbed, and the
latency those stalls and backoffs added.  Transient timeouts are retried
in place (each retry stalls the device — later commands queue behind the
backoff); a leftover ``TIMEOUT`` means retries ran out, and a ``URE`` is
persistent by definition, so both escalate to the caller (the RAID layer
reconstructs, see :mod:`repro.faults.timed`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..disk.hdd import HDD, HDDParams
from ..errors import ConfigError
from ..faults.retry import RetryPolicy
from ..faults.schedule import DeviceFaultStream, FaultKind
from ..flash.device import SSDLatency


@dataclass
class ServiceWindow:
    """When an operation started and finished on a server — and whether
    it actually succeeded.

    ``fault`` is the *residual* fault after the device's transparent
    retries: ``None`` for success, :attr:`FaultKind.URE` for an
    unrecoverable media error, :attr:`FaultKind.TIMEOUT` when the retry
    budget ran out.  ``fault_latency`` (stalls + backoffs) is already
    included in ``finish``.
    """

    start: float
    finish: float
    fault: FaultKind | None = None
    retries: int = 0
    fault_latency: float = 0.0

    @property
    def ok(self) -> bool:
        return self.fault is None


def _faulted_service(
    stream: DeviceFaultStream | None,
    retry: RetryPolicy | None,
    is_read: bool,
    npages: int,
) -> tuple[FaultKind | None, int, float]:
    """Draw a command's fault outcome and absorb transient retries.

    Returns ``(residual fault, retries used, added latency)``.  Each
    timeout stalls ``timeout_s`` then waits the policy's backoff before
    the retry re-draws from the stream; a URE is persistent and is
    never retried (re-reading bad media returns the same error).
    """
    if stream is None:
        return None, 0, 0.0
    fault = stream.draw(is_read, npages)
    retries = 0
    penalty = 0.0
    timeout_s = stream.config.timeout_s
    while (
        fault is FaultKind.TIMEOUT
        and retry is not None
        and retries < retry.max_retries
    ):
        penalty += timeout_s + retry.backoff(retries)
        retries += 1
        fault = stream.draw(is_read, npages)
    if fault is FaultKind.TIMEOUT:
        penalty += timeout_s  # the final, un-retried stall
    return fault, retries, penalty


class DiskServer:
    """One member disk: FCFS queue over the mechanical HDD model."""

    def __init__(
        self,
        params: HDDParams | None = None,
        page_size: int = 4096,
        faults: DeviceFaultStream | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.hdd = HDD(params, page_size=page_size)
        self.busy_until = 0.0
        self.ops = 0
        self.faults = faults
        self.retry = retry

    def serve(
        self, disk_page: int, npages: int, is_read: bool, earliest: float
    ) -> ServiceWindow:
        """Queue one access; returns its service window (typed outcome)."""
        start = max(earliest, self.busy_until)
        service = self.hdd.service_time(disk_page, npages, is_read)
        fault, retries, penalty = _faulted_service(
            self.faults, self.retry, is_read, npages
        )
        finish = start + service + penalty
        self.busy_until = finish
        self.ops += 1
        return ServiceWindow(start=start, finish=finish, fault=fault,
                             retries=retries, fault_latency=penalty)

    @property
    def utilisation_time(self) -> float:
        return self.hdd.busy_time


class SSDServer:
    """The cache device: channel-parallel page reads/programs, FCFS.

    Commands are admitted device-FCFS (one outstanding command; the next
    starts when the previous finishes); *within* a command the pages
    fan out over ``channels`` ways.  Page-to-channel assignment is
    deterministic: least-busy channel first, equal ``busy_until`` ties
    broken by the **lowest channel index** — never by dict/hash order —
    so fault draws and timestamps are stable across runs and workers.
    """

    def __init__(
        self,
        latency: SSDLatency | None = None,
        channels: int = 8,
        faults: DeviceFaultStream | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        if channels < 1:
            raise ConfigError("channels must be >= 1")
        self.latency = latency or SSDLatency()
        self.channels = channels
        self.busy_until = 0.0
        self.busy_time = 0.0
        self.reads = 0
        self.writes = 0
        self.faults = faults
        self.retry = retry
        #: Per-channel completion clocks (a list, indexed by channel —
        #: the index *is* the tie-break key).
        self.channel_busy = [0.0] * channels
        #: Channel each page of the most recent command landed on.
        self.last_assignment: list[int] = []

    def _batch_time(self, npages: int, per_page: float) -> float:
        rounds = -(-npages // self.channels)
        return self.latency.command_overhead + rounds * per_page

    def _assign_channels(self, npages: int) -> list[int]:
        """Deterministic page->channel placement for one command.

        Channels are ranked by ``(busy_until, index)`` and pages dealt
        round-robin over that ranking, so equally-idle channels fill
        from index 0 upward.
        """
        order = sorted(range(self.channels),
                       key=lambda c: (self.channel_busy[c], c))
        assert all(
            self.channel_busy[a] < self.channel_busy[b] or a < b
            for a, b in zip(order, order[1:])
        ), "equal-busy channel ties must break by lowest index"
        return [order[i % self.channels] for i in range(npages)]

    def _serve(self, npages: int, per_page: float, is_read: bool,
               earliest: float) -> ServiceWindow:
        if npages < 1:
            raise ConfigError("npages must be >= 1")
        start = max(earliest, self.busy_until)
        fault, retries, penalty = _faulted_service(
            self.faults, self.retry, is_read, npages
        )
        finish = start + self._batch_time(npages, per_page) + penalty
        assignment = self._assign_channels(npages)
        for channel in assignment:
            self.channel_busy[channel] = max(
                self.channel_busy[channel],
                start + self.latency.command_overhead,
            ) + per_page
        self.last_assignment = assignment
        self.busy_until = finish
        self.busy_time += finish - start
        if is_read:
            self.reads += npages
        else:
            self.writes += npages
        return ServiceWindow(start=start, finish=finish, fault=fault,
                             retries=retries, fault_latency=penalty)

    def serve_read(self, npages: int, earliest: float) -> ServiceWindow:
        return self._serve(npages, self.latency.page_read, True, earliest)

    def serve_write(self, npages: int, earliest: float) -> ServiceWindow:
        return self._serve(npages, self.latency.page_program, False, earliest)
