"""FCFS device servers for the timing simulator.

Each member disk and the SSD cache are modelled as first-come
first-served servers with their substrate's service-time models
(:class:`repro.disk.HDD`, :class:`repro.flash.SSDLatency`).  The
simulators feed operations in global arrival order, so a simple
``busy_until`` clock per server implements FCFS queueing exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..disk.hdd import HDD, HDDParams
from ..errors import ConfigError
from ..flash.device import SSDLatency


@dataclass
class ServiceWindow:
    """When an operation started and finished on a server."""

    start: float
    finish: float


class DiskServer:
    """One member disk: FCFS queue over the mechanical HDD model."""

    def __init__(self, params: HDDParams | None = None, page_size: int = 4096) -> None:
        self.hdd = HDD(params, page_size=page_size)
        self.busy_until = 0.0
        self.ops = 0

    def serve(
        self, disk_page: int, npages: int, is_read: bool, earliest: float
    ) -> ServiceWindow:
        """Queue one access; returns its service window."""
        start = max(earliest, self.busy_until)
        service = self.hdd.service_time(disk_page, npages, is_read)
        finish = start + service
        self.busy_until = finish
        self.ops += 1
        return ServiceWindow(start=start, finish=finish)

    @property
    def utilisation_time(self) -> float:
        return self.hdd.busy_time


class SSDServer:
    """The cache device: channel-parallel page reads/programs, FCFS."""

    def __init__(
        self,
        latency: SSDLatency | None = None,
        channels: int = 8,
    ) -> None:
        if channels < 1:
            raise ConfigError("channels must be >= 1")
        self.latency = latency or SSDLatency()
        self.channels = channels
        self.busy_until = 0.0
        self.busy_time = 0.0
        self.reads = 0
        self.writes = 0

    def _batch_time(self, npages: int, per_page: float) -> float:
        rounds = -(-npages // self.channels)
        return self.latency.command_overhead + rounds * per_page

    def serve_read(self, npages: int, earliest: float) -> ServiceWindow:
        if npages < 1:
            raise ConfigError("npages must be >= 1")
        start = max(earliest, self.busy_until)
        finish = start + self._batch_time(npages, self.latency.page_read)
        self.busy_until = finish
        self.busy_time += finish - start
        self.reads += npages
        return ServiceWindow(start=start, finish=finish)

    def serve_write(self, npages: int, earliest: float) -> ServiceWindow:
        if npages < 1:
            raise ConfigError("npages must be >= 1")
        start = max(earliest, self.busy_until)
        finish = start + self._batch_time(npages, self.latency.page_program)
        self.busy_until = finish
        self.busy_time += finish - start
        self.writes += npages
        return ServiceWindow(start=start, finish=finish)
