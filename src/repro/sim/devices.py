"""Back-compat aliases for the engine's device resources.

The FCFS device servers moved into the engine package
(:mod:`repro.engine.resources`) when the timing stack was re-layered on
the discrete-event engine; ``DiskServer`` / ``SSDServer`` are the
historical names for :class:`~repro.engine.resources.DiskResource` and
:class:`~repro.engine.resources.SSDResource`.  Numerics, constructor
signatures, and the typed :class:`~repro.engine.resources.ServiceWindow`
outcome are unchanged — existing callers and tests keep working.
"""

from __future__ import annotations

from ..engine.resources import DiskResource, ServiceWindow, SSDResource

DiskServer = DiskResource
SSDServer = SSDResource

__all__ = ["DiskServer", "SSDServer", "ServiceWindow"]
