"""Open-loop trace replay (the RAIDmeter experiment, Section IV-B2).

Requests are issued at their trace timestamps regardless of completion
(an open system): response time includes any queueing that builds up
when the device pool falls behind the arrival process.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..traces.trace import Trace
from .system import TimedSystem, TimingReport


def replay_trace(
    system: TimedSystem,
    trace: Trace,
    max_requests: int | None = None,
    max_seconds: float | None = None,
    time_scale: float = 1.0,
) -> TimingReport:
    """Replay ``trace`` through ``system`` by arrival time.

    ``time_scale`` stretches (>1) or compresses (<1) inter-arrival gaps,
    which is how the paper-style "replay for 30 minutes" is shrunk to
    laptop scale without changing the access pattern.  ``max_seconds``
    cuts the replay off after that much simulated time.
    """
    if time_scale <= 0:
        raise ConfigError("time_scale must be positive")
    issued = 0
    last_time = 0.0
    last_done = 0.0
    for req in trace:
        t = req.time * time_scale
        if max_seconds is not None and t > max_seconds:
            break
        if max_requests is not None and issued >= max_requests:
            break
        done = system.submit(req.lba, req.npages, req.is_read, t)
        last_done = max(last_done, done)
        issued += 1
        last_time = t
    system.policy.finish()
    # The run lasts until the later of the last arrival and the last
    # completion: when the device pool falls behind the open-loop arrival
    # process, requests are still draining after the final arrival, and
    # computing IOPS over arrivals alone would overstate throughput.
    return system.report(workload=trace.name,
                         duration=max(last_time, last_done, 1e-9))
