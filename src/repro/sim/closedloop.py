"""Closed-loop benchmark driver (the FIO experiment, Section IV-B3).

``nthreads`` workers each keep exactly one request outstanding: a new
request is generated the moment the previous one completes, bounding
the queue to the thread count.  Block popularity is Zipfian
(alpha = 1.0001 in the paper) over a working set larger than the cache,
with a configurable read rate (0-100 %).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..traces.synthetic import _zipf_cdf
from .system import TimedSystem, TimingReport


@dataclass(frozen=True)
class FioConfig:
    """FIO-like synthetic workload parameters (paper defaults)."""

    total_requests: int = 20_000
    working_set_pages: int = 400_000  # 1.6 GB of 4 KiB pages
    zipf_alpha: float = 1.0001
    read_rate: float = 0.0
    nthreads: int = 16
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_rate <= 1.0:
            raise ConfigError("read_rate must be in [0, 1]")
        if self.nthreads < 1 or self.total_requests < 1:
            raise ConfigError("nthreads and total_requests must be >= 1")
        if self.working_set_pages < 1:
            raise ConfigError("working_set_pages must be >= 1")


def run_closed_loop(system: TimedSystem, config: FioConfig) -> TimingReport:
    """Drive ``system`` with ``nthreads`` back-to-back request streams."""
    rng = np.random.default_rng(config.seed)
    cdf = _zipf_cdf(config.working_set_pages, config.zipf_alpha)
    page_of_rank = rng.permutation(config.working_set_pages)

    # Pre-draw the request stream (rank -> scattered page, read/write mix).
    ranks = np.searchsorted(cdf, rng.random(config.total_requests), side="left")
    pages = page_of_rank[ranks]
    is_read = rng.random(config.total_requests) < config.read_rate

    # Each thread issues its next request when its previous one completes.
    # This driver is a workload *source* over the engine: it owns the
    # thread-availability heap (ties break by thread id, part of the
    # pinned numerics) and submits in global arrival order; the engine
    # owns all device timing.
    threads = [(0.0, tid) for tid in range(config.nthreads)]
    heapq.heapify(threads)
    end_time = 0.0
    for i in range(config.total_requests):
        available, tid = heapq.heappop(threads)
        completion = system.submit(int(pages[i]), 1, bool(is_read[i]), available)
        end_time = max(end_time, completion)
        heapq.heappush(threads, (completion, tid))
    system.policy.finish()
    return system.report(
        workload=f"fio-zipf-r{int(config.read_rate * 100)}",
        duration=max(end_time, 1e-9),
    )
