"""Discrete-event timing simulation (the 'prototype' measurements)."""

from .closedloop import FioConfig, run_closed_loop
from .devices import DiskServer, ServiceWindow, SSDServer
from .openloop import replay_trace
from .system import TimedSystem, TimingReport

__all__ = [
    "DiskServer",
    "SSDServer",
    "ServiceWindow",
    "TimedSystem",
    "TimingReport",
    "replay_trace",
    "FioConfig",
    "run_closed_loop",
]
