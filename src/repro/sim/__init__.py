"""Discrete-event timing simulation (the 'prototype' measurements)."""

from .devices import DiskServer, SSDServer, ServiceWindow
from .system import TimedSystem, TimingReport
from .openloop import replay_trace
from .closedloop import FioConfig, run_closed_loop

__all__ = [
    "DiskServer",
    "SSDServer",
    "ServiceWindow",
    "TimedSystem",
    "TimingReport",
    "replay_trace",
    "FioConfig",
    "run_closed_loop",
]
