"""NVRAM staging buffer for freshly generated deltas.

Write hits produce deltas that are first accumulated in a small
battery-backed buffer managed FIFO (Section III-B).  Write coalescing
applies: only the newest delta per DAZ page is kept (Section III-C).
When the buffer cannot take the next delta, its contents are compacted
into a single DEZ page and committed to flash.

Crash durability: the buffer is NVRAM, so its contents survive power
loss and are overlaid onto the replayed metadata log during recovery
(Section III-E1).  A DEZ commit therefore must not *drain* the buffer
before the packed page is durable on flash — deltas are first moved to
a ``flushing`` region (still NVRAM, still part of :meth:`snapshot`) and
released one by one (:meth:`flush_done`) only after the corresponding
*old* mapping entry has reached the NVRAM metadata buffer.  The crash
harness (:mod:`repro.faults.crash`) enumerates a crash point before
every mutation of this buffer.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..delta.packer import DELTA_HEADER_BYTES
from ..errors import ConfigError


@dataclass(frozen=True, slots=True)
class StagedDelta:
    """One delta waiting in NVRAM."""

    lba: int
    size: int
    payload: bytes | None = None


class StagingBuffer:
    """FIFO delta buffer with per-page coalescing and a flush region."""

    #: Crash-point shim (duck-typed, installed by ``repro.faults.crash``).
    shim = None

    def __init__(self, capacity_bytes: int = 4096) -> None:
        if capacity_bytes < DELTA_HEADER_BYTES + 1:
            raise ConfigError("staging buffer too small for any delta")
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[int, StagedDelta] = OrderedDict()
        #: Deltas handed to an in-progress DEZ commit but not yet durable
        #: anywhere else; still NVRAM-resident, still crash-surviving.
        self._flushing: OrderedDict[int, StagedDelta] = OrderedDict()
        self._used = 0
        self.coalesced = 0

    def __len__(self) -> int:
        return len(self._entries) + len(self._flushing)

    def __contains__(self, lba: int) -> bool:
        return lba in self._entries or lba in self._flushing

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def flushing_count(self) -> int:
        return len(self._flushing)

    def get(self, lba: int) -> StagedDelta | None:
        entry = self._entries.get(lba)
        if entry is not None:
            return entry
        return self._flushing.get(lba)

    def _footprint(self, size: int) -> int:
        return size + DELTA_HEADER_BYTES

    def fits(self, size: int) -> bool:
        """Would a new delta of ``size`` bytes fit right now?"""
        return self._used + self._footprint(size) <= self.capacity_bytes

    def would_fit_after_coalesce(self, lba: int, size: int) -> bool:
        used = self._used
        if lba in self._entries:
            used -= self._footprint(self._entries[lba].size)
        return used + self._footprint(size) <= self.capacity_bytes

    def put(self, lba: int, size: int, payload: bytes | None = None) -> None:
        """Insert/overwrite the delta for ``lba``.

        Coalescing is the atomic supersede: the previous delta for the
        page stays crash-recoverable until the very NVRAM write that
        installs its replacement.  Raises :class:`ConfigError` if it
        cannot fit — callers must commit a DEZ page first.
        """
        if size < 1:
            raise ConfigError("delta size must be >= 1 byte")
        if not self.would_fit_after_coalesce(lba, size):
            raise ConfigError("staging buffer full; drain before put")
        if self.shim is not None:
            self.shim.point("staging_put", lba=lba)
        old = self._entries.pop(lba, None)
        if old is not None:
            self._used -= self._footprint(old.size)
            self.coalesced += 1
        self._entries[lba] = StagedDelta(lba=lba, size=size, payload=payload)
        self._used += self._footprint(size)

    def remove(self, lba: int) -> bool:
        """Drop the delta for ``lba`` (invalidation); True if present."""
        old = self._entries.pop(lba, None)
        if old is not None:
            self._used -= self._footprint(old.size)
            return True
        return self._flushing.pop(lba, None) is not None

    def begin_flush(self, exclude: int | None = None) -> list[StagedDelta]:
        """Move the staged deltas into the flushing region.

        Returns them in FIFO order.  ``exclude`` keeps one page's delta
        staged (the write-hit path excludes the delta it is about to
        supersede, so it is never wastefully packed).  The move is pure
        NVRAM bookkeeping — nothing leaves the crash-surviving surface.
        """
        if self.shim is not None:
            self.shim.point("staging_flush", exclude=exclude)
        out: list[StagedDelta] = []
        for lba in list(self._entries):
            if lba == exclude:
                continue
            entry = self._entries.pop(lba)
            self._used -= self._footprint(entry.size)
            self._flushing[lba] = entry
            out.append(entry)
        return out

    def flush_done(self, lba: int) -> None:
        """Release one flushing delta: it is durable elsewhere now."""
        self._flushing.pop(lba, None)

    def drain(self) -> list[StagedDelta]:
        """Remove and return all staged deltas in FIFO order.

        Legacy destructive path (the byte-accurate prototype commits
        the packed page in one step); flushing entries come first.
        """
        out = list(self._flushing.values()) + list(self._entries.values())
        self._flushing.clear()
        self._entries.clear()
        self._used = 0
        return out

    def snapshot(self) -> list[StagedDelta]:
        """Non-destructive copy (what survives a power failure).

        Flushing entries first: a staged entry for the same page is
        newer, so dict-overlay order in recovery keeps the newest.
        """
        return list(self._flushing.values()) + list(self._entries.values())
