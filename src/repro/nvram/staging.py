"""NVRAM staging buffer for freshly generated deltas.

Write hits produce deltas that are first accumulated in a small
battery-backed buffer managed FIFO (Section III-B).  Write coalescing
applies: only the newest delta per DAZ page is kept (Section III-C).
When the buffer cannot take the next delta, its contents are compacted
into a single DEZ page and committed to flash.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..delta.packer import DELTA_HEADER_BYTES
from ..errors import ConfigError


@dataclass(frozen=True, slots=True)
class StagedDelta:
    """One delta waiting in NVRAM."""

    lba: int
    size: int
    payload: bytes | None = None


class StagingBuffer:
    """FIFO delta buffer with per-page coalescing."""

    def __init__(self, capacity_bytes: int = 4096) -> None:
        if capacity_bytes < DELTA_HEADER_BYTES + 1:
            raise ConfigError("staging buffer too small for any delta")
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[int, StagedDelta] = OrderedDict()
        self._used = 0
        self.coalesced = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, lba: int) -> bool:
        return lba in self._entries

    @property
    def used_bytes(self) -> int:
        return self._used

    def get(self, lba: int) -> StagedDelta | None:
        return self._entries.get(lba)

    def _footprint(self, size: int) -> int:
        return size + DELTA_HEADER_BYTES

    def fits(self, size: int) -> bool:
        """Would a new delta of ``size`` bytes fit right now?"""
        return self._used + self._footprint(size) <= self.capacity_bytes

    def would_fit_after_coalesce(self, lba: int, size: int) -> bool:
        used = self._used
        if lba in self._entries:
            used -= self._footprint(self._entries[lba].size)
        return used + self._footprint(size) <= self.capacity_bytes

    def put(self, lba: int, size: int, payload: bytes | None = None) -> None:
        """Insert/overwrite the delta for ``lba``.

        Raises :class:`ConfigError` if it cannot fit — callers must
        drain (:meth:`drain`) first; the cache layer does this by
        committing a DEZ page.
        """
        if size < 1:
            raise ConfigError("delta size must be >= 1 byte")
        if not self.would_fit_after_coalesce(lba, size):
            raise ConfigError("staging buffer full; drain before put")
        old = self._entries.pop(lba, None)
        if old is not None:
            self._used -= self._footprint(old.size)
            self.coalesced += 1
        self._entries[lba] = StagedDelta(lba=lba, size=size, payload=payload)
        self._used += self._footprint(size)

    def remove(self, lba: int) -> bool:
        """Drop the delta for ``lba`` (invalidation); True if present."""
        old = self._entries.pop(lba, None)
        if old is None:
            return False
        self._used -= self._footprint(old.size)
        return True

    def drain(self) -> list[StagedDelta]:
        """Remove and return all staged deltas in FIFO order."""
        out = list(self._entries.values())
        self._entries.clear()
        self._used = 0
        return out

    def snapshot(self) -> list[StagedDelta]:
        """Non-destructive copy (what survives a power failure)."""
        return list(self._entries.values())
