"""NVRAM metadata buffer: the staging area for mapping entries.

New/changed mapping entries accumulate here and are committed to the
on-flash metadata log one full page at a time (Section III-B).  Write
coalescing applies: a newer entry for the same DAZ page overwrites the
buffered one (Section III-C), so bursts of updates to a hot page cost
one log slot.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum

from ..errors import ConfigError


class PageState(Enum):
    """States a cache page can be in (Section III-B)."""

    FREE = "free"
    CLEAN = "clean"
    OLD = "old"
    DELTA = "delta"
    DIRTY = "dirty"  # write-back baseline only; not used by KDD

    # Members are singletons and equality is identity, so the identity
    # hash is exact; Enum.__hash__ is a Python-level call and state
    # lookups sit on the per-access hot path.  No code iterates a *set*
    # of states (dicts keep insertion order), so run-to-run determinism
    # is unaffected.
    __hash__ = object.__hash__


@dataclass(frozen=True, slots=True)
class MappingEntry:
    """One persistent mapping entry (the fields of Figure 3).

    ``lba_raid`` keys the entry; ``lba_daz`` is the SSD page holding the
    data; for OLD pages the ``(lba_dez, dez_off, dez_len)`` tuple points
    at the associated delta (-1 while it still sits in NVRAM).
    """

    lba_raid: int
    state: PageState
    lba_daz: int = -1
    lba_dez: int = -1
    dez_off: int = -1
    dez_len: int = -1

    #: On-flash footprint: state (1) + two LBAs (4+4) + (off,len) (3).
    FLASH_BYTES = 12


class MetadataBuffer:
    """Mapping-entry accumulator sized to one flash page."""

    def __init__(self, page_size: int = 4096,
                 entry_bytes: int = MappingEntry.FLASH_BYTES) -> None:
        if entry_bytes < 1 or page_size < entry_bytes:
            raise ConfigError("page must hold at least one entry")
        self.capacity_entries = page_size // entry_bytes
        self._entries: OrderedDict[int, MappingEntry] = OrderedDict()
        self.coalesced = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, lba_raid: int) -> bool:
        return lba_raid in self._entries

    def get(self, lba_raid: int) -> MappingEntry | None:
        return self._entries.get(lba_raid)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity_entries

    def put(self, entry: MappingEntry) -> None:
        """Buffer an entry, coalescing with any pending one for the page."""
        if entry.lba_raid in self._entries:
            self.coalesced += 1
            del self._entries[entry.lba_raid]
        elif self.full:
            raise ConfigError("metadata buffer full; commit a page first")
        self._entries[entry.lba_raid] = entry

    def drain(self) -> list[MappingEntry]:
        """Remove and return all buffered entries (one page's worth)."""
        out = list(self._entries.values())
        self._entries.clear()
        return out

    def snapshot(self) -> list[MappingEntry]:
        """Non-destructive copy (what survives a power failure)."""
        return list(self._entries.values())
