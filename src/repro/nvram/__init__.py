"""Battery-backed NVRAM buffers (staging buffer + metadata buffer)."""

from .staging import StagedDelta, StagingBuffer
from .metabuffer import MappingEntry, MetadataBuffer, PageState

__all__ = [
    "StagedDelta",
    "StagingBuffer",
    "MappingEntry",
    "MetadataBuffer",
    "PageState",
]
