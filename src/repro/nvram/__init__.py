"""Battery-backed NVRAM buffers (staging buffer + metadata buffer)."""

from .metabuffer import MappingEntry, MetadataBuffer, PageState
from .staging import StagedDelta, StagingBuffer

__all__ = [
    "StagedDelta",
    "StagingBuffer",
    "MappingEntry",
    "MetadataBuffer",
    "PageState",
]
