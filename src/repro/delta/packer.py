"""Packing deltas into DEZ pages.

Multiple small deltas are compacted into one flash page before being
committed to the Delta Zone (Section III-B): each packed page has a
small header per delta (logical address + offset + length) followed by
the delta payloads back to back.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError

#: Per-delta header: lba_raid (4) + off (2) + len (2), as in Figure 3.
DELTA_HEADER_BYTES = 8


@dataclass(frozen=True, slots=True)
class PackedDelta:
    """One delta's placement inside a packed DEZ page."""

    lba: int
    offset: int
    length: int
    payload: bytes | None = None


@dataclass
class PackedPage:
    """A DEZ page holding several deltas plus a live-entry count.

    ``valid_count`` is the number of deltas not yet invalidated; the
    page can only be reclaimed once it reaches zero (Section III-C).
    """

    deltas: list[PackedDelta] = field(default_factory=list)
    valid: set[int] = field(default_factory=set)

    @property
    def valid_count(self) -> int:
        return len(self.valid)

    def find(self, lba: int) -> PackedDelta:
        for d in self.deltas:
            if d.lba == lba and lba in self.valid:
                return d
        raise KeyError(lba)

    def invalidate(self, lba: int) -> int:
        """Invalidate the delta for ``lba``; returns remaining valid count."""
        self.valid.discard(lba)
        return self.valid_count


def pack_deltas(
    items: list[tuple[int, int, bytes | None]], page_size: int
) -> PackedPage:
    """Pack ``(lba, size, payload)`` deltas into one page.

    Raises :class:`ConfigError` if they cannot fit; callers size the
    staging buffer to the page size so a full buffer always fits.
    """
    page = PackedPage()
    cursor = 0
    for lba, size, payload in items:
        need = size + DELTA_HEADER_BYTES
        if cursor + need > page_size and page.deltas:
            raise ConfigError(
                f"deltas overflow one {page_size}-byte page at lba {lba}"
            )
        # An incompressible delta may exceed page_size - header alone:
        # store it truncated to the page (it degenerates to a raw copy).
        length = min(size, page_size - DELTA_HEADER_BYTES - cursor)
        if length <= 0:
            raise ConfigError("no room left in DEZ page")
        page.deltas.append(
            PackedDelta(lba=lba, offset=cursor + DELTA_HEADER_BYTES, length=length,
                        payload=payload)
        )
        page.valid.add(lba)
        cursor += DELTA_HEADER_BYTES + length
    return page
