"""Delta engine: real XOR+LZ codec, Gaussian ratio model, DEZ packing."""

from .codec import DeltaCodec, mutate_page
from .model import LOCALITY_LEVELS, GaussianDeltaModel
from .packer import DELTA_HEADER_BYTES, PackedDelta, PackedPage, pack_deltas

__all__ = [
    "DeltaCodec",
    "mutate_page",
    "LOCALITY_LEVELS",
    "GaussianDeltaModel",
    "DELTA_HEADER_BYTES",
    "PackedDelta",
    "PackedPage",
    "pack_deltas",
]
