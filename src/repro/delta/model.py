"""Statistical model of delta compression ratios.

The content locality of a workload is application specific and the raw
traces carry no data payloads, so — exactly like the paper's own
simulator (Section IV-A2) — delta compression ratios are drawn from a
Gaussian distribution whose mean characterises the locality level:

* mean 0.50 → low content locality   (KDD-50%)
* mean 0.25 → medium content locality (KDD-25%)
* mean 0.12 → high content locality  (KDD-12%)
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError

#: The three locality levels evaluated in the paper.
LOCALITY_LEVELS = {"low": 0.50, "medium": 0.25, "high": 0.12}


class GaussianDeltaModel:
    """Draw per-write delta sizes from a clipped Gaussian."""

    def __init__(
        self,
        mean: float = 0.25,
        sigma: float | None = None,
        page_size: int = 4096,
        seed: int = 0,
        min_ratio: float = 0.02,
        max_ratio: float = 1.0,
    ) -> None:
        if not 0.0 < mean <= 1.0:
            raise ConfigError("mean compression ratio must be in (0, 1]")
        if sigma is None:
            sigma = mean / 4.0
        if sigma < 0:
            raise ConfigError("sigma must be >= 0")
        if not 0.0 <= min_ratio <= max_ratio <= 1.0:
            raise ConfigError("need 0 <= min_ratio <= max_ratio <= 1")
        self.mean = mean
        self.sigma = sigma
        self.page_size = page_size
        self.min_ratio = min_ratio
        self.max_ratio = max_ratio
        self._rng = np.random.default_rng(seed)
        # Draws are buffered in blocks: Generator.normal(m, s, size=N)
        # consumes the bit stream exactly like N scalar calls, so the
        # sequence of ratios is unchanged — only the per-call overhead is
        # amortized (the KDD write hit path samples once per hit).
        self._buf = np.empty(0)
        self._buf_pos = 0

    #: Draws buffered per RNG call.
    BLOCK = 256

    @classmethod
    def for_locality(cls, level: str, **kwargs) -> "GaussianDeltaModel":
        """Model for a named locality level ('low' / 'medium' / 'high')."""
        try:
            mean = LOCALITY_LEVELS[level]
        except KeyError:
            raise ConfigError(
                f"unknown locality {level!r}; choose from {sorted(LOCALITY_LEVELS)}"
            ) from None
        return cls(mean=mean, **kwargs)

    def sample_ratio(self) -> float:
        """One compression ratio draw, clipped to the configured range."""
        if self._buf_pos >= len(self._buf):
            self._buf = self._rng.normal(self.mean, self.sigma, size=self.BLOCK)
            self._buf_pos = 0
        r = self._buf[self._buf_pos]
        self._buf_pos += 1
        return float(min(self.max_ratio, max(self.min_ratio, r)))

    def sample_size(self) -> int:
        """One delta size in bytes (at least 1)."""
        return max(1, int(round(self.sample_ratio() * self.page_size)))
