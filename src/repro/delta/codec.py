"""Real delta compression codec: XOR + DEFLATE.

KDD stores the *compressed XOR* of the old and new version of a page
(Section III-A).  The paper's prototype uses lzo for speed; we use
zlib (stdlib) — also a byte-level LZ codec — at a low level for the
same latency class.  Content locality shows up as long zero runs in
the XOR image, which LZ compresses extremely well.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..errors import ConfigError


class DeltaCodec:
    """Encode/decode page deltas as compressed XOR images."""

    def __init__(self, level: int = 1) -> None:
        if not 1 <= level <= 9:
            raise ConfigError("zlib level must be in 1..9")
        self.level = level

    @staticmethod
    def _xor(a: bytes, b: bytes) -> bytes:
        if len(a) != len(b):
            raise ConfigError(
                f"delta requires equal-length pages ({len(a)} vs {len(b)})"
            )
        av = np.frombuffer(a, dtype=np.uint8)
        bv = np.frombuffer(b, dtype=np.uint8)
        return (av ^ bv).tobytes()

    def encode(self, old: bytes, new: bytes) -> bytes:
        """Compressed XOR delta turning ``old`` into ``new``."""
        return zlib.compress(self._xor(old, new), self.level)

    def decode(self, old: bytes, delta: bytes) -> bytes:
        """Reapply a delta: returns the new version of the page."""
        xor_image = zlib.decompress(delta)
        return self._xor(old, xor_image)

    def ratio(self, old: bytes, new: bytes) -> float:
        """Compression ratio (delta size / page size); lower is better."""
        if not old:
            raise ConfigError("empty page")
        return len(self.encode(old, new)) / len(old)


def mutate_page(
    page: bytes, fraction: float, rng: np.random.Generator
) -> bytes:
    """Flip a contiguous ``fraction`` of a page's bytes (test helper).

    Models the content-locality observation that only 5-20 % of the bits
    of a block change per write (Section II-C): the smaller ``fraction``,
    the smaller the compressed delta.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ConfigError("fraction must be in [0, 1]")
    buf = bytearray(page)
    n = int(len(buf) * fraction)
    if n == 0:
        return bytes(buf)
    start = int(rng.integers(0, max(1, len(buf) - n)))
    patch = rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()
    buf[start : start + n] = patch
    return bytes(buf)
