"""Fault-sweep experiment driver and the degraded-read demo scenario.

:func:`run_faults_cell` is the executor behind the sweep engine's
``faults`` cell kind: one (policy, workload, fault-rate, retry-policy)
point of the grid, run through :class:`~repro.faults.timed.FaultyTimedSystem`
and summarised as one result row.  Determinism inherits from the sweep
discipline — the fault schedule is seeded with the cell's effective
seed, so rows are byte-identical for any ``--jobs``.

:func:`demo_event_log` scripts the paper's vulnerability-window
narrative as a deterministic event log (the ``kdd-repro faults
--events-out`` artifact):

1. a latent sector error on a **fresh** stripe is reconstructed from
   the surviving peers + parity on the next read;
2. the same error on a **stale-parity** stripe is *not* reconstructible
   (``DegradedError``) until the cleaner repairs the parity — after
   which the read succeeds with the correct payload.
"""

from __future__ import annotations

from typing import Any

from ..errors import DegradedError
from ..raid.array import RAIDArray
from ..raid.layout import RaidLevel
from .retry import RETRY_POLICIES, retry_policy
from .schedule import FaultConfig, FaultSchedule

#: ``SweepCell.params`` keys consumed by the faults executor
#: (everything else feeds :class:`~repro.cache.base.CacheConfig`).
FAULTS_KEYS = (
    "ure_rate",
    "timeout_rate",
    "timeout_s",
    "retry",
    "repair_stale_on_demand",
    "device_failures",
    "max_requests",
    "max_seconds",
    "time_scale",
)


def run_faults_cell(cell: Any, trace: Any) -> dict[str, Any]:
    """Execute one fault-sweep cell; returns its (deterministic) row."""
    from ..cache.base import CacheConfig
    from ..sim.openloop import replay_trace
    from ..harness.runner import build_policy, make_raid_for_trace
    from .timed import FaultyTimedSystem

    params = dict(cell.params)
    fault_kwargs = {k: params.pop(k) for k in FAULTS_KEYS if k in params}
    replay_kwargs = {
        k: fault_kwargs.pop(k)
        for k in ("max_requests", "max_seconds", "time_scale")
        if k in fault_kwargs
    }
    retry_name = fault_kwargs.pop("retry", "backoff")
    repair_stale = fault_kwargs.pop("repair_stale_on_demand", True)
    device_failures = tuple(
        tuple(f) for f in fault_kwargs.pop("device_failures", ())
    )
    seed = cell.effective_seed()
    faults = FaultConfig(seed=seed, device_failures=device_failures,
                         **fault_kwargs)

    raid = make_raid_for_trace(trace)
    config = CacheConfig(cache_pages=cell.cache_pages, seed=seed, **params)
    system = FaultyTimedSystem(
        build_policy(cell.policy, config, raid),
        faults,
        retry=retry_policy(retry_name),
        repair_stale_on_demand=repair_stale,
    )
    rep = replay_trace(system, trace, **replay_kwargs)
    row: dict[str, Any] = {
        "workload": trace.name,
        "policy": cell.label or cell.policy,
        "retry": retry_name,
        "ure_rate": faults.ure_rate,
        "timeout_rate": faults.timeout_rate,
    }
    row.update(rep.row())
    row.update(system.fault_row())
    return row


def faults_cell(
    policy: str,
    trace: tuple,
    cache_pages: int,
    ure_rate: float = 0.0,
    timeout_rate: float = 0.0,
    retry: str = "backoff",
    seed: int | None = None,
    label: str | None = None,
    **params: Any,
) -> Any:
    """Convenience constructor for a ``faults`` sweep cell.

    ``seed=None`` (the default) opts into hash-derived per-cell seeding,
    the sweep engine's determinism discipline.
    """
    if retry not in RETRY_POLICIES:
        retry_policy(retry)  # raises the canonical ConfigError
    from ..harness.sweep import SweepCell

    return SweepCell(
        kind="faults",
        policy=policy,
        trace=trace,
        cache_pages=cache_pages,
        seed=seed,
        label=label,
        params=tuple(
            {
                "ure_rate": ure_rate,
                "timeout_rate": timeout_rate,
                "retry": retry,
                **params,
            }.items()
        ),
    )


def demo_event_log() -> list[dict[str, Any]]:
    """The vulnerability-window narrative as a deterministic event log.

    Scripted against a payload-carrying RAID-5 array (no RNG at all), so
    the emitted rows are identical on every run — the CI artifact diff
    is meaningful.
    """
    schedule = FaultSchedule(FaultConfig())
    raid = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=2,
                     pages_per_disk=16, store_data=True, page_size=64)
    for lpage in range(raid.capacity_pages):
        raid.write(lpage, data=[bytes([lpage % 251]) * 64])

    # -- act 1: URE on a fresh stripe is survivable --------------------------
    fresh = raid.layout.locate(0)
    raid.mark_media_error(fresh.disk, fresh.disk_page)
    schedule.record(1.0, f"disk{fresh.disk}", "ure", fresh.disk_page,
                    detail="latent sector error on a fresh stripe")
    ops = raid.read(0)  # reconstructs from peers + parity
    payload = bytes(raid.read_data(0))
    assert payload == bytes([0]) * 64, "reconstruction returned wrong data"
    schedule.record(1.1, f"disk{fresh.disk}", "reconstruction",
                    fresh.disk_page,
                    detail=f"degraded read served from {len(ops)} peer reads")
    raid.repair_page(fresh.disk, fresh.disk_page)
    schedule.record(1.2, f"disk{fresh.disk}", "media_repair",
                    fresh.disk_page, detail="page rewritten from reconstruction")

    # -- act 2: the same fault inside the vulnerability window ---------------
    stale_lpage = raid.layout.stripe_data_pages  # first page of stripe 1
    raid.write_without_parity_update(stale_lpage, data=b"\xab" * 64)
    schedule.record(2.0, "array", "stale_parity",
                    detail=f"stripe 1 parity delayed (page {stale_lpage} "
                           "written without parity update)")
    victim = raid.layout.locate(stale_lpage + 1)  # sibling in stripe 1
    raid.mark_media_error(victim.disk, victim.disk_page)
    schedule.record(2.1, f"disk{victim.disk}", "ure", victim.disk_page,
                    detail="latent sector error inside the vulnerability window")
    try:
        raid.read(stale_lpage + 1)
        raise AssertionError("stale-parity degraded read must fail")
    except DegradedError as exc:
        schedule.record(2.2, f"disk{victim.disk}", "degraded_error",
                        victim.disk_page, detail=str(exc)[:120])

    # -- act 3: the cleaner repairs parity; the window closes ----------------
    raid.parity_update(1, cached_pages=list(raid.layout.stripe_pages(1)))
    schedule.record(3.0, "array", "parity_repair",
                    detail="cleaner repaired stripe 1 parity")
    ops = raid.read(stale_lpage + 1)  # now reconstructible
    expected = bytes([(stale_lpage + 1) % 251]) * 64
    assert bytes(raid.read_data(stale_lpage + 1)) == expected
    schedule.record(3.1, f"disk{victim.disk}", "reconstruction",
                    victim.disk_page,
                    detail="degraded read served once parity was repaired")
    raid.repair_page(victim.disk, victim.disk_page)
    schedule.record(3.2, f"disk{victim.disk}", "media_repair",
                    victim.disk_page, detail="window closed; array consistent")
    assert not raid.media_errors and not raid.stale_stripes
    return schedule.event_rows()


def demo_op_trace(
    path: str,
    requests: int = 300,
    policy: str = "wt",
    seed: int = 11,
) -> dict[str, Any]:
    """Run one derandomized fault-injected replay with op-level
    instrumentation and write the per-op trace to ``path`` as JSONL.

    Everything is seeded, so the exported trace is byte-identical across
    runs — the CI op-trace artifact diffs meaningfully.  Returns the
    instrumentation summary (op/request counts, per-device queue-delay
    stats, queue-depth histograms, utilisation timeline) plus the fault
    counters.
    """
    from ..cache.base import CacheConfig
    from ..engine import InstrumentationHook
    from ..harness.runner import build_policy
    from ..sim.openloop import replay_trace
    from ..traces import uniform_workload
    from .timed import FaultyTimedSystem

    raid = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=4,
                     pages_per_disk=4096)
    system = FaultyTimedSystem(
        build_policy(policy,
                     CacheConfig(cache_pages=128, ways=16, group_pages=16),
                     raid),
        FaultConfig(seed=seed, ure_rate=0.01, timeout_rate=0.02),
        retry="backoff",
    )
    instrument = InstrumentationHook()
    system.add_hook(instrument)
    trace = uniform_workload(requests, 4096, read_ratio=0.6, seed=seed)
    rep = replay_trace(system, trace)
    nops = instrument.write_jsonl(path)
    summary = instrument.summary(duration=rep.duration)
    summary["ops_written"] = nops
    summary["mean_response_ms"] = rep.latency.mean_ms
    summary["faults"] = system.fault_row()
    return summary
