"""Deterministic fault injection for the storage stack (beyond III-E).

The paper's failure analysis (Section III-E) covers clean, whole-device
failures only: power loss, SSD-cache loss, HDD loss.  Real arrays also
see *partial* faults (latent sector errors — an unrecoverable read error
on one page) and *transient* faults (device timeouts), and those are
exactly where KDD's delayed-parity protocol matters: a stripe whose
parity is stale cannot reconstruct a lost page until the cleaner repairs
the parity.  This package makes that window executable:

* :class:`FaultSchedule` — seeded, per-device RNG streams (the same
  hash-derivation discipline as the sweep engine's per-cell seeds), so a
  fault sweep is byte-identical across ``--jobs`` counts;
* :class:`RetryPolicy` — bounded retries with deterministic exponential
  backoff, modelled as added latency, then escalation;
* :class:`FaultyTimedSystem` — the timing simulator with fault hooks on
  every device, degraded-mode reconstruction reads, and an event log;
* :class:`Scrubber` — background stripe verification and repair via the
  ``parity_update`` / rewrite interfaces;
* :func:`demo_event_log` — the scripted vulnerability-window narrative.

The sweep drivers (``kdd-repro faults``: fault rate x retry policy ->
degraded-mode response time) live in :mod:`repro.harness.faultsweep` —
the layering contract keeps simulation code from importing the harness.
"""

from __future__ import annotations

from typing import Any

from .retry import RETRY_POLICIES, RetryPolicy, retry_policy
from .schedule import (
    DeviceFaultStream,
    FaultConfig,
    FaultCounters,
    FaultEvent,
    FaultKind,
    FaultSchedule,
)

#: Names resolved lazily (PEP 562): these modules import the sim/raid
#: layers, which themselves import :mod:`repro.faults.schedule` for the
#: device fault hooks — importing them eagerly here would be circular.
_LAZY = {
    "FaultyTimedSystem": "timed",
    "StaleExposureHook": "timed",
    "rebuild_under_load": "timed",
    "Scrubber": "scrubber",
    "ScrubReport": "scrubber",
    "demo_event_log": "demo",
    "CRASH_POINT_KINDS": "crash",
    "CrashMatrixReport": "crash",
    "CrashPointShim": "crash",
    "attach_crash_shim": "crash",
    "run_crash_matrix": "crash",
}


def __getattr__(name: str) -> Any:
    if name in _LAZY:
        from importlib import import_module

        module = import_module(f".{_LAZY[name]}", __name__)
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CRASH_POINT_KINDS",
    "RETRY_POLICIES",
    "CrashMatrixReport",
    "CrashPointShim",
    "DeviceFaultStream",
    "FaultConfig",
    "FaultCounters",
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "FaultyTimedSystem",
    "RetryPolicy",
    "ScrubReport",
    "Scrubber",
    "StaleExposureHook",
    "attach_crash_shim",
    "demo_event_log",
    "rebuild_under_load",
    "retry_policy",
    "run_crash_matrix",
]
