"""Background stripe scrubber: verify parity and media, repair both.

Production parity RAIDs run a periodic scrub because latent sector
errors are silent until a read (or a rebuild!) needs the page — at which
point a second fault is fatal.  The scrubber sweeps stripes in order
and, for each one:

* reads every readable unit (the scrub traffic itself — chargeable to
  the timing simulator),
* repairs **stale parity** through the array's ``parity_update``
  interface (reconstruct-write, Section III-D),
* repairs **latent sector errors** by reconstruct-and-rewrite
  (:meth:`~repro.raid.array.RAIDArray.repair_page`),
* in payload mode, verifies parity bit-for-bit afterwards.

A media error on a data page of a *stale* stripe is repaired in two
steps in the same visit — parity first, then the rewrite — which is the
executable form of KDD's claim that the cache can always repair parity
before it is needed.  If parity repair is impossible the page is
counted ``unrepairable`` and left marked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ConfigError, DegradedError
from ..raid.array import DiskOp, RAIDArray
from ..stats.exposure import VulnerabilityExposure


@dataclass
class ScrubReport:
    """Tallies of one scrub pass (or one incremental step)."""

    stripes_scanned: int = 0
    parity_repaired: int = 0
    media_repaired: int = 0
    parity_mismatches: int = 0
    unrepairable: int = 0
    member_reads: int = 0
    member_writes: int = 0

    def add_ops(self, ops: list[DiskOp]) -> None:
        for op in ops:
            if op.is_read:
                self.member_reads += op.npages
            else:
                self.member_writes += op.npages

    def merge(self, other: ScrubReport) -> None:
        self.stripes_scanned += other.stripes_scanned
        self.parity_repaired += other.parity_repaired
        self.media_repaired += other.media_repaired
        self.parity_mismatches += other.parity_mismatches
        self.unrepairable += other.unrepairable
        self.member_reads += other.member_reads
        self.member_writes += other.member_writes

    def row(self) -> dict[str, Any]:
        return {
            "stripes_scanned": self.stripes_scanned,
            "parity_repaired": self.parity_repaired,
            "media_repaired": self.media_repaired,
            "parity_mismatches": self.parity_mismatches,
            "unrepairable": self.unrepairable,
            "scrub_reads": self.member_reads,
            "scrub_writes": self.member_writes,
        }


class Scrubber:
    """Sweeps an array's stripes, verifying and repairing as it goes.

    ``step(n)`` scrubs the next ``n`` stripes from a persistent cursor
    (wrapping), so a timing experiment can interleave scrub batches with
    foreground I/O; ``run()`` does one full pass.
    """

    def __init__(
        self,
        array: RAIDArray,
        repair: bool = True,
        charge_verify_reads: bool = True,
    ) -> None:
        if array.layout.pages_per_disk is None:
            raise ConfigError("scrubbing needs a bounded array (pages_per_disk)")
        self.array = array
        self.repair = repair
        self.charge_verify_reads = charge_verify_reads
        self._cursor = 0
        self._stale_samples: list[int] = []

    @property
    def total_stripes(self) -> int:
        assert self.array.layout.pages_per_disk is not None
        return self.array.layout.pages_per_disk // self.array.layout.chunk_pages

    @property
    def cursor(self) -> int:
        """Next stripe the incremental sweep will visit."""
        return self._cursor

    @property
    def exposure(self) -> VulnerabilityExposure:
        """Vulnerability-window exposure the sweep has observed so far.

        One sample per stripe *visit* (taken before any repair, so the
        scrubber reports the exposure it then clears), reduced to the
        shared :class:`~repro.stats.exposure.VulnerabilityExposure`
        shape — the same block the fault sweep and the reliability
        cells emit.  The span unit is scrub visits rather than
        workload accesses; the shape and semantics are otherwise
        identical, so reports compose.
        """
        return VulnerabilityExposure.from_samples(self._stale_samples)

    # -- per-stripe work -----------------------------------------------------

    def _stripe_media_errors(self, stripe: int) -> list[tuple[int, int]]:
        chunk = self.array.layout.chunk_pages
        return sorted(
            key for key in self.array.media_errors
            if key[1] // chunk == stripe
        )

    def verify_ops(self, stripe: int) -> list[DiskOp]:
        """The scrub's own read traffic: every readable unit of the stripe."""
        array = self.array
        ops: list[DiskOp] = []
        for offset in range(array.layout.chunk_pages):
            for _lpage, loc in array._data_locations_at_offset(stripe, offset):
                if array.page_readable(loc.disk, loc.disk_page):
                    ops.append(DiskOp(loc.disk, loc.disk_page, 1, True))
            for disk, dpage, kind in array._stripe_parity_locations(stripe, offset):
                if array.page_readable(disk, dpage):
                    ops.append(DiskOp(disk, dpage, 1, True, kind))
        return ops

    def scrub_stripe(self, stripe: int) -> tuple[ScrubReport, list[DiskOp]]:
        """Scrub one stripe; returns its report and the member ops performed."""
        array = self.array
        report = ScrubReport(stripes_scanned=1)
        self._stale_samples.append(len(array.stale_stripes))
        ops: list[DiskOp] = []
        if self.charge_verify_reads:
            reads = self.verify_ops(stripe)
            array.counters.account(reads)
            ops.extend(reads)
        if self.repair and stripe in array.stale_stripes:
            repaired = array.parity_update(
                stripe, cached_pages=list(array.layout.stripe_pages(stripe))
            )
            ops.extend(repaired)
            report.parity_repaired += 1
        if self.repair:
            for disk, dpage in self._stripe_media_errors(stripe):
                try:
                    ops.extend(array.repair_page(disk, dpage))
                    report.media_repaired += 1
                except DegradedError:
                    report.unrepairable += 1
        if array._disk_data is not None and stripe not in array.stale_stripes:
            if not array.verify_stripe(stripe):
                report.parity_mismatches += 1
        report.add_ops(ops)
        return report, ops

    # -- sweeps --------------------------------------------------------------

    def step(self, nstripes: int = 1) -> tuple[ScrubReport, list[DiskOp]]:
        """Scrub the next ``nstripes`` stripes from the cursor (wrapping)."""
        if nstripes < 1:
            raise ConfigError("nstripes must be >= 1")
        report = ScrubReport()
        ops: list[DiskOp] = []
        for _ in range(min(nstripes, self.total_stripes)):
            stripe_report, stripe_ops = self.scrub_stripe(self._cursor)
            report.merge(stripe_report)
            ops.extend(stripe_ops)
            self._cursor = (self._cursor + 1) % self.total_stripes
        return report, ops

    def run(self) -> ScrubReport:
        """One full pass over every stripe, starting from stripe 0."""
        self._cursor = 0
        report = ScrubReport()
        for stripe in range(self.total_stripes):
            stripe_report, _ops = self.scrub_stripe(stripe)
            report.merge(stripe_report)
        return report
