"""Fault-aware timing simulation: degraded reads, escalation, rebuild.

:class:`FaultyTimedSystem` is a :class:`~repro.sim.system.TimedSystem`
with the fault pipeline installed as an engine hook
(:class:`~repro.engine.hooks.FaultPipelineHook`) — the subclass-override
pattern of earlier versions is gone; the class only wires configuration
and re-exposes the pipeline's state (``schedule``, ``counters``,
``fault_row``) under the historical attribute names.

Pipeline semantics (see the hook's docstring for the full story):

* every member disk gets its own seeded
  :class:`~repro.faults.schedule.DeviceFaultStream` (``disk0`` …); the
  SSD cache gets a timeout-only stream (``ssd``);
* devices absorb transient timeouts with the
  :class:`~repro.faults.retry.RetryPolicy`;
* a *residual* fault escalates to the RAID layer: degraded
  reconstruction from the surviving stripe peers + parity, plus a
  background repair rewrite after a URE;
* a degraded read of a **stale-parity** stripe — the paper's
  vulnerability window — is repaired on demand (default) or raises
  :class:`~repro.errors.DegradedError`;
* whole-device failures strike at their scheduled instants before the
  next request is interpreted.

:func:`rebuild_under_load` drives a member rebuild concurrently with a
foreground trace — the classic degraded-mode experiment.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING

from ..cache.base import CachePolicy
from ..disk.hdd import HDDParams
from ..engine.hooks import EngineHook, FaultPipelineHook
from ..errors import ConfigError, DegradedError, raises
from ..flash.device import SSDLatency
from ..raid.rebuild import RebuildReport, finish_rebuild, iter_rebuild_ops
from ..sim.system import TimedSystem
from ..stats.exposure import VulnerabilityExposure
from ..traces.record import IORequest
from .retry import RetryPolicy, retry_policy
from .schedule import FaultConfig, FaultCounters, FaultSchedule

if TYPE_CHECKING:
    from ..engine.system import RequestRecord, SimEngine


class StaleExposureHook(EngineHook):
    """Samples the stale-stripe count after every foreground request.

    The samples reduce to the shared
    :class:`~repro.stats.exposure.VulnerabilityExposure` shape — the
    same block the scrubber and the reliability cells report — so a
    fault sweep's vulnerability-window exposure composes with both.
    Sampling at request completion makes the span unit *accesses*, the
    convention of every workload-driven producer.
    """

    def __init__(self) -> None:
        self._samples: list[int] = []

    def on_request_done(self, engine: "SimEngine",
                        record: "RequestRecord") -> None:
        self._samples.append(len(engine.policy.raid.stale_stripes))

    @property
    def exposure(self) -> VulnerabilityExposure:
        """The exposure observed so far, in the shared shape."""
        return VulnerabilityExposure.from_samples(self._samples)


class FaultyTimedSystem(TimedSystem):
    """A :class:`TimedSystem` whose devices misbehave on schedule."""

    def __init__(
        self,
        policy: CachePolicy,
        faults: FaultConfig | FaultSchedule | None = None,
        retry: RetryPolicy | str = "backoff",
        repair_stale_on_demand: bool = True,
        hdd_params: HDDParams | None = None,
        ssd_latency: SSDLatency | None = None,
        ssd_channels: int = 8,
    ) -> None:
        super().__init__(policy, hdd_params, ssd_latency, ssd_channels)
        if isinstance(faults, FaultSchedule):
            schedule = faults
        else:
            schedule = FaultSchedule(faults or FaultConfig())
        retry_obj = retry if isinstance(retry, RetryPolicy) else retry_policy(retry)
        self._pipeline = FaultPipelineHook(
            schedule, retry_obj, repair_stale_on_demand=repair_stale_on_demand
        )
        self.add_hook(self._pipeline)
        self.schedule = schedule
        self.retry = retry_obj

    @property
    def counters(self) -> FaultCounters:
        return self._pipeline.counters

    @property
    def repair_stale_on_demand(self) -> bool:
        return self._pipeline.repair_stale_on_demand

    @repair_stale_on_demand.setter
    def repair_stale_on_demand(self, value: bool) -> None:
        self._pipeline.repair_stale_on_demand = value

    # -- results -------------------------------------------------------------

    def fault_row(self) -> dict[str, object]:
        """Counter + event summary for experiment result rows."""
        return self._pipeline.fault_row()


@raises(DegradedError)
def rebuild_under_load(
    system: TimedSystem,
    disk: int,
    requests: Iterable[IORequest] | Iterator[IORequest],
    batch_stripes: int = 4,
) -> tuple[RebuildReport, float]:
    """Rebuild failed member ``disk`` while serving foreground requests.

    Between every foreground request the rebuilder injects up to
    ``batch_stripes`` chunks' worth of reconstruction batches, so rebuild
    and foreground traffic contend for the member disks — the degraded-
    mode experiment of every RAID paper.  Foreground reads of not-yet-
    rebuilt pages are served degraded by the array automatically (the
    member is failed until :func:`~repro.raid.rebuild.finish_rebuild`).

    This driver is a workload *source*: it interleaves foreground
    submissions with :meth:`TimedSystem.inject_disk_ops` batches; all
    device timing is the engine's.

    Returns the rebuild report (count-only) and the time the rebuild
    finished.
    """
    if batch_stripes < 1:
        raise ConfigError("batch_stripes must be >= 1")
    array = system.policy.raid
    if disk not in array.failed_disks:
        array.fail_disk(disk)
    report = RebuildReport()
    batches = iter_rebuild_ops(array, disk)
    pages_per_batch = batch_stripes * array.layout.chunk_pages
    clock = 0.0
    rebuild_done = 0.0
    exhausted = False
    for req in requests:
        clock = max(clock, req.time)
        system.submit_request(req)
        if exhausted:
            continue
        for _ in range(pages_per_batch):
            try:
                _dpage, ops = next(batches)
            except StopIteration:
                exhausted = True
                break
            array.counters.account(ops)
            report.add_ops(ops)
            report.pages_rebuilt += 1
            rebuild_done = system.inject_disk_ops(ops, clock)
    # drain whatever the trace did not overlap
    for _dpage, ops in batches:
        array.counters.account(ops)
        report.add_ops(ops)
        report.pages_rebuilt += 1
        rebuild_done = system.inject_disk_ops(ops, max(clock, rebuild_done))
    finish_rebuild(array, disk)
    return report, rebuild_done
