"""Fault-aware timing simulation: degraded reads, escalation, rebuild.

:class:`FaultyTimedSystem` extends the discrete-event
:class:`~repro.sim.system.TimedSystem` with the full fault pipeline:

* every member disk gets its own seeded
  :class:`~repro.faults.schedule.DeviceFaultStream` (``disk0`` …); the
  SSD cache gets a timeout-only stream (``ssd`` — a cache-side media
  error is a miss, not a data-loss hazard, because every write reached
  RAID);
* devices absorb transient timeouts with the
  :class:`~repro.faults.retry.RetryPolicy` (each retry stalls the
  device and delays queued commands);
* a *residual* fault escalates to the RAID layer: the page is read
  degraded from its surviving stripe peers + parity
  (:meth:`~repro.raid.array.RAIDArray.reconstruct_read_ops`), and a URE
  additionally triggers a background repair rewrite;
* a degraded read of a **stale-parity** stripe cannot be served — the
  paper's vulnerability window.  With ``repair_stale_on_demand`` (the
  default) the system first charges a parity repair
  (``parity_update``), then reconstructs; with it off the
  :class:`~repro.errors.DegradedError` propagates to the caller;
* whole-device failures strike at their scheduled instants
  (``FaultConfig.device_failures``) and flip the array into degraded
  mode before the next request is interpreted.

Model simplifications, stated honestly: a fault on a multi-page member
op is attributed to the op's first page; faults drawn by the nested
reconstruction / repair traffic add their stall latency but do not
re-escalate (no recursive reconstruction).

:func:`rebuild_under_load` drives a member rebuild concurrently with a
foreground trace — the classic degraded-mode experiment.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from ..cache.base import CachePolicy
from ..disk.hdd import HDDParams
from ..errors import ConfigError, DegradedError
from ..flash.device import SSDLatency
from ..raid.array import DiskOp
from ..raid.rebuild import RebuildReport, finish_rebuild, iter_rebuild_ops
from ..sim.devices import ServiceWindow
from ..sim.system import TimedSystem
from ..traces.record import IORequest
from .retry import RetryPolicy, retry_policy
from .schedule import FaultConfig, FaultCounters, FaultKind, FaultSchedule


class FaultyTimedSystem(TimedSystem):
    """A :class:`TimedSystem` whose devices misbehave on schedule."""

    def __init__(
        self,
        policy: CachePolicy,
        faults: FaultConfig | FaultSchedule | None = None,
        retry: RetryPolicy | str = "backoff",
        repair_stale_on_demand: bool = True,
        hdd_params: HDDParams | None = None,
        ssd_latency: SSDLatency | None = None,
        ssd_channels: int = 8,
    ) -> None:
        super().__init__(policy, hdd_params, ssd_latency, ssd_channels)
        if isinstance(faults, FaultSchedule):
            self.schedule = faults
        else:
            self.schedule = FaultSchedule(faults or FaultConfig())
        self.retry = retry if isinstance(retry, RetryPolicy) else retry_policy(retry)
        self.repair_stale_on_demand = repair_stale_on_demand
        self.counters = FaultCounters()
        self._raid = policy.raid
        for i, server in enumerate(self.disks):
            server.faults = self.schedule.stream(f"disk{i}")
            server.retry = self.retry
        self.ssd.faults = self.schedule.stream("ssd", media_faults=False)
        self.ssd.retry = self.retry
        self._devices_failed: set[int] = set()

    # -- whole-device failures ----------------------------------------------

    def _strike_device_failures(self, now: float) -> None:
        """Fail any member whose scheduled instant has passed, exactly once.

        Runs *before* the policy interprets a request, so the array is
        already degraded when it emits that request's member ops.
        """
        for disk, server in enumerate(self.disks):
            stream = server.faults
            if (
                stream is None
                or disk in self._devices_failed
                or not stream.failed_by(now)
            ):
                continue
            self._devices_failed.add(disk)
            self.counters.device_failures += 1
            self.schedule.record(
                max(now, stream.fail_at or 0.0),
                f"disk{disk}",
                FaultKind.DEVICE_FAIL.value,
                detail="scheduled whole-device failure",
            )
            self._raid.fail_disk(disk)

    # -- fault-aware serving -------------------------------------------------

    def _note_retries(self, window: ServiceWindow) -> None:
        self.counters.retries += window.retries

    def _serve_ssd(self, npages: int, is_read: bool, earliest: float) -> float:
        """SSD commands only ever time out; the stall is the whole cost."""
        if is_read:
            window = self.ssd.serve_read(npages, earliest)
        else:
            window = self.ssd.serve_write(npages, earliest)
        self._note_retries(window)
        if window.fault is FaultKind.TIMEOUT:
            self.counters.timeouts += 1
            self.schedule.record(
                window.finish, "ssd", FaultKind.TIMEOUT.value,
                detail=f"retries exhausted ({window.retries}); waited out",
            )
        return window.finish

    def _repair_stale_parity(self, stripe: int, device: str, now: float) -> float:
        """Charge an on-demand parity repair for ``stripe``; returns finish."""
        raid = self._raid
        self.counters.stale_escalations += 1
        self.schedule.record(
            now, device, "stale_escalation",
            detail=f"stripe {stripe} parity stale: repair before reconstruction",
        )
        repair_ops = raid.parity_update(
            stripe, cached_pages=list(raid.layout.stripe_pages(stripe))
        )
        done = self._serve_plain(repair_ops, now)
        self.counters.repairs += 1
        self.schedule.record(done, device, "parity_repair",
                             detail=f"stripe {stripe}")
        return done

    def _serve_plain(self, ops: Iterable[DiskOp], earliest: float) -> float:
        """Serve member ops without escalation (nested repair traffic).

        Fault draws still advance the streams and their stalls still
        count, but residual faults here do not recurse.
        """
        reads = [op for op in ops if op.is_read]
        writes = [op for op in ops if not op.is_read]
        phase1_done = earliest
        for op in reads:
            w = self.disks[op.disk].serve(op.disk_page, op.npages, True, earliest)
            self._note_retries(w)
            phase1_done = max(phase1_done, w.finish)
        done = phase1_done
        for op in writes:
            w = self.disks[op.disk].serve(op.disk_page, op.npages, False, phase1_done)
            self._note_retries(w)
            done = max(done, w.finish)
        return done

    def _reconstruction_ops(
        self, op: DiskOp, now: float, device: str
    ) -> tuple[float, list[DiskOp]]:
        """Degraded-read plan for ``op``'s page, repairing stale parity
        on demand; raises :class:`DegradedError` when reconstruction is
        impossible (RAID-0, double failure, or stale parity with
        ``repair_stale_on_demand=False``)."""
        raid = self._raid
        try:
            return now, raid.reconstruct_read_ops(op.disk, op.disk_page)
        except DegradedError:
            stripe, _kind = raid.member_page_role(op.disk, op.disk_page)
            if not (self.repair_stale_on_demand and stripe in raid.stale_stripes):
                raise
        done = self._repair_stale_parity(stripe, device, now)
        return done, raid.reconstruct_read_ops(op.disk, op.disk_page)

    def _serve_read_op(self, op: DiskOp, earliest: float) -> float:
        """Serve one member read, escalating residual faults to RAID."""
        window = self.disks[op.disk].serve(op.disk_page, op.npages, True, earliest)
        self._note_retries(window)
        if window.ok:
            return window.finish
        device = f"disk{op.disk}"
        raid = self._raid
        if window.fault is FaultKind.TIMEOUT:
            self.counters.timeouts += 1
            self.schedule.record(
                window.finish, device, FaultKind.TIMEOUT.value, op.disk_page,
                detail=f"retries exhausted ({window.retries})",
            )
            try:
                now, recon = self._reconstruction_ops(op, window.finish, device)
            except DegradedError:
                # No redundancy to read around a transient stall: the
                # command is simply waited out (the stall already counted).
                return window.finish
            done = self._serve_plain(recon, now)
            self.counters.reconstructions += 1
            return done
        # Residual URE: the media is bad until repaired.
        self.counters.ures += 1
        self.schedule.record(window.finish, device, FaultKind.URE.value,
                             op.disk_page)
        raid.mark_media_error(op.disk, op.disk_page)
        now, recon = self._reconstruction_ops(op, window.finish, device)
        done = self._serve_plain(recon, now)
        self.counters.reconstructions += 1
        # Background repair: rewrite the reconstructed page.  The
        # reconstruction reads were just served; only the write still
        # needs device time, after the foreground read completes.
        repair = raid.repair_page(op.disk, op.disk_page)
        self._serve_plain([o for o in repair if not o.is_read], done)
        self.counters.repairs += 1
        self.schedule.record(done, device, "media_repair", op.disk_page)
        return done

    def _schedule_disk_phases(self, ops: list[DiskOp], earliest: float) -> float:
        """Reads (fault-aware) in parallel, then writes in parallel."""
        reads = [op for op in ops if op.is_read]
        writes = [op for op in ops if not op.is_read]
        phase1_done = earliest
        for op in reads:
            phase1_done = max(phase1_done, self._serve_read_op(op, earliest))
        done = phase1_done
        for op in writes:
            w = self.disks[op.disk].serve(op.disk_page, op.npages, False, phase1_done)
            self._note_retries(w)
            if w.fault is not None:
                # A write's residual fault is a stall, already in w.finish;
                # the array would remap the sector on a real device.
                self.counters.timeouts += 1
                self.schedule.record(
                    w.finish, f"disk{op.disk}", FaultKind.TIMEOUT.value,
                    op.disk_page, detail="write stall (waited out)",
                )
            done = max(done, w.finish)
        return done

    def submit(self, lba: int, npages: int, is_read: bool, arrival: float) -> float:
        self._strike_device_failures(max(self._clock, arrival))
        return super().submit(lba, npages, is_read, arrival)

    # -- results -------------------------------------------------------------

    def fault_row(self) -> dict[str, object]:
        """Counter + event summary for experiment result rows."""
        row: dict[str, object] = dict(self.counters.row())
        row["fault_events"] = len(self.schedule.events)
        return row


def rebuild_under_load(
    system: TimedSystem,
    disk: int,
    requests: Iterable[IORequest] | Iterator[IORequest],
    batch_stripes: int = 4,
) -> tuple[RebuildReport, float]:
    """Rebuild failed member ``disk`` while serving foreground requests.

    Between every foreground request the rebuilder injects up to
    ``batch_stripes`` chunks' worth of reconstruction batches, so rebuild
    and foreground traffic contend for the member disks — the degraded-
    mode experiment of every RAID paper.  Foreground reads of not-yet-
    rebuilt pages are served degraded by the array automatically (the
    member is failed until :func:`~repro.raid.rebuild.finish_rebuild`).

    Returns the rebuild report (count-only) and the time the rebuild
    finished.
    """
    if batch_stripes < 1:
        raise ConfigError("batch_stripes must be >= 1")
    array = system.policy.raid
    if disk not in array.failed_disks:
        array.fail_disk(disk)
    report = RebuildReport()
    batches = iter_rebuild_ops(array, disk)
    pages_per_batch = batch_stripes * array.layout.chunk_pages
    clock = 0.0
    rebuild_done = 0.0
    exhausted = False
    for req in requests:
        clock = max(clock, req.time)
        system.submit_request(req)
        if exhausted:
            continue
        for _ in range(pages_per_batch):
            try:
                _dpage, ops = next(batches)
            except StopIteration:
                exhausted = True
                break
            array.counters.account(ops)
            report.add_ops(ops)
            report.pages_rebuilt += 1
            rebuild_done = system.inject_disk_ops(ops, clock)
    # drain whatever the trace did not overlap
    for _dpage, ops in batches:
        array.counters.account(ops)
        report.add_ops(ops)
        report.pages_rebuilt += 1
        rebuild_done = system.inject_disk_ops(ops, max(clock, rebuild_done))
    finish_rebuild(array, disk)
    return report, rebuild_done
