"""Crash-consistency harness: every persistence boundary, proven RPO=0.

The KDD persistence protocol (Sections III-B/E1) claims a recovery
point objective of zero: after a power failure at *any* instant, the
primary map rebuilt from crash-surviving state — metadata log pages on
flash plus the two NVRAM buffers — equals the live map restricted to
acknowledged writes.  This module makes that claim executable.

Crash model
-----------

* NVRAM word writes are durable the instant they happen; multi-word
  updates that must be atomic are wrapped in a journaled transaction
  (:meth:`CrashPointShim.txn`) inside which no crash point fires and no
  flash program is allowed (callers pre-reserve metadata-buffer room via
  ``mlog.reserve``, which this shim enforces).
* Flash page programs are the only operations that can *tear*: a crash
  mid-program leaves the page empty or holding a prefix of its entries.

Boundary enumeration
--------------------

The production code is instrumented with a duck-typed ``shim``
attribute (default ``None`` — zero import and zero cost when the
harness is not attached) on :class:`~repro.core.kdd.KDD`,
:class:`~repro.cache.mlog.MetadataLog` and
:class:`~repro.nvram.staging.StagingBuffer`.  Each instrumented step
calls ``shim.point(kind, ...)`` just before its NVRAM mutation; the one
flash program (the metadata-page commit) calls ``shim.flash_point``,
from which the harness synthesises three crash phases — *before* the
program (page absent), *torn* (a prefix of the entries persisted) and
*after* (page complete, NVRAM retention not yet released).

Every ``kind`` must be registered in :data:`CRASH_POINT_KINDS`; an
unregistered kind raises immediately, so a newly added persistence step
cannot silently escape matrix coverage, and the matrix report's covered
set is asserted *equal* to the registry by the test suite.

Two modes
---------

* **capture** — at each boundary, snapshot the crash-surviving state
  (:func:`snapshot_crash_image`), run
  :func:`~repro.core.recovery.recover_from_power_failure` over a
  stand-in built from the snapshot, and verify against the live map.
* **armed** — replay the same workload but *raise*
  :class:`~repro.errors.SimulatedPowerFailure` at one chosen boundary
  (writing the torn/complete page image first for flash phases); the
  driver then recovers from the real, mid-operation object.  This
  additionally proves that exception unwinding does not corrupt the
  crash-surviving surface (a well-meaning ``finally`` that "cleans up"
  NVRAM would be exactly such a bug).

Both modes share one verification contract
(:func:`verify_crash_recovery`):

1. recovered map == live map on every page except the single in-flight
   (unacknowledged) access;
2. every recovered DEZ pointer — the in-flight page's included — lands
   on a live DEZ page still holding that delta (the dangling-pointer
   check that forces the stage-before-invalidate write ordering);
3. DEZ valid counts derived from the recovered old entries match the
   live delta references, again excluding the in-flight page.

Failures raise :class:`~repro.errors.RecoveryError` naming the
boundary (kind, phase, index and context).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..cache.base import CacheConfig
from ..core.kdd import KDD
from ..core.recovery import RecoveredState, recover_from_power_failure
from ..errors import RecoveryError, SimulatedPowerFailure, raises
from ..nvram.metabuffer import MappingEntry, PageState
from ..nvram.staging import StagedDelta
from ..raid.array import RAIDArray, RaidLevel

#: Every persistence boundary the production code may announce.  The
#: shim rejects unknown kinds and the crash-matrix test asserts its
#: covered set equals this registry — extending the persistence
#: protocol without extending the matrix is a hard error on both sides.
CRASH_POINT_KINDS = (
    "mlog_commit",      # metadata page program (before / torn / after)
    "meta_put",         # mapping entry into the NVRAM metadata buffer
    "gc_relocate",      # live entry re-buffered during log GC
    "gc_head_advance",  # log head advance (page leaves the replay window)
    "staging_put",      # delta into the NVRAM staging buffer
    "staging_flush",    # staged deltas move to the flushing region
    "dez_commit",       # packed DEZ page program
    "cleaner_parity",   # stripe parity repair (RAID-side, pre-reclaim)
    "clean_reclaim",    # old-page reclaim after its parity is repaired
)

#: Kinds announced through ``flash_point`` (torn phases synthesised).
FLASH_POINT_KINDS = ("mlog_commit",)


@dataclass(frozen=True)
class CrashBoundary:
    """One enumerated crash point: where the simulated failure hits."""

    index: int
    kind: str
    phase: str  # "nvram", "before", "torn[k]", "after"
    context: tuple  # sorted (key, value) pairs from the call site

    def __str__(self) -> str:  # appears in RecoveryError messages
        ctx = ", ".join(f"{k}={v}" for k, v in self.context)
        return f"#{self.index} {self.kind}/{self.phase}({ctx})"

    def same_site(self, other: "CrashBoundary") -> bool:
        return (self.kind, self.phase, self.context) == (
            other.kind, other.phase, other.context
        )


@dataclass(frozen=True)
class CrashImage:
    """Everything that survives a power failure, frozen at one boundary.

    Exactly the surface :func:`recover_from_power_failure` is allowed to
    read (enforced by the RPR207 analyzer rule): the log's NVRAM
    head/tail counters, the flash page images, the committing and
    relocating retention lists, the metadata buffer, and the staging
    buffer (flushing region first).
    """

    head: int
    tail: int
    page_image: dict[int, tuple[MappingEntry, ...]]
    committing: tuple[tuple[MappingEntry, ...], ...]
    relocating: tuple[MappingEntry, ...]
    metabuffer: tuple[MappingEntry, ...]
    staging: tuple[StagedDelta, ...]

    @raises(RecoveryError)
    def recover(self) -> RecoveredState:
        """Run the production recovery path over this image."""
        return recover_from_power_failure(_RecoveryStandin(self))


class _ImageLog:
    """Duck-typed MetadataLog replacement backed by a :class:`CrashImage`."""

    def __init__(self, image: CrashImage) -> None:
        self._image = image

    def replay(self) -> dict[int, MappingEntry]:
        mapping: dict[int, MappingEntry] = {}
        for seq in range(self._image.head, self._image.tail):
            for entry in self._image.page_image.get(seq, ()):
                mapping[entry.lba_raid] = entry
        return mapping

    def nvram_entries(self) -> list[MappingEntry]:
        out = list(self._image.relocating)
        for batch in self._image.committing:
            out.extend(batch)
        out.extend(self._image.metabuffer)
        return out


class _ImageStaging:
    """Duck-typed StagingBuffer replacement backed by a :class:`CrashImage`."""

    def __init__(self, image: CrashImage) -> None:
        self._image = image

    def snapshot(self) -> list[StagedDelta]:
        return list(self._image.staging)


class _RecoveryStandin:
    """What recovery sees after the crash: the image, nothing else."""

    def __init__(self, image: CrashImage) -> None:
        self.mlog = _ImageLog(image)
        self.staging = _ImageStaging(image)


def snapshot_crash_image(
    kdd: KDD, page_override: tuple[int, tuple[MappingEntry, ...]] | None = None
) -> CrashImage:
    """Copy the crash-surviving state out of a live KDD instance.

    ``page_override`` installs a synthetic flash image for one page
    sequence number — how the harness materialises the torn/complete
    phases of a page program that, on the live object, has not happened
    yet at hook time.
    """
    log = kdd.mlog
    page_image = {seq: tuple(img) for seq, img in log._page_image.items()}
    if page_override is not None:
        seq, entries = page_override
        page_image[seq] = tuple(entries)
    return CrashImage(
        head=log.head,
        tail=log.tail,
        page_image=page_image,
        committing=tuple(tuple(batch) for batch in log._committing),
        relocating=tuple(log._relocating),
        metabuffer=tuple(log.buffer.snapshot()),
        staging=tuple(kdd.staging.snapshot()),
    )


# -- verification ------------------------------------------------------------


def live_map_view(kdd: KDD) -> dict[int, tuple[PageState, int | None]]:
    """The live map in recovered-page terms: lba -> (state, dez_lpn)."""
    live: dict[int, tuple[PageState, int | None]] = {}
    for line in kdd.sets.all_lines():
        ref = line.aux
        dez = ref.dez_lpn if (ref is not None and line.state is PageState.OLD) else None
        live[line.lba] = (line.state, dez)
    return live


@raises(RecoveryError)
def verify_crash_recovery(
    kdd: KDD,
    recovered: RecoveredState,
    in_flight: int | None,
    boundary: CrashBoundary,
    expected: dict[int, tuple[PageState, int | None]] | None = None,
) -> None:
    """Prove RPO=0 at one boundary; raise RecoveryError naming it.

    ``expected`` is the live view captured at the moment of the crash
    (armed mode, where the live object has since unwound an exception);
    capture mode reads the live object directly.
    """
    live = live_map_view(kdd) if expected is None else expected
    rec = {lba: (p.state, p.dez_lpn) for lba, p in recovered.pages.items()}
    skip = set() if in_flight is None else {in_flight}

    differing = sorted(
        lba
        for lba in (live.keys() | rec.keys()) - skip
        if live.get(lba) != rec.get(lba)
    )
    if differing:
        lost = [lba for lba in differing if lba not in rec]
        raise RecoveryError(
            f"crash at {boundary}: {len(differing)} acknowledged pages differ "
            f"after recovery ({len(lost)} lost entirely; e.g. {differing[:3]})"
        )

    # Dangling-DEZ check, deliberately NOT exempting the in-flight page:
    # a recovered pointer into a reclaimed (reusable) delta slot is
    # corruption even when the pointing write was never acknowledged.
    for lba, page in recovered.pages.items():
        if page.dez_lpn is None:
            continue
        dez = kdd.dez_pages.get(page.dez_lpn)
        if dez is None or lba not in dez.packed.valid:
            raise RecoveryError(
                f"crash at {boundary}: recovered map points page {lba} at "
                f"DEZ page {page.dez_lpn}, which no longer holds its delta"
            )

    def ref_counts(view: dict[int, tuple[PageState, int | None]]) -> dict[int, int]:
        counts: dict[int, int] = {}
        for lba, (_, dez) in view.items():
            if dez is None or lba in skip:
                continue
            counts[dez] = counts.get(dez, 0) + 1
        return counts

    if ref_counts(rec) != ref_counts(live):
        raise RecoveryError(
            f"crash at {boundary}: recovered DEZ valid counts disagree with "
            "the live delta references"
        )


# -- the shim ----------------------------------------------------------------


class CrashPointShim:
    """Persistence-boundary instrumentation attached to one KDD instance.

    ``capture`` mode verifies recovery in-place at every boundary;
    ``armed`` mode raises :class:`SimulatedPowerFailure` at boundary
    ``arm_index`` (materialising the torn page first where applicable)
    and leaves verification to the driver.  Boundary indexing is
    identical across modes — same workload, same sequence — which the
    driver cross-checks.
    """

    def __init__(
        self, kdd: KDD, mode: str = "capture", arm_index: int | None = None
    ) -> None:
        if mode not in ("capture", "armed"):
            raise RecoveryError(f"unknown shim mode {mode!r}")
        if mode == "armed" and arm_index is None:
            raise RecoveryError("armed mode needs an arm_index")
        self.kdd = kdd
        self.mode = mode
        self.arm_index = arm_index
        #: The page the *current* access targets; its write is not yet
        #: acknowledged, so it is the one permissible recovery difference.
        self.in_flight: int | None = None
        self.index = 0
        self.boundaries: list[CrashBoundary] = []
        self._txn_depth = 0
        # Armed-mode crash record, filled at raise time:
        self.tripped: CrashBoundary | None = None
        self.tripped_in_flight: int | None = None
        self.expected: dict[int, tuple[PageState, int | None]] | None = None

    # -- the journaled-transaction contract ------------------------------

    @contextmanager
    def txn(self):
        """Atomic multi-word NVRAM update: no crash point fires inside."""
        self._txn_depth += 1
        try:
            yield
        finally:
            self._txn_depth -= 1

    # -- hooks called by the production code -----------------------------

    @raises(RecoveryError, SimulatedPowerFailure)
    def point(self, kind: str, **ctx) -> None:
        """A crash point just before one durable NVRAM word write."""
        self._check_kind(kind)
        if self._txn_depth:
            return  # inside a journaled transaction: not a boundary
        self._visit(kind, "nvram", ctx, mutate=None)

    @raises(RecoveryError, SimulatedPowerFailure)
    def flash_point(self, kind: str, log, seq: int, entries) -> None:
        """A crash point spanning one flash page program.

        Synthesises the *before* / *torn prefix* / *after* phases from
        the single call site.  ``tail`` has already advanced and the
        batch sits in NVRAM retention, so all three phases recover the
        full batch.
        """
        self._check_kind(kind)
        if kind not in FLASH_POINT_KINDS:
            raise RecoveryError(f"{kind!r} is not a registered flash point")
        if self._txn_depth:
            raise RecoveryError(
                f"flash program {kind!r} inside an NVRAM transaction "
                "(reserve metadata-buffer room before the txn)"
            )
        entries = tuple(entries)
        ctx = {"seq": seq, "n": len(entries)}
        # before: the program never started — the page reads back empty.
        self._visit(kind, "before", ctx, mutate=None)
        # torn: a strict prefix of the entries persisted.
        n = len(entries)
        for k in sorted({1, n // 2, n - 1}):
            if not 1 <= k < n:
                continue
            self._visit(
                kind, f"torn[{k}]", ctx,
                mutate=(log, seq, entries[:k]),
            )
        # after: page complete, NVRAM retention not yet released.
        self._visit(kind, "after", ctx, mutate=(log, seq, entries))

    # -- internals --------------------------------------------------------

    def _check_kind(self, kind: str) -> None:
        if kind not in CRASH_POINT_KINDS:
            raise RecoveryError(
                f"unregistered crash point kind {kind!r}: add it to "
                "repro.faults.crash.CRASH_POINT_KINDS so the matrix covers it"
            )

    def _visit(self, kind, phase, ctx, mutate) -> None:
        boundary = CrashBoundary(
            index=self.index,
            kind=kind,
            phase=phase,
            context=tuple(sorted(ctx.items())),
        )
        self.index += 1
        if self.mode == "capture":
            self.boundaries.append(boundary)
            override = None if mutate is None else (mutate[1], mutate[2])
            image = snapshot_crash_image(self.kdd, page_override=override)
            verify_crash_recovery(
                self.kdd, image.recover(), self.in_flight, boundary
            )
            return
        if boundary.index != self.arm_index:
            return
        if mutate is not None:
            log, seq, persisted = mutate
            log._page_image[seq] = list(persisted)
        self.tripped = boundary
        self.tripped_in_flight = self.in_flight
        self.expected = live_map_view(self.kdd)
        raise SimulatedPowerFailure(f"power failure injected at {boundary}")


@raises(RecoveryError)
def attach_crash_shim(
    kdd: KDD, mode: str = "capture", arm_index: int | None = None
) -> CrashPointShim:
    """Install a shim on a KDD instance and its persistence components."""
    shim = CrashPointShim(kdd, mode=mode, arm_index=arm_index)
    kdd.shim = shim
    kdd.mlog.shim = shim
    kdd.staging.shim = shim
    return shim


def detach_crash_shim(kdd: KDD) -> None:
    kdd.shim = None
    kdd.mlog.shim = None
    kdd.staging.shim = None


# -- the crash matrix driver -------------------------------------------------


@dataclass
class CrashMatrixReport:
    """Coverage and outcome of one crash-matrix run."""

    accesses: int
    boundaries: int
    kind_counts: dict[str, int] = field(default_factory=dict)
    phase_counts: dict[str, int] = field(default_factory=dict)
    torn_boundaries: int = 0
    armed_runs: int = 0

    @property
    def covered(self) -> set[str]:
        return {k for k, n in self.kind_counts.items() if n > 0}

    def row(self) -> dict:
        """Flat JSON-friendly summary (bench + CI artifact)."""
        return {
            "accesses": self.accesses,
            "boundaries": self.boundaries,
            "torn_boundaries": self.torn_boundaries,
            "armed_runs": self.armed_runs,
            "kinds": dict(sorted(self.kind_counts.items())),
            "phases": dict(sorted(self.phase_counts.items())),
        }


def _build_kdd(seed: int) -> KDD:
    """A small KDD stack sized so a short workload exercises every
    persistence mechanism: staging flushes, DEZ commits, cleaning,
    forced cleaning, metadata-log wraparound and GC."""
    raid = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=4, pages_per_disk=1024)
    config = CacheConfig(
        cache_pages=64,
        ways=16,
        group_pages=16,
        page_size=256,  # tiny pages -> the 4-page metadata log wraps fast
        nvram_buffer_bytes=256,
        mean_compression=0.25,
        seed=seed,
    )
    return KDD(config, raid)


def crash_workload(
    accesses: int, seed: int, universe: int = 128, read_ratio: float = 0.3
) -> list[tuple[int, bool]]:
    """Deterministic page-access sequence with heavy write-hit reuse."""
    rng = np.random.default_rng(seed)
    lbas = rng.integers(0, universe, size=accesses)
    reads = rng.random(accesses) < read_ratio
    return list(zip(lbas.tolist(), reads.tolist()))


@raises(RecoveryError)
def run_crash_matrix(
    accesses: int = 160, seed: int = 0, armed_stride: int = 1
) -> CrashMatrixReport:
    """Enumerate, verify and (selectively) fire every crash boundary.

    Pass 1 (capture) replays the workload once, proving RPO=0 in place
    at every boundary.  Pass 2 (armed) replays it once *per boundary*
    (every ``armed_stride``-th), raising the simulated power failure
    there and recovering from the genuinely crashed object.  Raises
    :class:`RecoveryError` on any violation; returns coverage.
    """
    workload = crash_workload(accesses, seed)

    kdd = _build_kdd(seed)
    shim = attach_crash_shim(kdd, mode="capture")
    for lba, is_read in workload:
        shim.in_flight = lba
        kdd.access(lba, is_read)
    shim.in_flight = None
    kdd.finish()
    detach_crash_shim(kdd)
    kdd.check_invariants()

    report = CrashMatrixReport(accesses=accesses, boundaries=shim.index)
    for kind in CRASH_POINT_KINDS:
        report.kind_counts[kind] = 0
    for boundary in shim.boundaries:
        report.kind_counts[boundary.kind] += 1
        phase = boundary.phase.split("[")[0]
        report.phase_counts[phase] = report.phase_counts.get(phase, 0) + 1
        report.torn_boundaries += phase == "torn"

    for arm_index in range(0, shim.index, armed_stride):
        report.armed_runs += _run_armed(
            workload, seed, arm_index, shim.boundaries[arm_index]
        )
    return report


def _run_armed(
    workload: list[tuple[int, bool]],
    seed: int,
    arm_index: int,
    expected_boundary: CrashBoundary,
) -> int:
    """One armed replay: crash at ``arm_index``, recover, verify."""
    kdd = _build_kdd(seed)
    shim = attach_crash_shim(kdd, mode="armed", arm_index=arm_index)
    try:
        for lba, is_read in workload:
            shim.in_flight = lba
            kdd.access(lba, is_read)
        shim.in_flight = None
        kdd.finish()
    except SimulatedPowerFailure:
        pass
    else:
        raise RecoveryError(
            f"armed boundary {expected_boundary} never fired on replay"
        )
    if shim.tripped is None or not shim.tripped.same_site(expected_boundary):
        raise RecoveryError(
            f"non-deterministic boundary sequence: armed run hit "
            f"{shim.tripped}, capture saw {expected_boundary}"
        )
    # Recover from the real object: its NVRAM/flash state is the crash
    # state, and the unwound exception must not have disturbed it.
    recovered = recover_from_power_failure(kdd)
    verify_crash_recovery(
        kdd,
        recovered,
        shim.tripped_in_flight,
        shim.tripped,
        expected=shim.expected,
    )
    return 1
