"""Seeded fault schedules: which device misbehaves, when, and how.

Determinism discipline
----------------------

Every device gets its *own* RNG stream, seeded from
``sha256(schedule_seed, device_id)`` — the same hash-derivation rule the
sweep engine uses for per-cell seeds.  A device's draws advance only its
own stream, in its own serve order, so:

* two runs with the same schedule seed produce identical fault
  placements, byte for byte, regardless of ``--jobs`` (cells are
  independent; within a cell the simulation is serial);
* adding or removing one device never shifts the faults seen by
  another.

Whole-device failures are *scheduled instants*, not draws: the config
lists ``(device_id, time)`` pairs and the simulator fails the device the
first time its clock passes the instant.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

import numpy as np

from ..errors import ConfigError


class FaultKind(Enum):
    """What went wrong with one device command."""

    #: Unrecoverable read error: the page's media is unreadable
    #: (persistent — retries never help, reconstruction does).
    URE = "ure"
    #: Transient command timeout (a retry may succeed).
    TIMEOUT = "timeout"
    #: Whole-device failure at a scheduled instant.
    DEVICE_FAIL = "device_fail"


@dataclass(frozen=True)
class FaultConfig:
    """Rates and instants of the injected faults.

    Rates are per-event probabilities: ``ure_rate`` per page read on a
    member disk, ``timeout_rate`` per device command (disks and the
    SSD).  ``timeout_s`` is the stall each timeout occurrence adds
    before the command can be retried.  ``device_failures`` schedules
    whole-device losses as ``(device_id, time)`` pairs, e.g.
    ``(("disk2", 0.5),)``.
    """

    seed: int = 0
    ure_rate: float = 0.0
    timeout_rate: float = 0.0
    timeout_s: float = 0.025
    device_failures: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        for name in ("ure_rate", "timeout_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be a probability, got {rate}")
        if self.timeout_s < 0:
            raise ConfigError("timeout_s must be >= 0")
        for device, instant in self.device_failures:
            if instant < 0:
                raise ConfigError(f"device failure instant for {device!r} "
                                  f"must be >= 0, got {instant}")

    def row(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "ure_rate": self.ure_rate,
            "timeout_rate": self.timeout_rate,
            "timeout_s": self.timeout_s,
            "device_failures": [list(f) for f in self.device_failures],
        }


@dataclass(frozen=True)
class FaultEvent:
    """One entry of the fault/repair event log."""

    time: float
    device: str
    kind: str          # FaultKind value, or a repair action (see timed.py)
    page: int = -1     # device page the event concerns (-1: whole device)
    detail: str = ""

    def row(self) -> dict[str, Any]:
        return {
            "time": round(self.time, 9),
            "device": self.device,
            "kind": self.kind,
            "page": self.page,
            "detail": self.detail,
        }


def _stream_seed(seed: int, device_id: str) -> int:
    """Per-device stream seed, hash-derived like the sweep cell seeds."""
    digest = hashlib.sha256(f"faults:{seed}:{device_id}".encode()).hexdigest()
    return int(digest[:16], 16)


class DeviceFaultStream:
    """One device's bound view of the schedule: its RNG + its fail instant.

    The device server calls :meth:`draw` once per command attempt (and
    once per page for read media errors); each call advances only this
    device's stream.
    """

    def __init__(self, device_id: str, config: FaultConfig,
                 media_faults: bool = True) -> None:
        self.device_id = device_id
        self.config = config
        #: Whether URE draws apply (member disks yes; the SSD cache
        #: surfaces only timeouts — a cache-side media error is a miss,
        #: not a data-loss hazard, because every write reached RAID).
        self.media_faults = media_faults
        self._rng = np.random.Generator(
            np.random.PCG64(_stream_seed(config.seed, device_id))
        )
        self.fail_at: float | None = None
        for device, instant in config.device_failures:
            if device == device_id:
                self.fail_at = instant if self.fail_at is None \
                    else min(self.fail_at, instant)
        self.draws = 0

    def failed_by(self, now: float) -> bool:
        """Whether the scheduled whole-device failure has struck by ``now``."""
        return self.fail_at is not None and now >= self.fail_at

    def draw(self, is_read: bool, npages: int = 1) -> FaultKind | None:
        """Fault outcome for one command attempt (None: it succeeds).

        A timeout is drawn per command; a URE per page read.  The same
        number of variates is consumed for every command shape, so the
        stream position depends only on the device's serve history.
        """
        cfg = self.config
        self.draws += 1
        timeout = self._rng.random() < cfg.timeout_rate
        ure = False
        if is_read and self.media_faults and cfg.ure_rate > 0.0:
            ure = bool((self._rng.random(npages) < cfg.ure_rate).any())
        elif is_read and self.media_faults:
            self._rng.random(npages)  # keep the stream position shape-stable
        if timeout:
            return FaultKind.TIMEOUT
        if ure:
            return FaultKind.URE
        return None


class FaultSchedule:
    """Factory and registry of per-device fault streams + the event log."""

    def __init__(self, config: FaultConfig | None = None, **kwargs: Any) -> None:
        if config is None:
            config = FaultConfig(**kwargs)
        elif kwargs:
            raise ConfigError("pass either a FaultConfig or keyword rates, not both")
        self.config = config
        self._streams: dict[str, DeviceFaultStream] = {}
        self.events: list[FaultEvent] = []

    def stream(self, device_id: str, media_faults: bool = True) -> DeviceFaultStream:
        """The (memoised) fault stream for one device."""
        if device_id not in self._streams:
            self._streams[device_id] = DeviceFaultStream(
                device_id, self.config, media_faults=media_faults
            )
        return self._streams[device_id]

    def record(self, time: float, device: str, kind: str, page: int = -1,
               detail: str = "") -> FaultEvent:
        event = FaultEvent(time=time, device=device, kind=kind, page=page,
                           detail=detail)
        self.events.append(event)
        return event

    def event_rows(self) -> list[dict[str, Any]]:
        """The event log as JSON-ready rows (already in time order)."""
        return [e.row() for e in self.events]


@dataclass
class FaultCounters:
    """Aggregated event counts for experiment rows."""

    ures: int = 0
    timeouts: int = 0
    retries: int = 0
    reconstructions: int = 0
    stale_escalations: int = 0
    repairs: int = 0
    device_failures: int = 0
    extra: dict[str, int] = field(default_factory=dict)

    def row(self) -> dict[str, int]:
        return {
            "ures": self.ures,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "reconstructions": self.reconstructions,
            "stale_escalations": self.stale_escalations,
            "repairs": self.repairs,
            "device_failures": self.device_failures,
        }
