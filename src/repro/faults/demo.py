"""The vulnerability-window narrative as a deterministic event log.

:func:`demo_event_log` scripts the paper's vulnerability-window story
(the ``kdd-repro faults --events-out`` artifact):

1. a latent sector error on a **fresh** stripe is reconstructed from
   the surviving peers + parity on the next read;
2. the same error on a **stale-parity** stripe is *not* reconstructible
   (``DegradedError``) until the cleaner repairs the parity — after
   which the read succeeds with the correct payload.

It needs nothing from the harness — just a payload-carrying RAID array
and a fault schedule — so it lives in the simulation layer; the sweep
drivers that do need the harness are in
:mod:`repro.harness.faultsweep`.
"""

from __future__ import annotations

from typing import Any

from ..errors import DegradedError, RaidError, raises
from ..raid.array import RAIDArray
from ..raid.layout import RaidLevel
from .schedule import FaultConfig, FaultSchedule


@raises(RaidError)
def demo_event_log() -> list[dict[str, Any]]:
    """The vulnerability-window narrative as a deterministic event log.

    Scripted against a payload-carrying RAID-5 array (no RNG at all), so
    the emitted rows are identical on every run — the CI artifact diff
    is meaningful.
    """
    schedule = FaultSchedule(FaultConfig())
    raid = RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=2,
                     pages_per_disk=16, store_data=True, page_size=64)
    for lpage in range(raid.capacity_pages):
        raid.write(lpage, data=[bytes([lpage % 251]) * 64])

    # -- act 1: URE on a fresh stripe is survivable --------------------------
    fresh = raid.layout.locate(0)
    raid.mark_media_error(fresh.disk, fresh.disk_page)
    schedule.record(1.0, f"disk{fresh.disk}", "ure", fresh.disk_page,
                    detail="latent sector error on a fresh stripe")
    ops = raid.read(0)  # reconstructs from peers + parity
    payload = bytes(raid.read_data(0))
    assert payload == bytes([0]) * 64, "reconstruction returned wrong data"
    schedule.record(1.1, f"disk{fresh.disk}", "reconstruction",
                    fresh.disk_page,
                    detail=f"degraded read served from {len(ops)} peer reads")
    raid.repair_page(fresh.disk, fresh.disk_page)
    schedule.record(1.2, f"disk{fresh.disk}", "media_repair",
                    fresh.disk_page, detail="page rewritten from reconstruction")

    # -- act 2: the same fault inside the vulnerability window ---------------
    stale_lpage = raid.layout.stripe_data_pages  # first page of stripe 1
    raid.write_without_parity_update(stale_lpage, data=b"\xab" * 64)
    schedule.record(2.0, "array", "stale_parity",
                    detail=f"stripe 1 parity delayed (page {stale_lpage} "
                           "written without parity update)")
    victim = raid.layout.locate(stale_lpage + 1)  # sibling in stripe 1
    raid.mark_media_error(victim.disk, victim.disk_page)
    schedule.record(2.1, f"disk{victim.disk}", "ure", victim.disk_page,
                    detail="latent sector error inside the vulnerability window")
    try:
        raid.read(stale_lpage + 1)
        raise AssertionError("stale-parity degraded read must fail")
    except DegradedError as exc:
        schedule.record(2.2, f"disk{victim.disk}", "degraded_error",
                        victim.disk_page, detail=str(exc)[:120])

    # -- act 3: the cleaner repairs parity; the window closes ----------------
    raid.parity_update(1, cached_pages=list(raid.layout.stripe_pages(1)))
    schedule.record(3.0, "array", "parity_repair",
                    detail="cleaner repaired stripe 1 parity")
    ops = raid.read(stale_lpage + 1)  # now reconstructible
    expected = bytes([(stale_lpage + 1) % 251]) * 64
    assert bytes(raid.read_data(stale_lpage + 1)) == expected
    schedule.record(3.1, f"disk{victim.disk}", "reconstruction",
                    victim.disk_page,
                    detail="degraded read served once parity was repaired")
    raid.repair_page(victim.disk, victim.disk_page)
    schedule.record(3.2, f"disk{victim.disk}", "media_repair",
                    victim.disk_page, detail="window closed; array consistent")
    assert not raid.media_errors and not raid.stale_stripes
    return schedule.event_rows()
