"""Bounded, deterministic retry with exponential backoff.

A transient device timeout is retried up to ``max_retries`` times; each
attempt waits ``base_backoff * multiplier**attempt`` (attempt 0 is the
first retry).  The waits are *modelled as added latency* on the faulted
command — the device stays busy, later requests queue behind it — and
when retries run out the fault escalates (reconstruction for member
disks, :class:`~repro.errors.DeviceTimeoutError` where there is no
redundancy to fall back on).

No jitter: backoff is a pure function of the attempt number, so two
runs of the same schedule produce identical timings.  (Jittered backoff
exists to de-synchronise independent clients; a simulation wants the
opposite.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ConfigError


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a transient fault, and how long to wait."""

    max_retries: int = 3
    base_backoff: float = 0.001
    multiplier: float = 2.0
    name: str = "backoff"

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.base_backoff < 0:
            raise ConfigError("base_backoff must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigError("multiplier must be >= 1")

    def backoff(self, attempt: int) -> float:
        """Wait before retry number ``attempt`` (0-based), in seconds."""
        if attempt < 0:
            raise ConfigError("attempt must be >= 0")
        return self.base_backoff * self.multiplier**attempt

    def total_backoff(self, attempts: int) -> float:
        """Accumulated wait after ``attempts`` retries."""
        return sum(self.backoff(i) for i in range(attempts))

    def row(self) -> dict[str, Any]:
        return {
            "retry": self.name,
            "max_retries": self.max_retries,
            "base_backoff": self.base_backoff,
            "multiplier": self.multiplier,
        }


#: Named policies the experiment driver sweeps over.
RETRY_POLICIES: dict[str, RetryPolicy] = {
    # fail fast: first timeout escalates immediately
    "none": RetryPolicy(max_retries=0, base_backoff=0.0, name="none"),
    # constant 1 ms pauses
    "fixed": RetryPolicy(max_retries=3, base_backoff=0.001, multiplier=1.0,
                         name="fixed"),
    # exponential 1-2-4 ms (the default)
    "backoff": RetryPolicy(max_retries=3, base_backoff=0.001, multiplier=2.0,
                           name="backoff"),
}


def retry_policy(name: str) -> RetryPolicy:
    """Look up a named retry policy for the CLI / sweep drivers."""
    try:
        return RETRY_POLICIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown retry policy {name!r}; choose from {sorted(RETRY_POLICIES)}"
        ) from None
