"""Measure vulnerability-window exposure from a real KDD run.

The reliability models need two empirical rates — how often the array
*enters* a vulnerability window (some stripe's parity goes stale) and
how fast the cleaner/scrubber *clears* it.  Rather than positing them,
this module measures them: a small KDD stack runs a seeded workload,
the stale-stripe count is sampled after every access, and an optional
scrubber sweeps stripes on a fixed period.  The sample series reduces
to the shared :class:`~repro.stats.exposure.VulnerabilityExposure`
shape, and :func:`derive_params` converts it — via an IOPS figure that
maps accesses to wall time — into the per-hour rates the Markov and
Monte-Carlo models consume.

The knobs mirror the sweep axes of the reliability cell: *cleaner
aggressiveness* (``dirty_threshold``/``low_watermark``), *scrub period*
and *rebuild priority* (the latter passes straight through to the
models; it does not affect the exposure measurement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..cache.base import CacheConfig
from ..core.kdd import KDD
from ..errors import ConfigError
from ..faults.scrubber import Scrubber, ScrubReport
from ..raid.array import RAIDArray, RaidLevel
from ..stats.exposure import VulnerabilityExposure
from .mttdl import ReliabilityParams


@dataclass(frozen=True)
class ExposureRunConfig:
    """One measured operating point of the cleaner/scrubber policy."""

    accesses: int = 2000
    universe_pages: int = 256
    read_ratio: float = 0.3
    cache_pages: int = 64
    seed: int = 0
    #: cleaner aggressiveness (CacheConfig watermarks)
    dirty_threshold: float = 0.50
    low_watermark: float = 0.25
    #: scrub every N accesses (0 disables scrubbing)
    scrub_period: int = 0
    #: stripes per scrub step
    scrub_stripes: int = 4

    def __post_init__(self) -> None:
        if self.accesses < 1:
            raise ConfigError("accesses must be >= 1")
        if self.scrub_period < 0:
            raise ConfigError("scrub_period must be >= 0")


def measure_exposure(
    cfg: ExposureRunConfig,
) -> tuple[VulnerabilityExposure, ScrubReport, np.ndarray]:
    """Run the workload; returns (exposure, scrub tallies, raw samples).

    The samples array holds the stale-stripe count after every access —
    the empirical distribution the Monte-Carlo estimator draws failure
    instants from.  The scrub report is empty when scrubbing is off —
    callers report it in the same JSON block either way so the shapes
    stay comparable.
    """
    # Size the array to the working set (one chunk column per stripe of
    # the universe): the scrubber's wrap-around sweep then spends its
    # whole period on stripes the workload can actually make stale.
    chunk_pages = 4
    ndisks = 5
    data_per_stripe = chunk_pages * (ndisks - 1)
    stripes = -(-cfg.universe_pages // data_per_stripe)
    raid = RAIDArray(
        RaidLevel.RAID5, ndisks=ndisks, chunk_pages=chunk_pages,
        pages_per_disk=stripes * chunk_pages,
    )
    kdd = KDD(
        CacheConfig(
            cache_pages=cfg.cache_pages,
            ways=16,
            group_pages=16,
            dirty_threshold=cfg.dirty_threshold,
            low_watermark=cfg.low_watermark,
            seed=cfg.seed,
        ),
        raid,
    )
    scrubber = (
        Scrubber(raid, charge_verify_reads=False) if cfg.scrub_period else None
    )
    scrub_report = ScrubReport()

    rng = np.random.default_rng(cfg.seed)
    lbas = rng.integers(0, cfg.universe_pages, size=cfg.accesses)
    reads = rng.random(cfg.accesses) < cfg.read_ratio

    samples: list[int] = []
    for i in range(cfg.accesses):
        kdd.access(int(lbas[i]), bool(reads[i]))
        if scrubber is not None and (i + 1) % cfg.scrub_period == 0:
            step_report, _ops = scrubber.step(cfg.scrub_stripes)
            scrub_report.merge(step_report)
        samples.append(len(raid.stale_stripes))
    series = np.asarray(samples, dtype=np.int64)
    return VulnerabilityExposure.from_samples(samples), scrub_report, series


def derive_params(
    exposure: VulnerabilityExposure,
    iops: float,
    ndisks: int = 5,
    disk_mttf_h: float = 5.0e4,
    rebuild_h: float = 240.0,
    rebuild_priority: float = 1.0,
    horizon_h: float = 5.0e3,
) -> ReliabilityParams:
    """Convert a measured exposure into model rates.

    ``iops`` maps the access-based units to hours.  The clear rate is
    the reciprocal mean window; the entry rate is chosen so the chain's
    stationary exposure equals the measured fraction (``alpha/(alpha +
    omega) = f``).  A run that was stale throughout (no window ever
    closed, no clean access seen) is indistinguishable from permanent
    vulnerability; its fraction is capped just below 1 so the rates
    stay finite — the resulting MTTDL is ~``1/(n*lam)`` either way.
    """
    if iops <= 0:
        raise ConfigError("iops must be > 0")
    hours_per_access = 1.0 / (iops * 3600.0)
    if exposure.stale_span == 0:
        alpha = omega = 0.0
    else:
        mean_window_h = exposure.mean_window * hours_per_access
        omega = 1.0 / mean_window_h
        fraction = min(exposure.exposure_fraction, 0.9999)
        alpha = omega * fraction / (1.0 - fraction)
    return ReliabilityParams(
        ndisks=ndisks,
        disk_mttf_h=disk_mttf_h,
        rebuild_h=rebuild_h,
        rebuild_priority=rebuild_priority,
        vuln_entry_per_h=alpha,
        vuln_clear_per_h=omega,
        horizon_h=horizon_h,
    )


@dataclass(frozen=True)
class ReliabilityReport:
    """One reliability grid point: measurement, both models, agreement."""

    exposure: VulnerabilityExposure
    scrub: ScrubReport
    params: ReliabilityParams
    markov: "Any"  # MarkovResult
    monte_carlo: "Any"  # MonteCarloResult
    #: |p_mc - p_markov| must not exceed this (4 sigma + 2% + floor)
    tolerance: float
    agrees: bool

    def row(self) -> dict[str, Any]:
        mc = self.monte_carlo
        exposure = self.exposure
        # Analytic severity: mean stale stripes given at least one.
        analytic_severity = (
            exposure.mean_stale_stripes / exposure.exposure_fraction
            if exposure.exposure_fraction
            else 0.0
        )
        return {
            "exposure": exposure.row(),
            "scrub": self.scrub.row(),
            "params": self.params.row(),
            "markov": self.markov.row(),
            "monte_carlo": mc.row(),
            "p_loss_delta": abs(mc.p_loss - self.markov.p_loss),
            "tolerance": self.tolerance,
            "agrees": self.agrees,
            "stripes_per_loss_analytic": round(analytic_severity, 4),
            "mttdl_ratio": (
                mc.mttdl_h / self.markov.mttdl_h
                if mc.losses and self.markov.mttdl_h > 0
                else None
            ),
        }


#: Cross-check tolerance: statistical half-width in binomial sigmas ...
TOLERANCE_SIGMA = 4.0
#: ... plus a relative model allowance (quasi-static vs exact chain) ...
TOLERANCE_REL = 0.02
#: ... plus an absolute floor for near-zero loss probabilities.
TOLERANCE_ABS = 0.002


def run_reliability_point(
    cfg: ExposureRunConfig,
    iops: float = 2.0e4,
    ndisks: int = 5,
    disk_mttf_h: float = 5.0e4,
    rebuild_h: float = 240.0,
    rebuild_priority: float = 1.0,
    horizon_h: float = 5.0e3,
    trials: int = 4000,
    model_seed: int = 0,
) -> ReliabilityReport:
    """Measure, model, cross-check: the full pipeline for one point."""
    from .montecarlo import monte_carlo_loss
    from .mttdl import markov_mttdl

    exposure, scrub, samples = measure_exposure(cfg)
    params = derive_params(
        exposure,
        iops=iops,
        ndisks=ndisks,
        disk_mttf_h=disk_mttf_h,
        rebuild_h=rebuild_h,
        rebuild_priority=rebuild_priority,
        horizon_h=horizon_h,
    )
    markov = markov_mttdl(params)
    mc = monte_carlo_loss(
        params, trials=trials, seed=model_seed, stale_samples=samples
    )
    tolerance = (
        TOLERANCE_SIGMA * mc.p_loss_sigma
        + TOLERANCE_REL * markov.p_loss
        + TOLERANCE_ABS
    )
    agrees = abs(mc.p_loss - markov.p_loss) <= tolerance
    return ReliabilityReport(
        exposure=exposure,
        scrub=scrub,
        params=params,
        markov=markov,
        monte_carlo=mc,
        tolerance=tolerance,
        agrees=agrees,
    )
