"""Monte-Carlo data-loss estimator, cross-checking the Markov model.

Simulating the full CTMC per trial is infeasible — vulnerability
windows oscillate ~``omega/lam`` times per disk lifetime — so the
estimator uses the quasi-static separation of timescales the real
system has (millisecond windows, year-scale failures): it draws only
the *member-failure* events (a handful per mission) and, at each one,
asks whether the failure landed inside a vulnerability window
(Bernoulli with the measured exposure fraction) and, if not, whether
the rebuild raced a second failure.  This is exactly the "stale-parity
stripes x seeded member-failure hazard" product, and it converges to
the Markov chain's answer precisely when the timescales separate —
which is what the cross-check asserts.

Determinism discipline: every trial owns a ``sha256``-derived PCG64
stream (the same rule as the fault schedules and sweep cells), so the
estimate is byte-identical for any trial chunking or ``--jobs`` count.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..errors import ConfigError
from .mttdl import ReliabilityParams


def _trial_seed(seed: int, trial: int) -> int:
    """Per-trial stream seed, hash-derived like the fault schedules."""
    digest = hashlib.sha256(f"reliability:{seed}:{trial}".encode()).hexdigest()
    return int(digest[:16], 16)


@dataclass(frozen=True)
class MonteCarloResult:
    """Aggregated loss statistics over one batch of trials."""

    trials: int
    losses: int
    #: losses where the failure struck during a vulnerability window
    vulnerable_losses: int
    #: losses where a second member failed before the rebuild finished
    rebuild_losses: int
    #: summed time-at-risk across trials (loss time or horizon), hours
    time_at_risk_h: float
    #: stale stripes struck across the vulnerable losses (severity; 0
    #: when the estimator ran without a measured stale distribution)
    stripes_struck: int = 0

    @property
    def p_loss(self) -> float:
        return self.losses / self.trials if self.trials else 0.0

    @property
    def p_loss_sigma(self) -> float:
        """One binomial standard error on :attr:`p_loss`."""
        if not self.trials:
            return 0.0
        p = self.p_loss
        return math.sqrt(p * (1.0 - p) / self.trials)

    @property
    def mttdl_h(self) -> float:
        """Censored-exponential MTTDL estimate (inf if no loss seen)."""
        if not self.losses:
            return math.inf
        return self.time_at_risk_h / self.losses

    @property
    def mean_stripes_lost(self) -> float:
        """Mean stale stripes struck per vulnerable loss (severity)."""
        if not self.vulnerable_losses:
            return 0.0
        return self.stripes_struck / self.vulnerable_losses

    def row(self) -> dict[str, Any]:
        return {
            "trials": self.trials,
            "losses": self.losses,
            "vulnerable_losses": self.vulnerable_losses,
            "rebuild_losses": self.rebuild_losses,
            "p_loss": self.p_loss,
            "p_loss_sigma": round(self.p_loss_sigma, 8),
            "mttdl_h": self.mttdl_h,
            "mean_stripes_lost": round(self.mean_stripes_lost, 4),
        }


def monte_carlo_loss(
    params: ReliabilityParams,
    trials: int = 4000,
    seed: int = 0,
    stale_samples: "np.ndarray | list[int] | None" = None,
) -> MonteCarloResult:
    """Estimate P(data loss within the horizon) from seeded trials.

    With ``stale_samples`` (per-access stale-stripe counts from a
    measured run, see :mod:`repro.reliability.measure`) each failure
    instant draws the array state from the *empirical* distribution —
    loss iff the count is nonzero, severity the count itself.  Without
    samples the vulnerable indicator falls back to a Bernoulli draw on
    the stationary exposure fraction; both have the same hit
    probability, so the Markov cross-check holds either way.
    """
    if trials < 1:
        raise ConfigError("trials must be >= 1")
    n = params.ndisks
    lam, mu = params.lam, params.mu
    fail_rate = n * lam
    second_rate = (n - 1) * lam
    exposure = params.exposure_fraction
    horizon = params.horizon_h
    samples = None
    if stale_samples is not None:
        samples = np.asarray(stale_samples, dtype=np.int64)
        if samples.size == 0:
            raise ConfigError("stale_samples must be non-empty")

    losses = vulnerable_losses = rebuild_losses = 0
    stripes_struck = 0
    time_at_risk = 0.0
    for trial in range(trials):
        rng = np.random.Generator(np.random.PCG64(_trial_seed(seed, trial)))
        t = 0.0
        while True:
            t += rng.exponential(1.0 / fail_rate)
            if t >= horizon:
                time_at_risk += horizon
                break
            # Did the failure land inside a vulnerability window?  The
            # stale stripes have no valid parity: their data is gone.
            if samples is not None:
                struck = int(samples[rng.integers(samples.size)])
                vulnerable = struck > 0
            else:
                struck = 0
                vulnerable = rng.random() < exposure
            if vulnerable:
                losses += 1
                vulnerable_losses += 1
                stripes_struck += struck
                time_at_risk += t
                break
            # Degraded: the rebuild races the next member failure.
            rebuild = rng.exponential(1.0 / mu)
            second = rng.exponential(1.0 / second_rate)
            if second < rebuild:
                if t + second >= horizon:
                    time_at_risk += horizon
                    break
                losses += 1
                rebuild_losses += 1
                time_at_risk += t + second
                break
            t += rebuild
        # (per-trial stream fully consumed; next trial reseeds)
    return MonteCarloResult(
        trials=trials,
        losses=losses,
        vulnerable_losses=vulnerable_losses,
        rebuild_losses=rebuild_losses,
        time_at_risk_h=time_at_risk,
        stripes_struck=stripes_struck,
    )
