"""Stochastic reliability analysis of KDD's delayed-parity window.

The paper argues (Section III-E) that delaying parity updates is safe
because the cleaner bounds how long any stripe's parity stays stale.
This package quantifies the residual risk and how the operational knobs
move it:

* :mod:`repro.reliability.measure` — run a real KDD stack (optionally
  with a background scrubber) and measure the vulnerability-window
  exposure, in the shared
  :class:`~repro.stats.exposure.VulnerabilityExposure` shape;
* :mod:`repro.reliability.mttdl` — the analytic four-state Markov chain
  (healthy / vulnerable / degraded / data loss): exact MTTDL by linear
  solve, robust to the chain's extreme stiffness;
* :mod:`repro.reliability.montecarlo` — an independent seeded
  Monte-Carlo estimator over the member-failure hazard, byte-identical
  for any ``--jobs`` count, cross-checked against the Markov answer
  within a stated tolerance.

The sweep integration (``reliability`` cell kind, ``kdd-repro
reliability``) lives in :mod:`repro.harness.relsweep` — the layering
contract keeps simulation code from importing the harness.
"""

from __future__ import annotations

from .measure import (
    ExposureRunConfig,
    ReliabilityReport,
    derive_params,
    measure_exposure,
    run_reliability_point,
)
from .montecarlo import MonteCarloResult, monte_carlo_loss
from .mttdl import MarkovResult, ReliabilityParams, markov_mttdl

__all__ = [
    "ExposureRunConfig",
    "MarkovResult",
    "MonteCarloResult",
    "ReliabilityParams",
    "ReliabilityReport",
    "derive_params",
    "markov_mttdl",
    "measure_exposure",
    "monte_carlo_loss",
    "run_reliability_point",
]
