"""Analytic Markov MTTDL model for RAID-5 behind a delayed-parity cache.

The classic RAID-5 Markov chain (healthy -> degraded -> data loss) gets
one extra state for KDD's delayed parity: *vulnerable* — all members
healthy but at least one stripe's parity stale.  A member failure from
that state loses the stale stripes' data directly: there is nothing to
reconstruct them from.  (A failure from the *degraded* state never
re-enters the vulnerable state because KDD switches to immediate parity
updates while the array is degraded, Section III-E.)

::

            alpha                 n*lam
      S0  <------>  S0v     S0v --------> DL
            omega
       |  n*lam          mu          (n-1)*lam
      S0 --------> S1;  S1 --> S0;  S1 ----------> DL

The chain is *stiff* by construction — vulnerability windows last
milliseconds to seconds, disk lifetimes are years — which is exactly
why the analytic solve matters: the expected-absorption-time system is
a well-conditioned 3x3 linear solve regardless of the rate separation,
where naive transient simulation would need ~``omega/lam`` events.

:func:`markov_mttdl` returns the exact MTTDL of the chain plus the
survival-based loss probability ``1 - exp(-T/MTTDL)`` — accurate
whenever the horizon exceeds the chain's (fast) mixing time, the regime
every physically sensible parameterisation is in.  The Monte-Carlo
estimator (:mod:`repro.reliability.montecarlo`) cross-checks it from
independent draws.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..errors import ConfigError


@dataclass(frozen=True)
class ReliabilityParams:
    """Rates (per hour) feeding both the Markov and Monte-Carlo models."""

    #: array width (data + parity members)
    ndisks: int
    #: mean time to failure of one member, hours
    disk_mttf_h: float
    #: mean rebuild time at priority 1.0, hours
    rebuild_h: float
    #: scales the rebuild rate (2.0 = twice as fast)
    rebuild_priority: float
    #: rate of entering a vulnerability window (all-clean -> stale), 1/h
    vuln_entry_per_h: float
    #: rate of clearing it (cleaner + scrubber), 1/h
    vuln_clear_per_h: float
    #: mission time for the loss-probability figure, hours
    horizon_h: float

    def __post_init__(self) -> None:
        if self.ndisks < 2:
            raise ConfigError("need at least 2 members for a parity level")
        for name in ("disk_mttf_h", "rebuild_h", "rebuild_priority",
                     "horizon_h"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be > 0")
        for name in ("vuln_entry_per_h", "vuln_clear_per_h"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")

    @property
    def lam(self) -> float:
        """Per-member failure rate, 1/h."""
        return 1.0 / self.disk_mttf_h

    @property
    def mu(self) -> float:
        """Effective rebuild rate, 1/h."""
        return self.rebuild_priority / self.rebuild_h

    @property
    def exposure_fraction(self) -> float:
        """Stationary fraction of healthy time spent vulnerable."""
        total = self.vuln_entry_per_h + self.vuln_clear_per_h
        return self.vuln_entry_per_h / total if total else 0.0

    def row(self) -> dict[str, Any]:
        return {
            "ndisks": self.ndisks,
            "disk_mttf_h": self.disk_mttf_h,
            "rebuild_h": self.rebuild_h,
            "rebuild_priority": self.rebuild_priority,
            "vuln_entry_per_h": round(self.vuln_entry_per_h, 6),
            "vuln_clear_per_h": round(self.vuln_clear_per_h, 6),
            "horizon_h": self.horizon_h,
        }


@dataclass(frozen=True)
class MarkovResult:
    """Closed-form reliability figures for one parameter point."""

    mttdl_h: float
    p_loss: float
    exposure_fraction: float

    def row(self) -> dict[str, Any]:
        return {
            "mttdl_h": self.mttdl_h,
            "p_loss": self.p_loss,
            "exposure_fraction": round(self.exposure_fraction, 6),
        }


def markov_mttdl(params: ReliabilityParams) -> MarkovResult:
    """Solve the chain for the expected time to data loss from S0.

    With ``T_i`` the expected absorption time from state ``i`` and
    ``R_i`` its total exit rate, each transient state satisfies
    ``T_i = 1/R_i + sum_j (r_ij / R_i) T_j`` — three equations, solved
    exactly.  Zero vulnerability rates degenerate gracefully: with
    ``alpha = 0`` the chain is the textbook RAID-5 model.
    """
    n = params.ndisks
    lam, mu = params.lam, params.mu
    alpha, omega = params.vuln_entry_per_h, params.vuln_clear_per_h

    # Exit rates of S0, S0v, S1.
    r0 = alpha + n * lam
    rv = omega + n * lam
    r1 = mu + (n - 1) * lam
    # T = b + M T  =>  (I - M) T = b, row order (S0, S0v, S1).
    m = np.array(
        [
            [0.0, alpha / r0, n * lam / r0],
            [omega / rv, 0.0, 0.0],
            [mu / r1, 0.0, 0.0],
        ]
    )
    b = np.array([1.0 / r0, 1.0 / rv, 1.0 / r1])
    times = np.linalg.solve(np.eye(3) - m, b)
    mttdl = float(times[0])
    p_loss = 1.0 - math.exp(-params.horizon_h / mttdl)
    return MarkovResult(
        mttdl_h=mttdl,
        p_loss=p_loss,
        exposure_fraction=params.exposure_fraction,
    )
