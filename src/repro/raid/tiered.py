"""Two-tier RAID-1/RAID-5 hierarchy (HotMirroring / AutoRAID, §V-A).

Mogi & Kitsuregawa's Hot Mirroring and HP's AutoRAID hide the small-
write penalty by *placement*: actively written (hot) data lives in a
mirrored tier where an update costs two plain writes, while inactive
(cold) data lives in space-efficient RAID-5.  Data migrates between the
tiers as its temperature changes — the cost that bounds the approach,
and the contrast with KDD, which leaves placement alone and absorbs the
penalty in the cache layer instead.

The mirror tier is modelled as a fixed-capacity region managed LRU by
write recency; promotions and demotions are accounted as real member
I/O on the respective arrays.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..errors import CacheError, ConfigError
from .array import DiskOp, RAIDArray
from .layout import RaidLevel


@dataclass
class TierCounters:
    """Migration and placement statistics."""

    mirror_writes: int = 0
    raid5_writes: int = 0
    promotions: int = 0
    demotions: int = 0

    @property
    def migrations(self) -> int:
        return self.promotions + self.demotions


class TieredRaid:
    """Hot data in RAID-1, cold data in RAID-5, write-recency migration."""

    def __init__(
        self,
        parity_array: RAIDArray,
        mirror_pages: int,
        mirror_ndisks: int = 2,
        promote_on_write: bool = True,
    ) -> None:
        if parity_array.level is not RaidLevel.RAID5:
            raise ConfigError("the cold tier must be RAID-5")
        if mirror_pages < 1:
            raise ConfigError("mirror tier needs at least one page")
        self.cold = parity_array
        self.mirror_capacity = mirror_pages
        self.hot = RAIDArray(
            RaidLevel.RAID1,
            ndisks=mirror_ndisks,
            chunk_pages=parity_array.layout.chunk_pages,
            pages_per_disk=mirror_pages,
            page_size=parity_array.page_size,
        )
        self.promote_on_write = promote_on_write
        # lba -> mirror slot, in LRU order of last write
        self._hot_map: OrderedDict[int, int] = OrderedDict()
        self._free_slots = list(range(mirror_pages - 1, -1, -1))
        self.counters = TierCounters()

    # -- placement -----------------------------------------------------------

    def is_hot(self, lba: int) -> bool:
        return lba in self._hot_map

    @property
    def hot_pages(self) -> int:
        return len(self._hot_map)

    def _check(self, lba: int) -> None:
        if not 0 <= lba < self.cold.capacity_pages:
            raise ConfigError(f"lba {lba} out of range")

    # -- I/O -------------------------------------------------------------------

    def read(self, lba: int) -> list[DiskOp]:
        self._check(lba)
        slot = self._hot_map.get(lba)
        if slot is not None:
            return self.hot.read(slot)
        return self.cold.read(lba)

    def write(self, lba: int) -> list[DiskOp]:
        """Hot write: 2 mirror writes.  Cold write: promote (by default)
        so the page's next writes are cheap, demoting the coldest
        mirrored page if the tier is full."""
        self._check(lba)
        slot = self._hot_map.get(lba)
        if slot is not None:
            self._hot_map.move_to_end(lba)
            self.counters.mirror_writes += 1
            return self.hot.write(slot)
        if not self.promote_on_write:
            self.counters.raid5_writes += 1
            return self.cold.write(lba)
        ops = self._promote(lba)
        slot = self._hot_map[lba]
        self.counters.mirror_writes += 1
        return ops + self.hot.write(slot)

    # -- migration ----------------------------------------------------------------

    def _promote(self, lba: int) -> list[DiskOp]:
        """Move a page into the mirror tier (evicting LRU if needed)."""
        ops: list[DiskOp] = []
        if not self._free_slots:
            ops += self._demote_lru()
        slot = self._free_slots.pop()
        # the current content moves up: read cold copy, write both mirrors
        ops += self.cold.read(lba)
        ops += self.hot.write(slot)
        self._hot_map[lba] = slot
        self.counters.promotions += 1
        return ops

    def _demote_lru(self) -> list[DiskOp]:
        """Push the least-recently-written hot page back to RAID-5."""
        if not self._hot_map:
            raise CacheError("demotion with an empty mirror tier")
        lba, slot = self._hot_map.popitem(last=False)
        ops = self.hot.read(slot)
        ops += self.cold.write(lba)  # pays the small write once, on demotion
        self._free_slots.append(slot)
        self.counters.demotions += 1
        self.counters.raid5_writes += 1
        return ops

    def demote_all(self) -> list[DiskOp]:
        """Flush the mirror tier (e.g. before shrinking it)."""
        ops: list[DiskOp] = []
        while self._hot_map:
            ops += self._demote_lru()
        return ops

    # -- verification ------------------------------------------------------------

    def check_invariants(self) -> None:
        if len(self._hot_map) + len(self._free_slots) != self.mirror_capacity:
            raise CacheError("mirror slot accounting broken")
        slots = list(self._hot_map.values()) + self._free_slots
        if len(set(slots)) != self.mirror_capacity:
            raise CacheError("duplicate mirror slots")

    @property
    def member_ios(self) -> int:
        return self.hot.counters.total + self.cold.counters.total
