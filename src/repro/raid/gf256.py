"""Arithmetic in GF(2^8), the field behind RAID-6 Q parity.

Uses the conventional polynomial 0x11D (x^8 + x^4 + x^3 + x^2 + 1) and
log/antilog tables for O(1) multiply/divide.  All operations are
vectorised over numpy uint8 arrays so parity over whole 4 KiB pages is
a handful of table lookups.
"""

from __future__ import annotations

import numpy as np

from ..errors import RaidError

_POLY = 0x11D
_GENERATOR = 2


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= _POLY
    exp[255:510] = exp[0:255]  # doubled table avoids a modulo in mul
    return exp, log


EXP_TABLE, LOG_TABLE = _build_tables()


def gf_add(a: np.ndarray | int, b: np.ndarray | int) -> np.ndarray | int:
    """Addition in GF(2^8) is XOR."""
    return a ^ b


def gf_mul(a: np.ndarray | int, b: int) -> np.ndarray | int:
    """Multiply array/scalar ``a`` by scalar ``b`` in GF(2^8)."""
    if not 0 <= b <= 255:
        raise RaidError(f"scalar {b} outside GF(256)")
    if b == 0:
        return np.zeros_like(a) if isinstance(a, np.ndarray) else 0
    if b == 1:
        return a.copy() if isinstance(a, np.ndarray) else a
    log_b = int(LOG_TABLE[b])
    if isinstance(a, np.ndarray):
        out = np.zeros_like(a)
        nz = a != 0
        out[nz] = EXP_TABLE[LOG_TABLE[a[nz]] + log_b]
        return out
    if a == 0:
        return 0
    return int(EXP_TABLE[int(LOG_TABLE[a]) + log_b])


def gf_div(a: int, b: int) -> int:
    """Scalar division in GF(2^8)."""
    if b == 0:
        raise RaidError("division by zero in GF(256)")
    if a == 0:
        return 0
    return int(EXP_TABLE[(int(LOG_TABLE[a]) - int(LOG_TABLE[b])) % 255])


def gf_inv(a: int) -> int:
    """Multiplicative inverse."""
    return gf_div(1, a)


def gf_pow(base: int, exponent: int) -> int:
    """``base ** exponent`` in GF(2^8)."""
    if base == 0:
        if exponent == 0:
            return 1
        return 0
    return int(EXP_TABLE[(int(LOG_TABLE[base]) * exponent) % 255])


def generator_power(i: int) -> int:
    """g^i for the RAID-6 Q coefficients (g = 2)."""
    return gf_pow(_GENERATOR, i)
