"""RAID striping layouts: logical page -> (stripe, disk, disk page).

Implements the layouts the paper's storage substrate needs:

* RAID-0 (striping, no redundancy) — baseline,
* RAID-1 (mirroring),
* RAID-5 left-symmetric (Linux MD default; the testbed config),
* RAID-6 left-symmetric with adjacent P and Q.

Addresses are page-granular; ``chunk_pages`` pages form one chunk (the
paper's 64 KiB chunk = 16 x 4 KiB pages).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import ConfigError


class RaidLevel(Enum):
    RAID0 = 0
    RAID1 = 1
    RAID5 = 5
    RAID6 = 6


@dataclass(frozen=True)
class PageLocation:
    """Physical placement of one logical page."""

    stripe: int
    disk: int
    disk_page: int


class RaidLayout:
    """Address arithmetic for a striped array.

    ``ndisks`` is the member count; usable data chunks per stripe is
    ``ndisks - parity_disks`` (RAID-1: capacity of a single member).
    """

    def __init__(
        self,
        level: RaidLevel,
        ndisks: int,
        chunk_pages: int = 16,
        pages_per_disk: int | None = None,
    ) -> None:
        if chunk_pages < 1:
            raise ConfigError("chunk_pages must be >= 1")
        minimum = {
            RaidLevel.RAID0: 2,
            RaidLevel.RAID1: 2,
            RaidLevel.RAID5: 3,
            RaidLevel.RAID6: 4,
        }[level]
        if ndisks < minimum:
            raise ConfigError(f"{level.name} needs at least {minimum} disks")
        self.level = level
        self.ndisks = ndisks
        self.chunk_pages = chunk_pages
        self.pages_per_disk = pages_per_disk
        # Derived parameters, precomputed: the address arithmetic below
        # sits on every per-page hot path.
        #: Parity units per stripe (mirroring is replication, not parity).
        self.parity_disks = {
            RaidLevel.RAID0: 0,
            RaidLevel.RAID1: 0,
            RaidLevel.RAID5: 1,
            RaidLevel.RAID6: 2,
        }[level]
        self.data_disks_per_stripe = (
            1 if level is RaidLevel.RAID1 else ndisks - self.parity_disks
        )
        #: Logical pages covered by one stripe.
        self.stripe_data_pages = self.data_disks_per_stripe * chunk_pages
        self.fault_tolerance = {
            RaidLevel.RAID0: 0,
            RaidLevel.RAID1: ndisks - 1,
            RaidLevel.RAID5: 1,
            RaidLevel.RAID6: 2,
        }[level]

    @property
    def capacity_pages(self) -> int | None:
        if self.pages_per_disk is None:
            return None
        if self.level is RaidLevel.RAID1:
            return self.pages_per_disk
        return self.pages_per_disk * self.data_disks_per_stripe

    # -- placement ---------------------------------------------------------

    def stripe_of(self, lpage: int) -> int:
        if lpage < 0:
            raise ConfigError(f"negative logical page {lpage}")
        return lpage // self.stripe_data_pages

    def parity_disk(self, stripe: int) -> int | None:
        """P-parity disk of a stripe (None for RAID-0/1)."""
        if self.level is RaidLevel.RAID5:
            return (self.ndisks - 1) - (stripe % self.ndisks)
        if self.level is RaidLevel.RAID6:
            return (self.ndisks - 1) - (stripe % self.ndisks)
        return None

    def q_disk(self, stripe: int) -> int | None:
        """Q-parity disk (RAID-6 only; follows P with wraparound)."""
        if self.level is not RaidLevel.RAID6:
            return None
        p = self.parity_disk(stripe)
        assert p is not None
        return (p + 1) % self.ndisks

    def data_disk(self, stripe: int, chunk_index: int) -> int:
        """Member disk holding data chunk ``chunk_index`` of ``stripe``."""
        if not 0 <= chunk_index < self.data_disks_per_stripe:
            raise ConfigError(f"chunk index {chunk_index} out of range")
        if self.level is RaidLevel.RAID0:
            return (stripe + chunk_index) % self.ndisks
        if self.level is RaidLevel.RAID1:
            return 0  # primary copy; mirrors are handled by the array
        if self.level is RaidLevel.RAID5:
            p = self.parity_disk(stripe)
            assert p is not None
            return (p + 1 + chunk_index) % self.ndisks
        # RAID-6: data follows Q
        q = self.q_disk(stripe)
        assert q is not None
        return (q + 1 + chunk_index) % self.ndisks

    def locate(self, lpage: int) -> PageLocation:
        """Map a logical page to its stripe, member disk, and on-disk page."""
        stripe = self.stripe_of(lpage)
        within = lpage - stripe * self.stripe_data_pages
        chunk_index, offset = divmod(within, self.chunk_pages)
        disk = self.data_disk(stripe, chunk_index)
        disk_page = stripe * self.chunk_pages + offset
        if self.pages_per_disk is not None and disk_page >= self.pages_per_disk:
            raise ConfigError(f"logical page {lpage} beyond array capacity")
        return PageLocation(stripe=stripe, disk=disk, disk_page=disk_page)

    def parity_page(self, stripe: int, lpage: int) -> int:
        """On-disk page of the parity block covering ``lpage``'s position."""
        within = lpage - stripe * self.stripe_data_pages
        offset = within % self.chunk_pages
        return stripe * self.chunk_pages + offset

    def stripe_pages(self, stripe: int) -> range:
        """All logical pages belonging to a stripe."""
        start = stripe * self.stripe_data_pages
        return range(start, start + self.stripe_data_pages)
