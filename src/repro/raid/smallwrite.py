"""Classic small-write mitigations from the paper's related work (§V-A).

Implemented as alternative write paths over :class:`RAIDArray`, so the
benchmark harness can compare KDD against the pre-SSD-era answers to
the same problem:

* **Parity Logging** (Stodolsky et al., ISCA'93): a small write reads
  the old data, writes the new data, and appends the *parity update
  image* (old XOR new) to an NVRAM buffer that is flushed in large
  sequential writes to a dedicated log disk.  When the log region
  fills, all images are re-integrated into the parity with large
  sequential reads/writes.  Small-write cost drops from 2r+2w random
  I/Os to 1r+1w plus amortised sequential log traffic.

* **AFRAID** (Savage & Wilkes, ATC'96): writes update only the data
  block; affected stripes are marked non-redundant in NVRAM and their
  parity is recomputed during idle periods.  Fast, but the array is
  *not* always single-fault tolerant — the availability trade-off the
  paper contrasts KDD against (KDD keeps the recovery information in
  the SSD instead).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError, DegradedError
from .array import DiskOp, OpKind, RAIDArray
from .layout import RaidLevel


@dataclass
class SmallWriteCounters:
    """Traffic accounting for the alternative write paths."""

    data_reads: int = 0
    data_writes: int = 0
    log_writes: int = 0          # sequential log appends (pages)
    reintegration_ios: int = 0   # pages moved during parity reintegration
    parity_writes: int = 0

    @property
    def total(self) -> int:
        return (
            self.data_reads
            + self.data_writes
            + self.log_writes
            + self.reintegration_ios
            + self.parity_writes
        )


class ParityLoggingRaid:
    """RAID-5 with a parity update log on a dedicated log disk."""

    def __init__(
        self,
        array: RAIDArray,
        log_pages: int = 4096,
        nvram_pages: int = 64,
    ) -> None:
        if array.level is not RaidLevel.RAID5:
            raise ConfigError("parity logging is defined for RAID-5 here")
        if log_pages < nvram_pages or nvram_pages < 1:
            raise ConfigError("need log_pages >= nvram_pages >= 1")
        self.array = array
        self.log_pages = log_pages
        self.nvram_pages = nvram_pages
        #: the dedicated log disk gets the next member index
        self.log_disk = array.ndisks
        self.counters = SmallWriteCounters()
        self._nvram_images: list[int] = []   # lpages with buffered images
        self._log_used = 0
        self._logged_stripes: set[int] = set()
        self.reintegrations = 0

    def read(self, lpage: int, npages: int = 1) -> list[DiskOp]:
        return self.array.read(lpage, npages)

    def write(self, lpage: int) -> list[DiskOp]:
        """Small write: read old data, write new data, log the image."""
        loc = self.array.layout.locate(lpage)
        ops = [
            DiskOp(loc.disk, loc.disk_page, 1, True),
            DiskOp(loc.disk, loc.disk_page, 1, False),
        ]
        self.counters.data_reads += 1
        self.counters.data_writes += 1
        self.array.counters.account(ops)
        # the parity is now stale until reintegration
        self.array.stale_stripes.add(loc.stripe)
        self._logged_stripes.add(loc.stripe)
        self._nvram_images.append(lpage)
        if len(self._nvram_images) >= self.nvram_pages:
            ops += self._flush_nvram()
        return ops

    def _flush_nvram(self) -> list[DiskOp]:
        """One large sequential append of buffered parity update images."""
        n = len(self._nvram_images)
        if n == 0:
            return []
        op = DiskOp(self.log_disk, self._log_used, n, False)
        self.counters.log_writes += n
        self._log_used += n
        self._nvram_images.clear()
        if self._log_used >= self.log_pages:
            return [op] + self.reintegrate()
        return [op]

    def reintegrate(self) -> list[DiskOp]:
        """Apply all logged images to the parity with sequential I/O."""
        ops: list[DiskOp] = []
        if self._log_used:
            # sequential read of the whole log
            ops.append(DiskOp(self.log_disk, 0, self._log_used, True))
            self.counters.reintegration_ios += self._log_used
        for stripe in sorted(self._logged_stripes):
            p_disk = self.array.layout.parity_disk(stripe)
            assert p_disk is not None
            base = stripe * self.array.layout.chunk_pages
            chunk = self.array.layout.chunk_pages
            ops.append(DiskOp(p_disk, base, chunk, True, OpKind.PARITY))
            ops.append(DiskOp(p_disk, base, chunk, False, OpKind.PARITY))
            self.counters.reintegration_ios += chunk
            self.counters.parity_writes += chunk
            self.array.stale_stripes.discard(stripe)
        self._logged_stripes.clear()
        self._log_used = 0
        self.reintegrations += 1
        return ops

    def flush(self) -> list[DiskOp]:
        """Drain NVRAM and reintegrate everything (orderly shutdown)."""
        ops = self._flush_nvram()
        ops += self.reintegrate()
        return ops


class AfraidRaid:
    """AFRAID: frequently-redundant writes with idle-time parity repair."""

    def __init__(self, array: RAIDArray, max_unredundant_stripes: int = 128) -> None:
        if array.level is not RaidLevel.RAID5:
            raise ConfigError("AFRAID is defined for RAID-5 here")
        if max_unredundant_stripes < 1:
            raise ConfigError("max_unredundant_stripes must be >= 1")
        self.array = array
        self.max_unredundant = max_unredundant_stripes
        self.counters = SmallWriteCounters()
        self.idle_repairs = 0

    @property
    def unredundant_stripes(self) -> set[int]:
        return self.array.stale_stripes

    @property
    def window_of_vulnerability(self) -> int:
        """Stripes that would lose data if a disk failed right now."""
        return len(self.array.stale_stripes)

    def read(self, lpage: int, npages: int = 1) -> list[DiskOp]:
        return self.array.read(lpage, npages)

    def write(self, lpage: int) -> list[DiskOp]:
        """Data-only write; the stripe joins the NVRAM unredundant list."""
        ops = self.array.write_without_parity_update(lpage)
        self.counters.data_writes += 1
        if len(self.array.stale_stripes) > self.max_unredundant:
            ops = ops + self.idle_repair(len(self.array.stale_stripes) // 2)
        return ops

    def idle_repair(self, max_stripes: int | None = None) -> list[DiskOp]:
        """Recompute parity for pending stripes (the idle-period task)."""
        ops: list[DiskOp] = []
        stripes = sorted(self.array.stale_stripes)
        if max_stripes is not None:
            stripes = stripes[:max_stripes]
        for stripe in stripes:
            stripe_ops = self.array.parity_update(
                stripe, cached_pages=list(self.array.layout.stripe_pages(stripe))
            )
            # reconstruct-write needs the data blocks read back in
            for lpage in self.array.layout.stripe_pages(stripe):
                loc = self.array.layout.locate(lpage)
                if loc.disk in self.array.failed_disks:
                    raise DegradedError(
                        "AFRAID cannot repair parity with a failed disk: "
                        "this is precisely its data-loss window"
                    )
                stripe_ops.append(DiskOp(loc.disk, loc.disk_page, 1, True))
                self.counters.reintegration_ios += 1
            for op in stripe_ops:
                if op.kind in (OpKind.PARITY, OpKind.Q_PARITY) and not op.is_read:
                    self.counters.parity_writes += op.npages
            ops += stripe_ops
        self.idle_repairs += 1
        return ops

    def flush(self) -> list[DiskOp]:
        return self.idle_repair()
