"""The RAID array: logical page I/O -> member-disk operations.

The array does two jobs:

* **Accounting / semantics** — every logical read/write is turned into a
  list of :class:`DiskOp` member operations (the small-write problem is
  visible right here: a one-page RAID-5 update is two reads plus two
  writes).  The timing simulator schedules these ops on HDD models; the
  counters feed the evaluation figures.
* **Payload (optional)** — with ``store_data=True`` the array keeps real
  page bytes and maintains parity, so tests can verify reconstruction
  and the delayed-parity protocol bit-for-bit.

Two extended interfaces from Section III-A connect the SSD cache to the
array: :meth:`write_without_parity_update` (used on write hits; leaves
the stripe's parity stale) and :meth:`parity_update` (used by the
background cleaner to repair it, in read-modify-write or
reconstruct-write mode).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..contracts import columnar
from ..errors import ConfigError, DegradedError, RaidError
from .layout import PageLocation, RaidLayout, RaidLevel
from .parity import compute_p, compute_q, xor_blocks


class OpKind(Enum):
    DATA = "data"
    PARITY = "parity"
    Q_PARITY = "q"


@dataclass(frozen=True)
class DiskOp:
    """One member-disk page operation."""

    disk: int
    disk_page: int
    npages: int
    is_read: bool
    kind: OpKind = OpKind.DATA


@dataclass
class RaidCounters:
    """Cumulative member-disk traffic, in pages."""

    data_reads: int = 0
    data_writes: int = 0
    parity_reads: int = 0
    parity_writes: int = 0

    @property
    def reads(self) -> int:
        return self.data_reads + self.parity_reads

    @property
    def writes(self) -> int:
        return self.data_writes + self.parity_writes

    @property
    def total(self) -> int:
        return self.reads + self.writes

    def account(self, ops: Iterable[DiskOp]) -> None:
        for op in ops:
            if op.kind is OpKind.DATA:
                if op.is_read:
                    self.data_reads += op.npages
                else:
                    self.data_writes += op.npages
            else:
                if op.is_read:
                    self.parity_reads += op.npages
                else:
                    self.parity_writes += op.npages


class FastAccounting:
    """O(1) bulk counter accounting for a healthy array.

    The trace-driven simulators only consume :class:`RaidCounters`; the
    :class:`DiskOp` lists matter solely to the timing engine.  On a
    non-degraded array with no latent sector errors and no stored
    payload, every single-page logical op maps to a *fixed* member-I/O
    pattern, so the counter deltas can be precomputed once and applied
    per access (or in bulk) without re-deriving the stripe geometry.
    The deltas mirror the small-write logic of
    :meth:`RAIDArray._write_group` exactly; equivalence is pinned by the
    scalar-vs-vectorized property suite.
    """

    __slots__ = (
        "counters",
        "stale_stripes",
        "stripe_data_pages",
        "write_data_reads",
        "write_parity_reads",
        "write_data_writes",
        "write_parity_writes",
        "delayed_ok",
    )

    def __init__(self, array: "RAIDArray") -> None:
        layout = array.layout
        self.counters = array.counters
        self.stale_stripes = array.stale_stripes
        self.stripe_data_pages = layout.stripe_data_pages
        self.delayed_ok = layout.level in (RaidLevel.RAID5, RaidLevel.RAID6)
        if layout.level is RaidLevel.RAID0:
            reads = (0, 0)
            writes = (1, 0)
        elif layout.level is RaidLevel.RAID1:
            reads = (0, 0)
            writes = (array.ndisks, 0)
        else:
            n_parity = layout.parity_disks
            untouched = layout.data_disks_per_stripe - 1
            rmw_ios = 2 + 2 * n_parity
            rcw_ios = untouched + 1 + n_parity
            if rcw_ios < rmw_ios or not untouched:
                reads = (untouched, 0)
            else:
                reads = (1, n_parity)
            writes = (1, n_parity)
        self.write_data_reads, self.write_parity_reads = reads
        self.write_data_writes, self.write_parity_writes = writes

    @columnar(dtypes={"npages": "int"})
    def read(self, npages: int = 1) -> None:
        """Account ``npages`` independent single-page logical reads."""
        self.counters.data_reads += npages

    @columnar(dtypes={"npages": "int"})
    def write(self, npages: int = 1) -> None:
        """Account ``npages`` independent single-page parity-updating writes."""
        c = self.counters
        c.data_reads += npages * self.write_data_reads
        c.parity_reads += npages * self.write_parity_reads
        c.data_writes += npages * self.write_data_writes
        c.parity_writes += npages * self.write_parity_writes

    @columnar(dtypes={"stripe": "int"})
    def write_delayed(self, stripe: int) -> None:
        """Account one ``write_without_parity_update``; marks parity stale."""
        self.counters.data_writes += 1
        self.stale_stripes.add(stripe)


class RAIDArray:
    """A parity-protected disk array with delayed-parity extensions."""

    def __init__(
        self,
        level: RaidLevel = RaidLevel.RAID5,
        ndisks: int = 5,
        chunk_pages: int = 16,
        pages_per_disk: int = 1 << 22,
        page_size: int = 4096,
        store_data: bool = False,
    ) -> None:
        self.layout = RaidLayout(
            level, ndisks, chunk_pages=chunk_pages, pages_per_disk=pages_per_disk
        )
        self.page_size = page_size
        self.counters = RaidCounters()
        self.failed_disks: set[int] = set()
        #: Stripes whose parity is stale because of write_without_parity_update.
        self.stale_stripes: set[int] = set()
        #: Member pages hit by a latent sector error: unreadable until a
        #: scrub/repair rewrites them.  Keyed ``(disk, disk_page)``.
        self.media_errors: set[tuple[int, int]] = set()
        self._store = store_data
        # disk -> disk_page -> page bytes (uint8 arrays); parity included.
        self._disk_data: list[dict[int, np.ndarray]] | None = (
            [dict() for _ in range(ndisks)] if store_data else None
        )

    # -- basic properties -----------------------------------------------------

    @property
    def level(self) -> RaidLevel:
        return self.layout.level

    @property
    def ndisks(self) -> int:
        return self.layout.ndisks

    @property
    def capacity_pages(self) -> int:
        cap = self.layout.capacity_pages
        assert cap is not None
        return cap

    def _check_lpage(self, lpage: int, npages: int = 1) -> None:
        if lpage < 0 or lpage + npages > self.capacity_pages:
            raise ConfigError(f"logical pages [{lpage}, {lpage + npages}) out of range")

    # -- payload helpers -------------------------------------------------------

    def _zeros(self) -> np.ndarray:
        return np.zeros(self.page_size, dtype=np.uint8)

    def _get_disk_page(self, disk: int, disk_page: int) -> np.ndarray:
        assert self._disk_data is not None
        return self._disk_data[disk].get(disk_page, self._zeros())

    def _put_disk_page(self, disk: int, disk_page: int, data: np.ndarray) -> None:
        assert self._disk_data is not None
        self._disk_data[disk][disk_page] = np.asarray(data, dtype=np.uint8).copy()

    def _coerce_page(self, data: bytes | np.ndarray) -> np.ndarray:
        arr = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else np.asarray(data, np.uint8)
        if len(arr) > self.page_size:
            raise RaidError(f"payload longer than a page ({len(arr)})")
        if len(arr) < self.page_size:
            arr = np.concatenate([arr, np.zeros(self.page_size - len(arr), np.uint8)])
        return arr

    # -- stripe geometry helpers ----------------------------------------------

    def _stripe_parity_locations(self, stripe: int, offset: int) -> list[tuple[int, int, OpKind]]:
        """(disk, disk_page, kind) for each parity unit at chunk ``offset``."""
        out: list[tuple[int, int, OpKind]] = []
        page = stripe * self.layout.chunk_pages + offset
        p = self.layout.parity_disk(stripe)
        if p is not None:
            out.append((p, page, OpKind.PARITY))
        q = self.layout.q_disk(stripe)
        if q is not None:
            out.append((q, page, OpKind.Q_PARITY))
        return out

    def _data_locations_at_offset(self, stripe: int, offset: int) -> list[tuple[int, PageLocation]]:
        """(logical page, location) of every data page at chunk ``offset``."""
        base = stripe * self.layout.stripe_data_pages
        out = []
        for chunk in range(self.layout.data_disks_per_stripe):
            lpage = base + chunk * self.layout.chunk_pages + offset
            out.append((lpage, self.layout.locate(lpage)))
        return out

    # -- failure management -----------------------------------------------------

    def fail_disk(self, disk: int) -> None:
        """Mark a member disk failed (its contents are lost)."""
        if not 0 <= disk < self.ndisks:
            raise ConfigError(f"no such disk {disk}")
        self.failed_disks.add(disk)
        if len(self.failed_disks) > self.layout.fault_tolerance:
            raise DegradedError(
                f"{len(self.failed_disks)} failures exceed "
                f"{self.level.name} tolerance of {self.layout.fault_tolerance}"
            )
        # Latent sector errors on a lost member are subsumed by the loss
        # (the rebuild rewrites every page of the replacement disk).
        self.media_errors = {k for k in self.media_errors if k[0] != disk}
        if self._disk_data is not None:
            self._disk_data[disk] = {}

    @property
    def degraded(self) -> bool:
        return bool(self.failed_disks)

    def fast_account(self) -> FastAccounting | None:
        """Counter-only accounting shortcut, or None when ineligible.

        Eligibility requires the fixed member-I/O patterns to hold: no
        failed member (degraded reads/writes reroute I/O), no latent
        sector errors (reads reconstruct through peers), and no stored
        payload (payload maintenance reads real pages).  Callers must
        re-request the helper if any of those change.
        """
        if self.failed_disks or self.media_errors or self._disk_data is not None:
            return None
        return FastAccounting(self)

    # -- media errors (latent sector faults, repro.faults) ----------------------

    def mark_media_error(self, disk: int, disk_page: int) -> None:
        """Record a latent sector error: this member page is unreadable.

        The payload bytes are deliberately *kept* in store_data mode: a
        media error gates the host read path only, while parity repair
        still works — under KDD the cleaner repairs parity from cached
        deltas (read-modify-write on the parity unit) without ever
        reading the failed sector, and the payload-mode parity recompute
        stands in for exactly that delta path (see DESIGN.md).
        """
        if not 0 <= disk < self.ndisks:
            raise ConfigError(f"no such disk {disk}")
        pages = self.layout.pages_per_disk
        if disk_page < 0 or (pages is not None and disk_page >= pages):
            raise ConfigError(f"disk page {disk_page} out of range")
        self.media_errors.add((disk, disk_page))

    def page_readable(self, disk: int, disk_page: int) -> bool:
        """Whether a direct read of one member page can succeed."""
        return (
            disk not in self.failed_disks
            and (disk, disk_page) not in self.media_errors
        )

    def member_page_role(self, disk: int, disk_page: int) -> tuple[int, OpKind]:
        """``(stripe, unit kind)`` of one member page."""
        stripe = disk_page // self.layout.chunk_pages
        if disk == self.layout.parity_disk(stripe):
            return stripe, OpKind.PARITY
        if disk == self.layout.q_disk(stripe):
            return stripe, OpKind.Q_PARITY
        return stripe, OpKind.DATA

    def reconstruct_read_ops(self, disk: int, disk_page: int) -> list[DiskOp]:
        """Member reads that reconstruct one unreadable member page.

        For a data unit this is the classic degraded read (surviving
        peers + parity) and **fails loudly** with :class:`DegradedError`
        while the stripe's parity is stale — the executable form of the
        paper's vulnerability-window argument.  For a parity unit it is
        the data chunks at the same offset.  Ops are *not* accounted;
        the caller decides (repair vs. timing-only reconstruction).
        """
        if self.level is RaidLevel.RAID0:
            raise DegradedError("RAID-0 cannot reconstruct a lost page")
        stripe, kind = self.member_page_role(disk, disk_page)
        offset = disk_page - stripe * self.layout.chunk_pages
        if self.level is RaidLevel.RAID1:
            for mirror in range(self.ndisks):
                if mirror != disk and self.page_readable(mirror, disk_page):
                    return [DiskOp(mirror, disk_page, 1, True)]
            raise DegradedError("no readable mirror left")
        if kind is not OpKind.DATA:
            # rebuild parity from the data chunks at this offset
            ops = []
            for _lpage, loc in self._data_locations_at_offset(stripe, offset):
                if not self.page_readable(loc.disk, loc.disk_page):
                    raise DegradedError(
                        f"data page ({loc.disk},{loc.disk_page}) also "
                        f"unreadable while rebuilding parity of stripe {stripe}"
                    )
                ops.append(DiskOp(loc.disk, loc.disk_page, 1, True))
            return ops
        if stripe in self.stale_stripes:
            raise DegradedError(
                f"stripe {stripe} has stale parity; page ({disk},{disk_page}) "
                "cannot be reconstructed until the cleaner repairs parity "
                "(the vulnerability window the paper closes)"
            )
        ops = []
        for _lpage, other in self._data_locations_at_offset(stripe, offset):
            if other.disk == disk:
                continue
            if not self.page_readable(other.disk, other.disk_page):
                if self.level is RaidLevel.RAID5:
                    raise DegradedError(
                        f"double failure in stripe {stripe}: peer "
                        f"({other.disk},{other.disk_page}) also unreadable"
                    )
                continue  # RAID-6: second loss handled via Q
            ops.append(DiskOp(other.disk, other.disk_page, 1, True))
        for pdisk, ppage, pkind in self._stripe_parity_locations(stripe, offset):
            if not self.page_readable(pdisk, ppage):
                if self.level is RaidLevel.RAID5:
                    raise DegradedError(
                        f"stripe {stripe}: parity ({pdisk},{ppage}) unreadable "
                        "alongside the data page — double failure"
                    )
                continue
            ops.append(DiskOp(pdisk, ppage, 1, True, pkind))
        return ops

    def repair_page(self, disk: int, disk_page: int) -> list[DiskOp]:
        """Reconstruct one media-errored member page and rewrite it.

        Returns the member ops performed (peer reads + one write),
        accounted in :attr:`counters`.  No-op for pages without a
        recorded media error.  Raises :class:`DegradedError` when the
        page is a data unit of a stale-parity stripe; repair the parity
        first (``parity_update`` / the cleaner), then retry.
        """
        key = (disk, disk_page)
        if disk in self.failed_disks:
            raise RaidError(
                "repair_page repairs latent sector errors; a failed member "
                "is rebuilt with rebuild_disk"
            )
        if key not in self.media_errors:
            return []
        stripe, kind = self.member_page_role(disk, disk_page)
        ops = self.reconstruct_read_ops(disk, disk_page)
        ops.append(DiskOp(disk, disk_page, 1, False, kind))
        if self._disk_data is not None:
            offset = disk_page - stripe * self.layout.chunk_pages
            if kind is OpKind.DATA:
                for lpage, loc in self._data_locations_at_offset(stripe, offset):
                    if loc.disk == disk:
                        payload = self._reconstruct_payload(lpage, loc)
                        self.media_errors.discard(key)
                        self._put_disk_page(disk, disk_page, payload)
                        break
            else:
                self.media_errors.discard(key)
                self._recompute_parity_at(stripe, offset)
        self.media_errors.discard(key)
        self.counters.account(ops)
        return ops

    # -- reads ---------------------------------------------------------------

    def read(self, lpage: int, npages: int = 1) -> list[DiskOp]:
        """Read logical pages, reconstructing through parity if degraded.

        A page is served degraded both when its member disk failed and
        when the page itself carries a latent sector error
        (:meth:`mark_media_error`).
        """
        self._check_lpage(lpage, npages)
        ops: list[DiskOp] = []
        for page in range(lpage, lpage + npages):
            loc = self.layout.locate(page)
            if self.page_readable(loc.disk, loc.disk_page):
                ops.append(DiskOp(loc.disk, loc.disk_page, 1, True))
                continue
            ops.extend(self.reconstruct_read_ops(loc.disk, loc.disk_page))
        self.counters.account(ops)
        return ops

    def read_data(self, lpage: int) -> np.ndarray:
        """Current payload of a logical page (store_data mode only)."""
        if self._disk_data is None:
            raise ConfigError("array was created with store_data=False")
        self._check_lpage(lpage)
        loc = self.layout.locate(lpage)
        if self.page_readable(loc.disk, loc.disk_page):
            return self._get_disk_page(loc.disk, loc.disk_page)
        return self._reconstruct_payload(lpage, loc)

    def _reconstruct_payload(self, lpage: int, loc: PageLocation) -> np.ndarray:
        if self.level is RaidLevel.RAID1:
            for mirror in range(self.ndisks):
                if mirror != loc.disk and self.page_readable(mirror, loc.disk_page):
                    return self._get_disk_page(mirror, loc.disk_page)
            raise DegradedError("no readable mirror left")
        if self.level is RaidLevel.RAID0:
            raise DegradedError("RAID-0 data is unrecoverable")
        if loc.stripe in self.stale_stripes:
            raise DegradedError(f"stale parity on stripe {loc.stripe}")
        offset = loc.disk_page - loc.stripe * self.layout.chunk_pages
        blocks = []
        for _lpage, other in self._data_locations_at_offset(loc.stripe, offset):
            if other.disk == loc.disk:
                continue
            if not self.page_readable(other.disk, other.disk_page):
                raise DegradedError("double data failure needs RAID-6 decode")
            blocks.append(self._get_disk_page(other.disk, other.disk_page))
        p_disk = self.layout.parity_disk(loc.stripe)
        assert p_disk is not None
        parity_page = self.layout.parity_page(loc.stripe, lpage)
        if not self.page_readable(p_disk, parity_page):
            raise DegradedError(
                f"parity ({p_disk},{parity_page}) unreadable alongside the "
                "data page — double failure"
            )
        blocks.append(self._get_disk_page(p_disk, parity_page))
        return xor_blocks(blocks)

    # -- writes with parity update (the small-write path) -----------------------

    def write(
        self,
        lpage: int,
        npages: int = 1,
        data: Sequence[bytes | np.ndarray] | None = None,
    ) -> list[DiskOp]:
        """Write logical pages with a full parity update.

        Pages are grouped per stripe and per chunk offset; each group is
        served by whichever of read-modify-write or reconstruct-write
        needs fewer member I/Os (classic RAID-5 small-write logic).
        """
        self._check_lpage(lpage, npages)
        if data is not None and len(data) != npages:
            raise ConfigError("data must contain one payload per page")
        ops: list[DiskOp] = []
        # group written pages by (stripe, offset-within-chunk)
        groups: dict[tuple[int, int], list[int]] = {}
        for i, page in enumerate(range(lpage, lpage + npages)):
            loc = self.layout.locate(page)
            offset = loc.disk_page - loc.stripe * self.layout.chunk_pages
            groups.setdefault((loc.stripe, offset), []).append(i)
        for (stripe, offset), idxs in groups.items():
            pages = [lpage + i for i in idxs]
            payloads = [data[i] for i in idxs] if data is not None else None
            ops.extend(self._write_group(stripe, offset, pages, payloads))
        self.counters.account(ops)
        return ops

    def _write_group(
        self,
        stripe: int,
        offset: int,
        pages: list[int],
        payloads: list[bytes | np.ndarray] | None,
    ) -> list[DiskOp]:
        layout = self.layout
        if self.level is RaidLevel.RAID0:
            return self._write_plain(pages, payloads)
        if self.level is RaidLevel.RAID1:
            ops = []
            for i, page in enumerate(pages):
                loc = layout.locate(page)
                for mirror in range(self.ndisks):
                    if mirror in self.failed_disks:
                        continue
                    ops.append(DiskOp(mirror, loc.disk_page, 1, False))
                    if self._disk_data is not None and payloads is not None:
                        self._put_disk_page(mirror, loc.disk_page, self._coerce_page(payloads[i]))
                    elif self._disk_data is not None:
                        self._put_disk_page(mirror, loc.disk_page, self._zeros())
            return ops

        all_at_offset = self._data_locations_at_offset(stripe, offset)
        written = set(pages)
        untouched = [t for t in all_at_offset if t[0] not in written]
        k = len(pages)  # chunks written at this offset
        n_parity = self.layout.parity_disks
        rmw_ios = 2 * k + 2 * n_parity  # read+write each written chunk & parity
        rcw_ios = len(untouched) + k + n_parity  # read others, write new + parity

        use_rcw = rcw_ios < rmw_ios or not untouched
        ops: list[DiskOp] = []
        if use_rcw:
            for _, loc in untouched:
                if loc.disk in self.failed_disks:
                    continue
                ops.append(DiskOp(loc.disk, loc.disk_page, 1, True))
        else:
            for page in pages:
                loc = layout.locate(page)
                if loc.disk in self.failed_disks:
                    continue
                ops.append(DiskOp(loc.disk, loc.disk_page, 1, True))
            for disk, dpage, kind in self._stripe_parity_locations(stripe, offset):
                if disk in self.failed_disks:
                    continue
                ops.append(DiskOp(disk, dpage, 1, True, kind))

        self._apply_payload_writes(stripe, offset, pages, payloads)

        for page in pages:
            loc = layout.locate(page)
            if loc.disk in self.failed_disks:
                continue
            ops.append(DiskOp(loc.disk, loc.disk_page, 1, False))
        for disk, dpage, kind in self._stripe_parity_locations(stripe, offset):
            if disk in self.failed_disks:
                continue
            ops.append(DiskOp(disk, dpage, 1, False, kind))
        return ops

    def _write_plain(
        self, pages: list[int], payloads: list[bytes | np.ndarray] | None
    ) -> list[DiskOp]:
        ops = []
        for i, page in enumerate(pages):
            loc = self.layout.locate(page)
            if loc.disk in self.failed_disks:
                raise DegradedError("RAID-0 write to failed disk")
            ops.append(DiskOp(loc.disk, loc.disk_page, 1, False))
            if self._disk_data is not None:
                payload = (
                    self._coerce_page(payloads[i]) if payloads is not None else self._zeros()
                )
                self._put_disk_page(loc.disk, loc.disk_page, payload)
        return ops

    def _apply_payload_writes(
        self,
        stripe: int,
        offset: int,
        pages: list[int],
        payloads: list[bytes | np.ndarray] | None,
    ) -> None:
        """Store new data bytes and recompute parity (store_data mode)."""
        if self._disk_data is None:
            return
        for i, page in enumerate(pages):
            loc = self.layout.locate(page)
            payload = (
                self._coerce_page(payloads[i]) if payloads is not None else self._zeros()
            )
            if loc.disk not in self.failed_disks:
                self._put_disk_page(loc.disk, loc.disk_page, payload)
        self._recompute_parity_at(stripe, offset)

    def _recompute_parity_at(self, stripe: int, offset: int) -> None:
        assert self._disk_data is not None
        blocks = []
        for _, loc in self._data_locations_at_offset(stripe, offset):
            if loc.disk in self.failed_disks:
                raise RaidError(
                    "payload-mode parity recompute needs all data disks; "
                    "repair parity before failing a data disk (in op-counting "
                    "mode rmw applies deltas and does not hit this limit)"
                )
            blocks.append(self._get_disk_page(loc.disk, loc.disk_page))
        for disk, dpage, kind in self._stripe_parity_locations(stripe, offset):
            if disk in self.failed_disks:
                continue
            parity = compute_p(blocks) if kind is OpKind.PARITY else compute_q(blocks)
            self._put_disk_page(disk, dpage, parity)

    # -- delayed-parity extended interfaces (Section III-A) ----------------------

    def write_without_parity_update(
        self, lpage: int, data: bytes | np.ndarray | None = None
    ) -> list[DiskOp]:
        """Write one data page only; parity of the stripe becomes stale.

        Used by LeavO/KDD on write hits: the old data needed to repair
        parity later lives in the SSD cache, so the array can skip the
        read-old/read-parity/write-parity I/Os now.
        """
        if self.level not in (RaidLevel.RAID5, RaidLevel.RAID6):
            raise RaidError("delayed parity requires a parity RAID level")
        self._check_lpage(lpage)
        loc = self.layout.locate(lpage)
        if loc.disk in self.failed_disks:
            raise DegradedError("cannot delay parity while writing to a failed disk")
        ops = [DiskOp(loc.disk, loc.disk_page, 1, False)]
        self.stale_stripes.add(loc.stripe)
        if self._disk_data is not None:
            payload = self._coerce_page(data) if data is not None else self._zeros()
            self._put_disk_page(loc.disk, loc.disk_page, payload)
        self.counters.account(ops)
        return ops

    def parity_update(
        self,
        stripe: int,
        deltas: Mapping[int, bytes | np.ndarray] | None = None,
        cached_pages: Sequence[int] = (),
        force_mode: str | None = None,
    ) -> list[DiskOp]:
        """Repair the stale parity of ``stripe`` (cleaner interface).

        *Reconstruct-write* is used when every data page of the stripe is
        available without disk reads (all cached, per Section III-D);
        otherwise *read-modify-write* reads the stale parity and XORs in
        the ``deltas`` (``old ^ new`` per changed logical page).

        ``deltas`` maps logical page -> XOR delta; required for payload
        correctness in rmw mode when data is stored.  ``cached_pages``
        lists the stripe's logical pages resident in the SSD cache.
        """
        if stripe not in self.stale_stripes:
            return []
        all_pages = set(self.layout.stripe_pages(stripe))
        use_rcw = force_mode == "rcw" or (
            force_mode is None and all_pages.issubset(set(cached_pages))
        )
        if force_mode == "rmw":
            use_rcw = False

        ops: list[DiskOp] = []
        chunk_pages = self.layout.chunk_pages
        if use_rcw:
            # All data known to the caller: write parity only.
            for offset in range(chunk_pages):
                for disk, dpage, kind in self._stripe_parity_locations(stripe, offset):
                    if disk in self.failed_disks:
                        continue
                    ops.append(DiskOp(disk, dpage, 1, False, kind))
                if self._disk_data is not None:
                    self._recompute_parity_at(stripe, offset)
        else:
            # Read stale parity pages, XOR deltas in, write back.
            touched_offsets = sorted(
                {
                    (lp - stripe * self.layout.stripe_data_pages) % chunk_pages
                    for lp in (deltas or all_pages)
                    if self.layout.stripe_of(lp) == stripe
                }
            ) or list(range(chunk_pages))
            for offset in touched_offsets:
                for disk, dpage, kind in self._stripe_parity_locations(stripe, offset):
                    if disk in self.failed_disks:
                        continue
                    ops.append(DiskOp(disk, dpage, 1, True, kind))
                    ops.append(DiskOp(disk, dpage, 1, False, kind))
                if self._disk_data is not None:
                    # With payload we recompute exactly; the delta-XOR path is
                    # verified equivalent by the test suite.
                    self._recompute_parity_at(stripe, offset)
        self.stale_stripes.discard(stripe)
        self.counters.account(ops)
        return ops

    # -- verification -----------------------------------------------------------

    def verify_stripe(self, stripe: int) -> bool:
        """Parity consistency of one stripe (store_data mode)."""
        if self._disk_data is None:
            raise ConfigError("verification requires store_data=True")
        for offset in range(self.layout.chunk_pages):
            blocks = [
                self._get_disk_page(loc.disk, loc.disk_page)
                for _, loc in self._data_locations_at_offset(stripe, offset)
            ]
            for disk, dpage, kind in self._stripe_parity_locations(stripe, offset):
                if disk in self.failed_disks:
                    continue
                expected = compute_p(blocks) if kind is OpKind.PARITY else compute_q(blocks)
                if not np.array_equal(self._get_disk_page(disk, dpage), expected):
                    return False
        return True
