"""Array resynchronisation and failed-disk rebuild.

Two recovery flows from Section III-E2:

* **SSD cache failure** — data was always dispatched to RAID, so nothing
  is lost, but stripes with delayed parity must be re-synchronised by
  reconstruct-write before the array is single-fault tolerant again.
* **HDD failure** — the cache first repairs every stale parity via the
  ``parity_update`` interface, then the RAID layer rebuilds the failed
  member from the survivors.

Reports are **count-only by default**: a fault sweep can rebuild
millions of pages, and keeping every :class:`DiskOp` alive would exhaust
memory.  Pass ``keep_ops=True`` to retain the op list (tests, the
timing-simulator rebuild-under-load driver).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from ..errors import DegradedError
from .array import DiskOp, OpKind, RAIDArray
from .layout import RaidLevel


@dataclass
class RebuildReport:
    """What a recovery pass did, for tests and experiment logs.

    Member traffic is tallied in :attr:`member_reads` /
    :attr:`member_writes` (pages); the raw op list is kept only when the
    report was created with ``keep_ops=True``.
    """

    stripes_resynced: int = 0
    pages_rebuilt: int = 0
    member_reads: int = 0
    member_writes: int = 0
    keep_ops: bool = False
    disk_ops: list[DiskOp] = field(default_factory=list)

    def add_ops(self, ops: Iterable[DiskOp]) -> None:
        for op in ops:
            if op.is_read:
                self.member_reads += op.npages
            else:
                self.member_writes += op.npages
            if self.keep_ops:
                self.disk_ops.append(op)

    @property
    def member_ios(self) -> int:
        return self.member_reads + self.member_writes


def resync_stale_parity(array: RAIDArray, keep_ops: bool = False) -> RebuildReport:
    """Recompute parity for every stale stripe (reconstruct-write).

    This is the window-of-vulnerability closer after an SSD cache is
    lost: read all data chunks of each stale stripe, recompute parity,
    write it.
    """
    report = RebuildReport(keep_ops=keep_ops)
    for stripe in sorted(array.stale_stripes):
        data_reads: list[DiskOp] = []
        for lpage in array.layout.stripe_pages(stripe):
            loc = array.layout.locate(lpage)
            if loc.disk in array.failed_disks:
                raise DegradedError(
                    "disk failure with stale parity: data loss "
                    "(the failure mode LeavO is exposed to)"
                )
            data_reads.append(DiskOp(loc.disk, loc.disk_page, 1, True))
        # parity_update accounts its own ops; the data reads are ours.
        array.counters.account(
            op for op in data_reads if op.kind is OpKind.DATA
        )
        report.add_ops(data_reads)
        report.add_ops(array.parity_update(
            stripe, cached_pages=list(array.layout.stripe_pages(stripe))
        ))
        report.stripes_resynced += 1
    return report


def iter_rebuild_ops(
    array: RAIDArray, disk: int
) -> Iterator[tuple[int, list[DiskOp]]]:
    """Lazily yield ``(disk_page, ops)`` reconstructing each page of ``disk``.

    Each batch reads the page's surviving stripe peers and writes the
    reconstructed page to the replacement disk.  Nothing is accounted
    and no array state changes — callers drive the pace (all at once in
    :func:`rebuild_disk`, interleaved with foreground I/O in the
    rebuild-under-load driver) and call :func:`finish_rebuild` when the
    sweep completes.
    """
    if disk not in array.failed_disks:
        raise DegradedError(f"disk {disk} is not failed")
    if array.stale_stripes:
        raise DegradedError(
            "stale parity present: run parity updates before rebuilding "
            "(KDD's HDD-failure flow, Section III-E2)"
        )
    if array.level not in (RaidLevel.RAID1, RaidLevel.RAID5, RaidLevel.RAID6):
        raise DegradedError(f"{array.level.name} cannot rebuild a member")

    layout = array.layout
    pages_per_disk = layout.pages_per_disk or 0
    max_stripe = pages_per_disk // layout.chunk_pages
    for stripe in range(max_stripe):
        unit: OpKind | None = None
        p_disk = layout.parity_disk(stripe)
        q_disk = layout.q_disk(stripe)
        if array.level is RaidLevel.RAID1:
            unit = OpKind.DATA
        elif disk == p_disk:
            unit = OpKind.PARITY
        elif disk == q_disk:
            unit = OpKind.Q_PARITY
        else:
            for chunk in range(layout.data_disks_per_stripe):
                if layout.data_disk(stripe, chunk) == disk:
                    unit = OpKind.DATA
                    break
        if unit is None:
            continue
        for offset in range(layout.chunk_pages):
            dpage = stripe * layout.chunk_pages + offset
            if dpage >= pages_per_disk:
                break
            ops: list[DiskOp] = []
            if array.level is RaidLevel.RAID1:
                source = next(
                    m for m in range(array.ndisks) if m not in array.failed_disks
                )
                ops.append(DiskOp(source, dpage, 1, True))
            else:
                for member in range(array.ndisks):
                    if member == disk or member in array.failed_disks:
                        continue
                    kind = (
                        OpKind.PARITY
                        if member == p_disk
                        else OpKind.Q_PARITY
                        if member == q_disk
                        else OpKind.DATA
                    )
                    ops.append(DiskOp(member, dpage, 1, True, kind))
            ops.append(DiskOp(disk, dpage, 1, False, unit))
            yield dpage, ops


def finish_rebuild(array: RAIDArray, disk: int) -> None:
    """Reinstate the rebuilt member: restore payloads, clear the failure."""
    layout = array.layout
    pages_per_disk = layout.pages_per_disk or 0
    max_stripe = pages_per_disk // layout.chunk_pages
    if array._disk_data is not None:
        # Reconstruct lost data payloads while the disk is still marked
        # failed (so reads go through parity), then restore them.
        restored: dict[int, "object"] = {}
        for lpage in range(array.capacity_pages):
            loc = layout.locate(lpage)
            if loc.disk == disk:
                restored[loc.disk_page] = array._reconstruct_payload(lpage, loc)
        array.failed_disks.discard(disk)
        for dpage, payload in restored.items():
            array._put_disk_page(disk, dpage, payload)  # type: ignore[arg-type]
        # Parity units that lived on the failed disk are recomputed from data.
        for stripe in range(max_stripe):
            if disk in (layout.parity_disk(stripe), layout.q_disk(stripe)):
                for offset in range(layout.chunk_pages):
                    array._recompute_parity_at(stripe, offset)
    else:
        array.failed_disks.discard(disk)


def rebuild_disk(
    array: RAIDArray, disk: int, keep_ops: bool = False
) -> RebuildReport:
    """Rebuild a failed member after all parity is up to date.

    Every on-disk page of the failed member is reconstructed by reading
    the rest of its stripe (data + parity) and writing the result to the
    replacement disk.
    """
    report = RebuildReport(keep_ops=keep_ops)
    for _dpage, ops in iter_rebuild_ops(array, disk):
        array.counters.account(ops)
        report.add_ops(ops)
        report.pages_rebuilt += 1
    finish_rebuild(array, disk)
    return report
