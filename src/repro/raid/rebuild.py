"""Array resynchronisation and failed-disk rebuild.

Two recovery flows from Section III-E2:

* **SSD cache failure** — data was always dispatched to RAID, so nothing
  is lost, but stripes with delayed parity must be re-synchronised by
  reconstruct-write before the array is single-fault tolerant again.
* **HDD failure** — the cache first repairs every stale parity via the
  ``parity_update`` interface, then the RAID layer rebuilds the failed
  member from the survivors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DegradedError
from .array import DiskOp, OpKind, RAIDArray
from .layout import RaidLevel


@dataclass
class RebuildReport:
    """What a recovery pass did, for tests and experiment logs."""

    stripes_resynced: int = 0
    pages_rebuilt: int = 0
    disk_ops: list[DiskOp] = field(default_factory=list)

    @property
    def member_ios(self) -> int:
        return sum(op.npages for op in self.disk_ops)


def resync_stale_parity(array: RAIDArray) -> RebuildReport:
    """Recompute parity for every stale stripe (reconstruct-write).

    This is the window-of-vulnerability closer after an SSD cache is
    lost: read all data chunks of each stale stripe, recompute parity,
    write it.
    """
    report = RebuildReport()
    for stripe in sorted(array.stale_stripes):
        ops: list[DiskOp] = []
        for lpage in array.layout.stripe_pages(stripe):
            loc = array.layout.locate(lpage)
            if loc.disk in array.failed_disks:
                raise DegradedError(
                    "disk failure with stale parity: data loss "
                    "(the failure mode LeavO is exposed to)"
                )
            ops.append(DiskOp(loc.disk, loc.disk_page, 1, True))
        ops += array.parity_update(
            stripe, cached_pages=list(array.layout.stripe_pages(stripe))
        )
        report.stripes_resynced += 1
        report.disk_ops.extend(ops)
    # parity_update already accounted its ops; account the data reads here.
    array.counters.account(op for op in report.disk_ops if op.is_read and op.kind is OpKind.DATA)
    return report


def rebuild_disk(array: RAIDArray, disk: int) -> RebuildReport:
    """Rebuild a failed member after all parity is up to date.

    Every on-disk page of the failed member is reconstructed by reading
    the rest of its stripe (data + parity) and writing the result to the
    replacement disk.
    """
    if disk not in array.failed_disks:
        raise DegradedError(f"disk {disk} is not failed")
    if array.stale_stripes:
        raise DegradedError(
            "stale parity present: run parity updates before rebuilding "
            "(KDD's HDD-failure flow, Section III-E2)"
        )
    if array.level not in (RaidLevel.RAID1, RaidLevel.RAID5, RaidLevel.RAID6):
        raise DegradedError(f"{array.level.name} cannot rebuild a member")

    report = RebuildReport()
    layout = array.layout
    pages_per_disk = layout.pages_per_disk or 0
    # Walk stripes; for each unit on the failed disk, read peers + write it.
    max_stripe = pages_per_disk // layout.chunk_pages
    for stripe in range(max_stripe):
        units: list[tuple[int, OpKind]] = []
        p_disk = layout.parity_disk(stripe)
        q_disk = layout.q_disk(stripe)
        if array.level is RaidLevel.RAID1:
            units = [(0, OpKind.DATA)]
        elif disk == p_disk:
            units = [(0, OpKind.PARITY)]
        elif disk == q_disk:
            units = [(0, OpKind.Q_PARITY)]
        else:
            for chunk in range(layout.data_disks_per_stripe):
                if layout.data_disk(stripe, chunk) == disk:
                    units = [(chunk, OpKind.DATA)]
                    break
            else:
                continue
        if not units:
            continue
        for offset in range(layout.chunk_pages):
            dpage = stripe * layout.chunk_pages + offset
            if dpage >= pages_per_disk:
                break
            ops: list[DiskOp] = []
            if array.level is RaidLevel.RAID1:
                source = next(
                    m for m in range(array.ndisks) if m not in array.failed_disks
                )
                ops.append(DiskOp(source, dpage, 1, True))
            else:
                for member in range(array.ndisks):
                    if member == disk or member in array.failed_disks:
                        continue
                    kind = (
                        OpKind.PARITY
                        if member == p_disk
                        else OpKind.Q_PARITY
                        if member == q_disk
                        else OpKind.DATA
                    )
                    ops.append(DiskOp(member, dpage, 1, True, kind))
            ops.append(DiskOp(disk, dpage, 1, False, units[0][1]))
            report.disk_ops.extend(ops)
            report.pages_rebuilt += 1
    array.counters.account(report.disk_ops)
    if array._disk_data is not None:
        # Reconstruct lost data payloads while the disk is still marked
        # failed (so reads go through parity), then restore them.
        restored: dict[int, "object"] = {}
        for lpage in range(array.capacity_pages):
            loc = layout.locate(lpage)
            if loc.disk == disk:
                restored[loc.disk_page] = array._reconstruct_payload(lpage, loc)
        array.failed_disks.discard(disk)
        for dpage, payload in restored.items():
            array._put_disk_page(disk, dpage, payload)  # type: ignore[arg-type]
        # Parity units that lived on the failed disk are recomputed from data.
        for stripe in range(max_stripe):
            if disk in (layout.parity_disk(stripe), layout.q_disk(stripe)):
                for offset in range(layout.chunk_pages):
                    array._recompute_parity_at(stripe, offset)
    else:
        array.failed_disks.discard(disk)
    return report
