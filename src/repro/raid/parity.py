"""Parity mathematics for RAID-5 (P) and RAID-6 (P+Q).

All functions operate on equal-length numpy uint8 buffers (one chunk or
page each).  P is plain XOR; Q is the Reed-Solomon syndrome
``sum_i g^i * D_i`` over GF(2^8), matching the Linux MD raid6 layout.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import RaidError
from .gf256 import generator_power, gf_div, gf_inv, gf_mul


def _as_buffers(blocks: Sequence[np.ndarray]) -> list[np.ndarray]:
    if not blocks:
        raise RaidError("parity over zero blocks")
    size = len(blocks[0])
    bufs = []
    for b in blocks:
        arr = np.asarray(b, dtype=np.uint8)
        if len(arr) != size:
            raise RaidError("parity blocks must be equal length")
        bufs.append(arr)
    return bufs


def xor_blocks(blocks: Sequence[np.ndarray]) -> np.ndarray:
    """XOR of any number of equal-length buffers."""
    bufs = _as_buffers(blocks)
    out = bufs[0].copy()
    for b in bufs[1:]:
        np.bitwise_xor(out, b, out=out)
    return out


def compute_p(data_blocks: Sequence[np.ndarray]) -> np.ndarray:
    """RAID-5/6 P parity (XOR of all data blocks of the stripe)."""
    return xor_blocks(data_blocks)


def compute_q(data_blocks: Sequence[np.ndarray]) -> np.ndarray:
    """RAID-6 Q parity: sum over GF(256) of g^i * D_i."""
    bufs = _as_buffers(data_blocks)
    out = np.zeros_like(bufs[0])
    for i, b in enumerate(bufs):
        np.bitwise_xor(out, gf_mul(b, generator_power(i)), out=out)
    return out


def update_p(old_p: np.ndarray, old_data: np.ndarray, new_data: np.ndarray) -> np.ndarray:
    """Read-modify-write P update: P' = P ^ Dold ^ Dnew."""
    return xor_blocks([old_p, old_data, new_data])


def apply_delta_to_p(stale_p: np.ndarray, deltas: Sequence[np.ndarray]) -> np.ndarray:
    """Repair a stale P given the XOR deltas of the changed data blocks.

    This is the operation KDD's cleaner performs in read-modify-write
    mode: each delta is ``Dold ^ Dnew``, so XOR-ing them into the stale
    parity yields the up-to-date parity (Section III-D).
    """
    return xor_blocks([stale_p, *deltas])


def recover_one_data(
    surviving_data: Sequence[np.ndarray], p: np.ndarray
) -> np.ndarray:
    """Reconstruct a single lost data block from P and the survivors."""
    return xor_blocks([*surviving_data, p])


def recover_two_data(
    surviving: dict[int, np.ndarray],
    p: np.ndarray,
    q: np.ndarray,
    lost_x: int,
    lost_y: int,
    n_data: int,
) -> tuple[np.ndarray, np.ndarray]:
    """RAID-6: reconstruct two lost data blocks ``lost_x < lost_y``.

    Standard two-erasure decode: with Pxy/Qxy the partial parities over
    survivors,  Dx = A (P^Pxy) ^ B (Q^Qxy) where A, B derive from the
    generator powers of the lost positions.
    """
    if lost_x == lost_y:
        raise RaidError("the two lost indices must differ")
    if lost_x > lost_y:
        lost_x, lost_y = lost_y, lost_x
    for i in (lost_x, lost_y):
        if not 0 <= i < n_data:
            raise RaidError(f"lost index {i} out of range")
        if i in surviving:
            raise RaidError(f"index {i} is both lost and surviving")

    pxy = np.zeros_like(p)
    qxy = np.zeros_like(q)
    for i in range(n_data):
        if i in (lost_x, lost_y):
            continue
        try:
            block = surviving[i]
        except KeyError:
            raise RaidError(f"missing surviving block {i}") from None
        np.bitwise_xor(pxy, block, out=pxy)
        np.bitwise_xor(qxy, gf_mul(np.asarray(block, np.uint8), generator_power(i)), out=qxy)

    gx = generator_power(lost_x)
    gy = generator_power(lost_y)
    denom = gx ^ gy  # g^x + g^y in GF(256)
    a = gf_div(gy, denom)
    b = gf_inv(denom)

    p_term = xor_blocks([p, pxy])
    q_term = xor_blocks([q, qxy])
    dx = xor_blocks([gf_mul(p_term, a), gf_mul(q_term, b)])
    dy = xor_blocks([p_term, dx])
    return dx, dy


def verify_stripe(
    data_blocks: Sequence[np.ndarray],
    p: np.ndarray,
    q: np.ndarray | None = None,
) -> bool:
    """True iff parity is consistent with the data blocks."""
    if not np.array_equal(compute_p(data_blocks), np.asarray(p, np.uint8)):
        return False
    if q is not None and not np.array_equal(
        compute_q(data_blocks), np.asarray(q, np.uint8)
    ):
        return False
    return True
