"""RAID substrate: GF(256), parity math, striping layouts, the array."""

from .gf256 import gf_add, gf_div, gf_inv, gf_mul, gf_pow, generator_power
from .parity import (
    apply_delta_to_p,
    compute_p,
    compute_q,
    recover_one_data,
    recover_two_data,
    update_p,
    verify_stripe,
    xor_blocks,
)
from .array import DiskOp, OpKind, RaidCounters, RAIDArray
from .layout import PageLocation, RaidLayout, RaidLevel
from .logstructured import LogStructuredRaid
from .rebuild import (
    RebuildReport,
    finish_rebuild,
    iter_rebuild_ops,
    rebuild_disk,
    resync_stale_parity,
)
from .smallwrite import AfraidRaid, ParityLoggingRaid, SmallWriteCounters
from .tiered import TierCounters, TieredRaid

__all__ = [
    "gf_add",
    "gf_div",
    "gf_inv",
    "gf_mul",
    "gf_pow",
    "generator_power",
    "apply_delta_to_p",
    "compute_p",
    "compute_q",
    "recover_one_data",
    "recover_two_data",
    "update_p",
    "verify_stripe",
    "xor_blocks",
    "PageLocation",
    "RaidLayout",
    "RaidLevel",
    "DiskOp",
    "OpKind",
    "RaidCounters",
    "RAIDArray",
    "RebuildReport",
    "finish_rebuild",
    "iter_rebuild_ops",
    "rebuild_disk",
    "resync_stale_parity",
    "AfraidRaid",
    "ParityLoggingRaid",
    "SmallWriteCounters",
    "LogStructuredRaid",
    "TierCounters",
    "TieredRaid",
]
