"""Log-structured RAID writes (Dynamic Striping, related work §V-A).

Mogi & Kitsuregawa's dynamic striping — and LFS-style RAID generally —
eliminates the small-write problem by *never updating in place*: dirty
pages accumulate in an NVRAM buffer until a whole stripe's worth
exists, then one full-stripe write (data + freshly computed parity)
goes out with **zero** pre-reads.  The cost moves to segment cleaning:
overwritten pages leave holes in old stripes, and live pages must be
relocated before a stripe can be reused.

This is the third small-write answer the harness compares with KDD
(besides Parity Logging and AFRAID): it wins on write cost at low space
utilisation and pays increasing cleaning overhead as the array fills —
the classic LFS trade-off, which the tests pin down.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..errors import CapacityError, ConfigError
from .array import DiskOp, OpKind, RAIDArray
from .layout import RaidLevel

FREE = -1


class LogStructuredRaid:
    """RAID-5 with out-of-place full-stripe writes and segment cleaning."""

    def __init__(
        self,
        array: RAIDArray,
        reserve_stripes: int | None = None,
        gc_free_stripes: int = 2,
    ) -> None:
        if array.level is not RaidLevel.RAID5:
            raise ConfigError("log-structured writes implemented for RAID-5")
        layout = array.layout
        assert layout.pages_per_disk is not None
        self.array = array
        self.layout = layout
        self.stripe_pages = layout.stripe_data_pages
        self.total_stripes = layout.pages_per_disk // layout.chunk_pages
        if reserve_stripes is None:
            reserve_stripes = max(2, self.total_stripes // 8)
        if reserve_stripes + gc_free_stripes >= self.total_stripes:
            raise ConfigError("array too small for the requested reserve")
        self.reserve_stripes = reserve_stripes
        self.gc_free_stripes = gc_free_stripes
        #: logical capacity exposed to callers (pages)
        self.exported_pages = (self.total_stripes - reserve_stripes) * self.stripe_pages

        # logical page -> physical slot (stripe * stripe_pages + index)
        self._l2p = np.full(self.exported_pages, FREE, dtype=np.int64)
        self._p2l = np.full(self.total_stripes * self.stripe_pages, FREE, dtype=np.int64)
        self._valid = np.zeros(self.total_stripes, dtype=np.int32)
        self._sealed = np.zeros(self.total_stripes, dtype=bool)
        self._free: deque[int] = deque(range(self.total_stripes))
        self._open_stripe = self._free.popleft()
        self._nvram_pages: list[int] = []  # logical pages buffered for the open stripe

        self.full_stripe_writes = 0
        self.gc_relocations = 0
        self.gc_runs = 0
        self.host_writes = 0
        self.host_reads = 0

    # -- address helpers ---------------------------------------------------

    def _check(self, lpage: int) -> None:
        if not 0 <= lpage < self.exported_pages:
            raise CapacityError(f"logical page {lpage} out of range")

    def _slot_location(self, slot: int) -> tuple[int, int, int]:
        """(stripe, member disk, disk page) of a physical slot."""
        stripe, index = divmod(slot, self.stripe_pages)
        chunk, offset = divmod(index, self.layout.chunk_pages)
        disk = self.layout.data_disk(stripe, chunk)
        disk_page = stripe * self.layout.chunk_pages + offset
        return stripe, disk, disk_page

    @property
    def free_stripes(self) -> int:
        return len(self._free)

    @property
    def space_utilisation(self) -> float:
        mapped = int((self._l2p != FREE).sum()) + len(self._nvram_pages)
        return mapped / (self.total_stripes * self.stripe_pages)

    @property
    def write_amplification(self) -> float:
        if self.host_writes == 0:
            return 1.0
        return (self.host_writes + self.gc_relocations) / self.host_writes

    # -- host operations -----------------------------------------------------

    def read(self, lpage: int) -> list[DiskOp]:
        """One member read (or an NVRAM hit for pages in the open stripe)."""
        self._check(lpage)
        self.host_reads += 1
        if lpage in self._nvram_pages:
            return []  # still buffered in NVRAM
        slot = int(self._l2p[lpage])
        if slot == FREE:
            # never written: read the zeroed home location (plain mapping)
            loc = self.layout.locate(lpage)
            ops = [DiskOp(loc.disk, loc.disk_page, 1, True)]
        else:
            _, disk, disk_page = self._slot_location(slot)
            ops = [DiskOp(disk, disk_page, 1, True)]
        self.array.counters.account(ops)
        return ops

    def write(self, lpage: int) -> list[DiskOp]:
        """Append to the open stripe; flushes a full stripe when ready."""
        self._check(lpage)
        self.host_writes += 1
        self._invalidate(lpage)
        if lpage in self._nvram_pages:
            # overwrite within NVRAM: pure coalescing, no I/O
            return []
        self._nvram_pages.append(lpage)
        ops: list[DiskOp] = []
        if len(self._nvram_pages) >= self.stripe_pages:
            ops = self._flush_open_stripe()
        return ops

    def _invalidate(self, lpage: int) -> None:
        slot = int(self._l2p[lpage])
        if slot == FREE:
            return
        stripe = slot // self.stripe_pages
        self._p2l[slot] = FREE
        self._l2p[lpage] = FREE
        self._valid[stripe] -= 1

    def _flush_open_stripe(self) -> list[DiskOp]:
        """One full-stripe write: data chunks + parity, no pre-reads."""
        stripe = self._open_stripe
        base = stripe * self.stripe_pages
        for i, lpage in enumerate(self._nvram_pages):
            slot = base + i
            self._l2p[lpage] = slot
            self._p2l[slot] = lpage
        self._valid[stripe] = len(self._nvram_pages)
        self._sealed[stripe] = True
        self._nvram_pages = []

        ops: list[DiskOp] = []
        chunk = self.layout.chunk_pages
        for c in range(self.layout.data_disks_per_stripe):
            disk = self.layout.data_disk(stripe, c)
            ops.append(DiskOp(disk, stripe * chunk, chunk, False))
        p_disk = self.layout.parity_disk(stripe)
        assert p_disk is not None
        ops.append(DiskOp(p_disk, stripe * chunk, chunk, False, OpKind.PARITY))
        self.array.counters.account(ops)
        self.full_stripe_writes += 1

        self._open_next_stripe()
        while self.free_stripes < self.gc_free_stripes:
            more = self._clean_once()
            if more is None:
                break
            ops += more
        return ops

    def _open_next_stripe(self) -> None:
        if not self._free:
            raise CapacityError("log-structured array out of free stripes")
        self._open_stripe = self._free.popleft()
        self._sealed[self._open_stripe] = False

    def _clean_once(self) -> list[DiskOp] | None:
        """Relocate the live pages of the emptiest sealed stripe."""
        candidates = np.flatnonzero(self._sealed)
        candidates = candidates[candidates != self._open_stripe]
        if candidates.size == 0:
            return None
        victim = int(candidates[np.argmin(self._valid[candidates])])
        if self._valid[victim] >= self.stripe_pages:
            return None  # everything fully live: no space reclaimable
        ops: list[DiskOp] = []
        base = victim * self.stripe_pages
        live = [
            int(self._p2l[slot])
            for slot in range(base, base + self.stripe_pages)
            if self._p2l[slot] != FREE
        ]
        for lpage in live:
            _, disk, disk_page = self._slot_location(int(self._l2p[lpage]))
            ops.append(DiskOp(disk, disk_page, 1, True))
            self._invalidate(lpage)
            self.gc_relocations += 1
            if lpage in self._nvram_pages:
                continue
            self._nvram_pages.append(lpage)
            if len(self._nvram_pages) >= self.stripe_pages:
                ops += self._flush_open_stripe()
        self.array.counters.account(op for op in ops if op.is_read)
        self._sealed[victim] = False
        self._valid[victim] = 0
        self._free.append(victim)
        self.gc_runs += 1
        return ops

    def flush(self) -> list[DiskOp]:
        """Force out a partial stripe (short segment), e.g. at shutdown."""
        if not self._nvram_pages:
            return []
        return self._flush_open_stripe()

    def check_invariants(self) -> None:
        mapped = self._l2p[self._l2p != FREE]
        if len(np.unique(mapped)) != len(mapped):
            raise ConfigError("two logical pages share a physical slot")
        for lpage in range(self.exported_pages):
            slot = int(self._l2p[lpage])
            if slot != FREE and self._p2l[slot] != lpage:
                raise ConfigError(f"l2p/p2l mismatch at {lpage}")
        per_stripe = np.bincount(
            mapped // self.stripe_pages, minlength=self.total_stripes
        )
        if not np.array_equal(per_stripe, np.maximum(self._valid, 0)):
            raise ConfigError("stripe valid counts inconsistent")
