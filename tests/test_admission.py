"""Tests for selective cache admission (LARC / count-based sieving)."""

import pytest

from repro.cache import (
    AlwaysAdmit,
    CacheConfig,
    CountAdmission,
    LarcAdmission,
    WriteThrough,
    make_admission,
)
from repro.core import KDD
from repro.errors import ConfigError
from repro.harness import simulate_policy
from repro.raid import RAIDArray, RaidLevel
from repro.traces import zipf_workload


class TestAlwaysAdmit:
    def test_admits_everything(self):
        a = AlwaysAdmit()
        assert all(a.should_admit(lba) for lba in range(100))


class TestLarc:
    def test_second_miss_admits(self):
        larc = LarcAdmission(cache_pages=100)
        assert not larc.should_admit(5)  # first miss: ghost only
        assert larc.should_admit(5)      # second miss: promote
        assert larc.ghost_hits == 1
        assert larc.filtered == 1

    def test_ghost_entry_consumed_on_promotion(self):
        larc = LarcAdmission(cache_pages=100)
        larc.should_admit(5)
        larc.should_admit(5)
        assert not larc.should_admit(5)  # back to square one

    def test_ghost_is_bounded(self):
        larc = LarcAdmission(cache_pages=10)
        for lba in range(1000):
            larc.should_admit(lba)
        assert len(larc._ghost) <= larc.max_target

    def test_cache_hits_shrink_target(self):
        larc = LarcAdmission(cache_pages=100)
        # grow first via ghost hits
        for lba in range(50):
            larc.should_admit(lba)
            larc.should_admit(lba)
        grown = larc.target_size
        for _ in range(200):
            larc.on_cache_hit(1)
        assert larc.target_size <= grown
        assert larc.target_size >= larc.min_target

    def test_ghost_hits_grow_target(self):
        larc = LarcAdmission(cache_pages=100)
        base = larc.target_size
        for lba in range(30):
            larc.should_admit(lba)
            larc.should_admit(lba)
        assert larc.target_size >= base

    def test_validation(self):
        with pytest.raises(ConfigError):
            LarcAdmission(0)


class TestCountAdmission:
    def test_threshold_respected(self):
        a = CountAdmission(threshold=3)
        assert not a.should_admit(1)
        assert not a.should_admit(1)
        assert a.should_admit(1)

    def test_sieve_bounded_lru(self):
        a = CountAdmission(threshold=2, sieve_entries=2)
        a.should_admit(1)
        a.should_admit(2)
        a.should_admit(3)  # evicts 1 from the sieve
        assert not a.should_admit(1)  # count was forgotten

    def test_validation(self):
        with pytest.raises(ConfigError):
            CountAdmission(threshold=0)
        with pytest.raises(ConfigError):
            CountAdmission(sieve_entries=0)


class TestFactory:
    def test_known_names(self):
        assert make_admission("always", 10).name == "always"
        assert make_admission("LARC", 10).name == "larc"
        assert make_admission("count", 10).name == "count"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_admission("bloom", 10)


class TestIntegration:
    def make_raid(self):
        return RAIDArray(RaidLevel.RAID5, ndisks=5, chunk_pages=4,
                         pages_per_disk=1 << 14)

    def test_larc_reduces_allocation_writes(self):
        """The complementary-techniques claim: LARC cuts SSD writes
        further by filtering one-hit wonders out of the cache."""
        trace = zipf_workload(20_000, 8000, alpha=0.8, read_ratio=0.7, seed=9)
        plain = simulate_policy("wt", trace, cache_pages=512, seed=1)
        larc = simulate_policy("wt", trace, cache_pages=512, seed=1,
                               admission="larc")
        assert larc.stats.fill_writes < plain.stats.fill_writes

    def test_larc_on_kdd(self):
        trace = zipf_workload(10_000, 4000, alpha=0.9, read_ratio=0.3, seed=9)
        plain = simulate_policy("kdd", trace, cache_pages=512, seed=1)
        larc = simulate_policy("kdd", trace, cache_pages=512, seed=1,
                               admission="larc")
        assert larc.ssd_write_pages < plain.ssd_write_pages

    def test_first_touch_not_cached_under_larc(self):
        raid = self.make_raid()
        p = WriteThrough(
            CacheConfig(cache_pages=64, ways=16, admission="larc"), raid
        )
        p.read(5)
        assert 5 not in p.sets
        p.read(5)  # second miss promotes
        assert 5 in p.sets

    def test_kdd_invariants_with_larc(self):
        raid = self.make_raid()
        kdd = KDD(CacheConfig(cache_pages=64, ways=16, admission="larc"), raid)
        trace = zipf_workload(3000, 500, alpha=1.0, read_ratio=0.4, seed=2)
        kdd.process_trace(trace)
        kdd.check_invariants()
