"""Shared inline suppressions and the analyzer CLI surface.

One suppression grammar serves both checkers: kdd-lint reads
``# kdd-lint: disable=...`` comments and the whole-program analyzer
reads ``# kdd-analyze: disable=...`` through the same parser
(:func:`repro.devtools.lint.engine.parse_suppressions`).  These tests
pin the grammar sharing, the unused-suppression meta-findings, the
family scoping of filtered runs, and the CLI exit discipline for the
``--columnar`` / report-export flags.
"""

import json
from pathlib import Path

from repro.devtools.analyze.cli import main as analyze_main
from repro.devtools.analyze.columnar import check_columnar
from repro.devtools.analyze.suppress import (
    ANALYZER_CODES,
    COLUMNAR_CODES,
    EFFECTS_CODES,
    FLOW_CODES,
    apply_suppressions,
)
from repro.devtools.lint.engine import lint_source, parse_suppressions

from tests.analyze_fixtures import write_fixture_tree

SRC_REPRO = Path(__file__).resolve().parent.parent / "src" / "repro"


def codes(findings):
    return sorted(f.code for f in findings)


class TestSharedGrammar:
    def test_tool_parameter_selects_the_comment_tag(self):
        source = (
            "a = 1  # kdd-lint: disable=RPR002\n"
            "b = 2  # kdd-analyze: disable=RPR302\n"
        )
        assert parse_suppressions(source) == {1: ["RPR002"]}
        assert parse_suppressions(source, tool="kdd-analyze") == \
            {2: ["RPR302"]}

    def test_comma_lists_and_all_parse_identically(self):
        source = "x = 1  # kdd-analyze: disable=RPR301, RPR303\ny = 2  # kdd-analyze: disable=all\n"
        sup = parse_suppressions(source, tool="kdd-analyze")
        assert sup == {1: ["RPR301", "RPR303"], 2: ["all"]}

    def test_marker_inside_string_literal_is_not_a_suppression(self):
        source = 's = "# kdd-analyze: disable=RPR301"\n'
        assert parse_suppressions(source, tool="kdd-analyze") == {}

    def test_lint_ignores_analyzer_comments(self):
        # An analyzer suppression must not show up as an unused
        # kdd-lint suppression (or vice versa).
        findings = lint_source(
            "x = 1  # kdd-analyze: disable=RPR301\n", relpath="core/x.py"
        )
        assert findings == []


class TestAnalyzerSuppressions:
    def test_suppressed_finding_is_dropped(self, analyze_tree):
        project = analyze_tree({
            "core/flow.py": """\
                import numpy as np

                def compact(lbas: np.ndarray):
                    return lbas.astype(np.int32)  # kdd-analyze: disable=RPR301
            """,
        })
        raw = check_columnar(project)
        assert codes(raw) == ["RPR301"]
        assert apply_suppressions(project, raw) == []

    def test_disable_all_waives_the_line(self, analyze_tree):
        project = analyze_tree({
            "core/flow.py": """\
                import numpy as np

                def compact(lbas: np.ndarray):
                    return lbas.astype(np.int32)  # kdd-analyze: disable=all
            """,
        })
        assert apply_suppressions(project, check_columnar(project)) == []

    def test_unused_suppression_is_reported(self, analyze_tree):
        project = analyze_tree({
            "core/flow.py": """\
                import numpy as np

                def widen(lbas: np.ndarray):
                    return lbas.astype(np.uint64)  # kdd-analyze: disable=RPR302
            """,
        })
        findings = apply_suppressions(project, check_columnar(project))
        assert codes(findings) == ["RPR000"]
        assert "unused suppression of RPR302" in findings[0].message

    def test_unknown_rule_is_reported(self, analyze_tree):
        project = analyze_tree({
            "core/flow.py": """\
                x = 1  # kdd-analyze: disable=RPR999
            """,
        })
        findings = apply_suppressions(project, [])
        assert codes(findings) == ["RPR000"]
        assert "unknown analyzer rule RPR999" in findings[0].message

    def test_family_scoping_of_unused_reporting(self, analyze_tree):
        # A RPR104 (unit-flow) suppression is out of scope for a
        # --columnar-only run: neither applied nor called unused.
        project = analyze_tree({
            "core/flow.py": """\
                x = 1  # kdd-analyze: disable=RPR104
            """,
        })
        assert apply_suppressions(project, [], COLUMNAR_CODES) == []
        full = apply_suppressions(project, [], ANALYZER_CODES)
        assert codes(full) == ["RPR000"]
        assert "unused suppression of RPR104" in full[0].message

    def test_code_families_partition_the_rule_space(self):
        assert FLOW_CODES & EFFECTS_CODES == frozenset()
        assert FLOW_CODES & COLUMNAR_CODES == frozenset()
        assert EFFECTS_CODES & COLUMNAR_CODES == frozenset()
        assert COLUMNAR_CODES == frozenset(
            {"RPR301", "RPR302", "RPR303", "RPR304", "RPR305"}
        )
        assert ANALYZER_CODES == FLOW_CODES | EFFECTS_CODES | COLUMNAR_CODES

    def test_real_tree_has_no_unused_analyzer_suppressions(self):
        # Every inline analyzer exception in src/repro must still be
        # load-bearing; rot shows up here instead of in a baseline.
        from repro.devtools.analyze import Project

        project = Project.load([SRC_REPRO])
        findings = apply_suppressions(project, check_columnar(project))
        assert [f for f in findings if f.code == "RPR000"] == []


class TestColumnarCli:
    def _violating_tree(self, tmp_path):
        # One columnar violation plus one flow violation (an unused
        # import), to tell a family-filtered run from a full one.
        return write_fixture_tree(tmp_path, {
            "core/flow.py": """\
                import json
                import numpy as np

                def compact(lbas: np.ndarray):
                    return lbas.astype(np.int32)
            """,
        })

    def test_columnar_flag_runs_only_the_columnar_family(
        self, tmp_path, capsys
    ):
        root = self._violating_tree(tmp_path)
        rc = analyze_main(["--columnar", "--format", "json", str(root)])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert set(doc["counts"]) == {"RPR301"}

    def test_default_run_includes_both_families(self, tmp_path, capsys):
        root = self._violating_tree(tmp_path)
        rc = analyze_main(["--format", "json", str(root)])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert set(doc["counts"]) == {"RPR109", "RPR301"}

    def test_columnar_report_export(self, tmp_path, capsys):
        target = tmp_path / "columnar-report.json"
        rc = analyze_main(
            ["--columnar-report", str(target), str(SRC_REPRO)]
        )
        assert rc == 0
        doc = json.loads(target.read_text(encoding="utf-8"))
        assert doc["version"] == 1
        assert sorted(doc["rules"]) == \
            ["RPR301", "RPR302", "RPR303", "RPR304", "RPR305"]
        assert doc["declarations"]

    def test_unwritable_columnar_report_exits_2(self, tmp_path, capsys):
        # A path whose parent is a regular file cannot be created; the
        # CLI must fail with a ConfigError naming the path — exit 2,
        # no traceback.
        blocker = tmp_path / "blocker"
        blocker.write_text("", encoding="utf-8")
        target = blocker / "columnar-report.json"
        rc = analyze_main(["--columnar-report", str(target), str(SRC_REPRO)])
        assert rc == 2
        err = capsys.readouterr().err
        assert f"cannot write report {target}" in err
        assert "Traceback" not in err

    def test_unwritable_effects_report_exits_2(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("", encoding="utf-8")
        target = blocker / "effects-report.json"
        rc = analyze_main(["--effects-report", str(target), str(SRC_REPRO)])
        assert rc == 2
        err = capsys.readouterr().err
        assert f"cannot write report {target}" in err
        assert "Traceback" not in err
