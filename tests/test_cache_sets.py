"""Tests for the set-associative cache space."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.sets import CacheSets
from repro.errors import CacheError, ConfigError
from repro.nvram import PageState


def test_geometry():
    cs = CacheSets(cache_pages=256, ways=16)
    assert cs.n_sets == 16
    assert cs.capacity_pages == 256


def test_small_cache_clamps_ways():
    cs = CacheSets(cache_pages=8, ways=64)
    assert cs.ways == 8
    assert cs.n_sets == 1


def test_same_stripe_group_maps_to_same_set():
    cs = CacheSets(cache_pages=1024, ways=16, group_pages=64)
    assert cs.set_of(0) == cs.set_of(63)
    # different groups usually differ (hash scatter)
    assert len({cs.set_of(g * 64) for g in range(16)}) > 1


def test_alloc_lookup_remove():
    cs = CacheSets(cache_pages=64, ways=8)
    line = cs.alloc(5, PageState.CLEAN)
    assert line is not None
    assert cs.lookup(5) is line
    assert 5 in cs and len(cs) == 1
    assert cs.count(PageState.CLEAN) == 1
    cs.remove(5)
    assert cs.lookup(5) is None
    cs.check_invariants()


def test_double_alloc_rejected():
    cs = CacheSets(cache_pages=64, ways=8)
    cs.alloc(5, PageState.CLEAN)
    with pytest.raises(CacheError):
        cs.alloc(5, PageState.CLEAN)


def test_alloc_returns_none_when_set_full():
    cs = CacheSets(cache_pages=4, ways=4)  # one set
    for lba in range(4):
        assert cs.alloc(lba, PageState.CLEAN) is not None
    assert cs.alloc(99, PageState.CLEAN) is None


def test_lru_order_and_touch():
    cs = CacheSets(cache_pages=4, ways=4)
    for lba in range(3):
        cs.alloc(lba, PageState.CLEAN)
    cs.touch(0)  # 0 becomes MRU; LRU is now 1
    victim = cs.evict_candidate(0, (PageState.CLEAN,))
    assert victim.lba == 1


def test_evict_candidate_respects_state_filter():
    cs = CacheSets(cache_pages=4, ways=4)
    cs.alloc(0, PageState.OLD)
    cs.alloc(1, PageState.CLEAN)
    assert cs.evict_candidate(0, (PageState.CLEAN,)).lba == 1
    cs.set_state(1, PageState.OLD)
    assert cs.evict_candidate(0, (PageState.CLEAN,)) is None


def test_set_state_updates_counts():
    cs = CacheSets(cache_pages=8, ways=8)
    cs.alloc(1, PageState.CLEAN)
    cs.set_state(1, PageState.OLD)
    assert cs.count(PageState.CLEAN) == 0
    assert cs.count(PageState.OLD) == 1


def test_lpn_unique_per_slot():
    cs = CacheSets(cache_pages=64, ways=8)
    lpns = {cs.lpn_of(s, w) for s in range(cs.n_sets) for w in range(cs.ways)}
    assert len(lpns) == 64


class TestDez:
    def test_alloc_prefers_least_loaded_set(self):
        cs = CacheSets(cache_pages=32, ways=8)  # 4 sets
        locs = [cs.alloc_dez() for _ in range(8)]
        sets_used = [s for s, _ in locs]
        # even spread: every set got exactly 2
        assert sorted(sets_used) == [0, 0, 1, 1, 2, 2, 3, 3]
        assert cs.dez_pages == 8
        cs.check_invariants()

    def test_free_dez_returns_slot(self):
        cs = CacheSets(cache_pages=8, ways=8)
        s, slot = cs.alloc_dez()
        cs.free_dez(s, slot)
        assert cs.dez_pages == 0
        cs.check_invariants()

    def test_free_non_dez_rejected(self):
        cs = CacheSets(cache_pages=8, ways=8)
        with pytest.raises(CacheError):
            cs.free_dez(0, 0)

    def test_alloc_dez_skips_full_sets(self):
        cs = CacheSets(cache_pages=8, ways=4)  # 2 sets
        # fill set 0 with DAZ lines
        filled = 0
        lba = 0
        while filled < 4:
            if cs.set_of(lba) == 0:
                cs.alloc(lba, PageState.CLEAN)
                filled += 1
            lba += 1
        loc = cs.alloc_dez()
        assert loc is not None and loc[0] == 1

    def test_alloc_dez_none_when_everything_full(self):
        cs = CacheSets(cache_pages=4, ways=4)
        for _ in range(4):
            cs.alloc_dez()
        assert cs.alloc_dez() is None

    def test_alloc_dez_at_specific_set(self):
        cs = CacheSets(cache_pages=32, ways=8)
        loc = cs.alloc_dez_at(2)
        assert loc[0] == 2
        cs.check_invariants()


class TestBorrowed:
    def test_borrow_release(self):
        cs = CacheSets(cache_pages=8, ways=8)
        slot = cs.borrow_slot(0)
        assert slot is not None
        assert cs.borrowed_slots == 1
        cs.check_invariants()
        cs.release_slot(0, slot)
        assert cs.borrowed_slots == 0
        cs.check_invariants()

    def test_release_unborrowed_rejected(self):
        cs = CacheSets(cache_pages=8, ways=8)
        with pytest.raises(CacheError):
            cs.release_slot(0, 3)

    def test_adopt_borrowed_swaps_slots(self):
        cs = CacheSets(cache_pages=8, ways=8)
        line = cs.alloc(1, PageState.OLD)
        old_slot = line.slot
        twin = cs.borrow_slot(line.set_idx)
        freed = cs.adopt_borrowed(1, twin)
        assert freed == old_slot
        assert line.slot == twin
        assert cs.borrowed_slots == 0
        cs.check_invariants()


class TestMembershipChokePoint:
    """The @mutates_membership contract, dynamically."""

    def test_choke_point_carries_the_marker(self):
        assert CacheSets._membership_update.__mutates_membership__ is True

    def test_alloc_and_remove_bump_the_epoch_once(self):
        cs = CacheSets(cache_pages=8, ways=8)
        before = cs.mutations
        cs.alloc(1, PageState.CLEAN)
        assert cs.mutations == before + 1
        cs.remove(1)
        assert cs.mutations == before + 2

    def test_slot_moves_and_touches_leave_the_epoch_alone(self):
        # Membership is unchanged by an adopt (same lba, new slot) or a
        # touch, and classify is position-independent — so neither may
        # invalidate bulk hit runs (the fig6 fast path depends on it).
        cs = CacheSets(cache_pages=8, ways=8)
        line = cs.alloc(1, PageState.OLD)
        twin = cs.borrow_slot(line.set_idx)
        epoch = cs.mutations
        cs.touch(1)
        cs.adopt_borrowed(1, twin)
        assert cs.mutations == epoch
        assert bool(cs.classify(np.array([1], dtype=np.int64))[0])
        cs.check_invariants()


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["a", "r", "t", "b"]), st.integers(0, 40)),
        max_size=120,
    )
)
def test_property_mirror_never_stale(ops):
    """Interleaved scalar writes and batch classification always agree.

    For any sequence of alloc/remove/touch/adopt operations: (1) the
    columnar mirror classifies exactly the ground-truth membership at
    every step; (2) the epoch bumps exactly when membership changes;
    (3) an unchanged epoch means an earlier classification snapshot is
    still exactly valid — the invariant ``_columnar_chunk``'s hit-run
    guard relies on.
    """
    cs = CacheSets(cache_pages=32, ways=8)
    probe = np.arange(0, 41, dtype=np.int64)
    snapshot = cs.classify(probe).copy()
    snap_epoch = cs.mutations
    for kind, lba in ops:
        members = set(cs._index)
        epoch = cs.mutations
        if kind == "a" and lba not in cs:
            cs.alloc(lba, PageState.CLEAN)  # None when the set is full
        elif kind == "r" and lba in cs:
            cs.remove(lba)
        elif kind == "t" and lba in cs:
            cs.touch(lba)
        elif kind == "b" and lba in cs:
            twin = cs.borrow_slot(cs.set_of(lba))
            if twin is not None:
                cs.adopt_borrowed(lba, twin)
        # (2) the epoch moves iff membership did
        assert (cs.mutations != epoch) == (set(cs._index) != members)
        # (1) the mirror is never stale w.r.t. ground truth
        truth = np.array([p in cs for p in probe.tolist()])
        assert np.array_equal(cs.classify(probe), truth)
        # (3) epoch-unchanged snapshots remain exactly valid
        if cs.mutations == snap_epoch:
            assert np.array_equal(snapshot, truth)
        else:
            snapshot = cs.classify(probe).copy()
            snap_epoch = cs.mutations
    cs.check_invariants()


@settings(max_examples=50, deadline=None)
@given(
    data=st.data(),
    group_pages=st.sampled_from([64, 512, 4096]),
)
def test_property_batch_paths_exact_above_2_31(data, group_pages):
    """``set_of_batch``/``classify`` agree with the scalar path for huge LBAs.

    The scalar hash runs in arbitrary-precision python ints while the
    batch path runs in int64; they must be bit-exact for every address
    the int64 hash can take — including addresses past 2**31, where a
    silent int32 narrowing anywhere in the columnar pipeline (the
    RPR301 hazard) would wrap and misplace pages.  ``MAX_VECTOR_LBA``
    is the conservative ``group_pages=1`` bound; the safe bound for a
    real geometry scales by ``group_pages``, which is what puts the
    probed range above 2**31.
    """
    bound = CacheSets.MAX_VECTOR_LBA * group_pages
    assert bound > 2**31
    lbas = data.draw(st.lists(
        st.integers(2**31, bound), min_size=1, max_size=40, unique=True,
    ))
    cs = CacheSets(cache_pages=256, ways=8, group_pages=group_pages)
    arr = np.array(lbas, dtype=np.int64)
    scalar_sets = np.array([cs.set_of(lba) for lba in lbas], dtype=np.int64)
    assert np.array_equal(cs.set_of_batch(arr), scalar_sets)
    for lba in lbas[: cs.ways]:
        cs.alloc(lba, PageState.CLEAN)  # distinct lbas; None if set full
    truth = np.array([lba in cs for lba in lbas])
    assert truth[0]  # the first alloc into an empty cache always lands
    assert np.array_equal(cs.classify(arr), truth)


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["a", "r", "d", "f"]), st.integers(0, 40)),
        max_size=200,
    )
)
def test_property_slot_accounting(ops):
    """Slots are conserved under any alloc/remove/dez sequence."""
    cs = CacheSets(cache_pages=32, ways=8)
    dez: list[tuple[int, int]] = []
    for kind, lba in ops:
        if kind == "a" and lba not in cs:
            cs.alloc(lba, PageState.CLEAN)
        elif kind == "r" and lba in cs:
            cs.remove(lba)
        elif kind == "d":
            loc = cs.alloc_dez()
            if loc:
                dez.append(loc)
        elif kind == "f" and dez:
            cs.free_dez(*dez.pop())
    cs.check_invariants()
